"""The store's query engine: time/meeting/media slicing with segment skipping.

A :class:`StoreQuery` describes the slice — capture-time range, record
kinds, a meeting id, a media type, optional metric projection, optional
re-aggregation of windows into coarser buckets — and :func:`run_query`
executes it against a :class:`~repro.store.store.MetricsStore`:

1. **Plan**: the manifest's per-segment footers (time range, meeting ids,
   media types) prune every sealed segment that cannot hold a matching
   record; only the survivors are decompressed (``segments_scanned`` vs
   ``segments_skipped`` on the result — the benchmark's speedup numbers).
   ``use_index=False`` forces a full scan, kept for exactly that
   comparison.
2. **Scan**: surviving segments (plus any still-active tails) are read in
   time order and records filtered exactly.
3. **Shape**: windows are optionally re-aggregated into coarser windows
   and/or projected down to the selected metrics.

Querying by meeting resolves the meeting's activity span first (from
``meeting`` records, which the footer indexes by id) and then selects the
windows/streams overlapping that span — the longitudinal "slice by time,
meeting, and media type" workflow of the paper's §6.2 campus study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import MetricsStore, SegmentInfo

#: Window-record keys that survive any metric projection — without them a
#: projected record loses its identity on the timeline.
_IDENTITY_KEYS = ("kind", "window", "start", "end")


@dataclass(frozen=True, slots=True)
class StoreQuery:
    """One declarative slice of the store.

    Attributes:
        start / end: Capture-time range; a record matches if its
            ``[start, end]`` span overlaps the half-open ``[start, end)``
            query range.  ``None`` leaves that side unbounded.
        kinds: Record kinds to return (default: windows only).
        meeting_id: Restrict to one meeting — ``meeting`` records with the
            id, and other kinds overlapping that meeting's activity span.
        media: Media-type name (``audio``/``video``/``screen``): ``stream``
            records of that type, and ``window`` records thinned to that
            media entry (windows with no such traffic are dropped).
        metrics: Optional projection: window records keep only these keys
            (identity keys always survive; per-media metric names select
            within each media entry).
        reaggregate_seconds: Merge window records into tumbling buckets of
            this width (must be a multiple of the stored window width to
            be lossless; checked by the caller's eyes, not enforced).
        use_index: ``False`` disables manifest-based segment skipping (the
            full-scan baseline the benchmark compares against).
    """

    start: float | None = None
    end: float | None = None
    kinds: tuple[str, ...] = ("window",)
    meeting_id: int | None = None
    media: str | None = None
    metrics: tuple[str, ...] | None = None
    reaggregate_seconds: float | None = None
    use_index: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if self.metrics is not None:
            object.__setattr__(self, "metrics", tuple(self.metrics))
        if self.reaggregate_seconds is not None and self.reaggregate_seconds <= 0:
            raise ValueError("reaggregate_seconds must be > 0")


@dataclass
class QueryResult:
    """Matching records plus the plan accounting the benchmark reads."""

    records: list[dict] = field(default_factory=list)
    segments_scanned: int = 0
    segments_skipped: int = 0
    records_examined: int = 0

    @property
    def count(self) -> int:
        return len(self.records)


def run_query(store: "MetricsStore", query: StoreQuery) -> QueryResult:
    """Execute ``query`` against ``store`` (see module docstring)."""
    spans: list[tuple[float, float]] | None = None
    if query.meeting_id is not None and query.kinds != ("meeting",):
        # Resolve the meeting's activity span(s) first; the span query is
        # itself index-pruned by the footers' meeting-id sets.
        span_result = _scan(
            store,
            StoreQuery(
                kinds=("meeting",),
                meeting_id=query.meeting_id,
                start=query.start,
                end=query.end,
                use_index=query.use_index,
            ),
            spans=None,
        )
        spans = [
            (float(r["start"]), float(r["end"])) for r in span_result.records
        ]
        if not spans:
            return QueryResult(
                segments_scanned=span_result.segments_scanned,
                segments_skipped=span_result.segments_skipped,
                records_examined=span_result.records_examined,
            )
    result = _scan(store, query, spans=spans)
    if query.meeting_id is not None and query.kinds != ("meeting",) and spans:
        result.segments_scanned += span_result.segments_scanned
        result.segments_skipped += span_result.segments_skipped
        result.records_examined += span_result.records_examined
    if query.reaggregate_seconds is not None:
        windows = [r for r in result.records if r.get("kind") == "window"]
        others = [r for r in result.records if r.get("kind") != "window"]
        merged = reaggregate_windows(windows, query.reaggregate_seconds)
        result.records = sorted(
            merged + others, key=lambda r: (float(r["start"]), str(r["kind"]))
        )
    if query.metrics is not None:
        result.records = [
            _project(record, query.metrics) for record in result.records
        ]
    return result


# ----------------------------------------------------------------- planning


def _segment_may_match(info: "SegmentInfo", query: StoreQuery) -> bool:
    if query.start is not None and info.end < query.start:
        return False
    if query.end is not None and info.start >= query.end:
        return False
    kinds = dict(info.kinds)
    if not any(kinds.get(kind) for kind in query.kinds):
        return False
    if (
        query.meeting_id is not None
        and query.kinds == ("meeting",)
        and query.meeting_id not in info.meetings
    ):
        return False
    if query.media is not None and info.media and query.media not in info.media:
        return False
    return True


def _scan(
    store: "MetricsStore",
    query: StoreQuery,
    *,
    spans: list[tuple[float, float]] | None,
) -> QueryResult:
    result = QueryResult()
    batches: list[list[dict]] = []
    for info in store.segments():
        if query.use_index and not _segment_may_match(info, query):
            result.segments_skipped += 1
            continue
        result.segments_scanned += 1
        batches.append(store.iter_segment_records(info))
    for _, records in store.iter_active_records():
        batches.append(records)
    for records in batches:
        for record in records:
            result.records_examined += 1
            matched = _match(record, query, spans)
            if matched is not None:
                result.records.append(matched)
    result.records.sort(
        key=lambda r: (float(r.get("start", 0.0)), str(r.get("kind", "")))
    )
    return result


# ---------------------------------------------------------------- matching


def _overlaps(start: float, end: float, lo: float | None, hi: float | None) -> bool:
    if lo is not None and end < lo:
        return False
    if hi is not None and start >= hi:
        return False
    return True


def _match(
    record: dict,
    query: StoreQuery,
    spans: list[tuple[float, float]] | None,
) -> dict | None:
    kind = record.get("kind")
    if kind not in query.kinds:
        return None
    start = float(record.get("start", 0.0))
    end = float(record.get("end", start))
    if not _overlaps(start, end, query.start, query.end):
        return None
    if query.meeting_id is not None:
        if kind == "meeting":
            if int(record.get("meeting_id", -1)) != query.meeting_id:
                return None
        elif spans is not None and not any(
            _overlaps(start, end, lo, hi) for lo, hi in spans
        ):
            return None
    if query.media is not None:
        if kind == "stream":
            if record.get("media") != query.media:
                return None
        elif kind == "window":
            entries = [
                entry
                for entry in record.get("media", ())
                if entry.get("media") == query.media
            ]
            if not entries:
                return None
            record = dict(record)
            record["media"] = entries
    return record


# ------------------------------------------------------------- projection


def _project(record: dict, metrics: tuple[str, ...]) -> dict:
    keep = set(metrics) | set(_IDENTITY_KEYS)
    projected = {key: value for key, value in record.items() if key in keep}
    media = record.get("media")
    if isinstance(media, list) and "media" not in keep:
        thinned = [
            {
                key: value
                for key, value in entry.items()
                if key == "media" or key in keep
            }
            for entry in media
        ]
        # Media entries stay only if a per-media metric was requested.
        if any(len(entry) > 1 for entry in thinned):
            projected["media"] = thinned
    return projected


# ---------------------------------------------------------- re-aggregation


def reaggregate_windows(windows: list[dict], coarse_seconds: float) -> list[dict]:
    """Merge fine window records into tumbling ``coarse_seconds`` buckets.

    Counting fields sum exactly (that is the window invariant the service
    tests pin down); ``meetings_active`` takes the bucket maximum (it is a
    point-in-time census, not a count of events); per-media quality values
    (fps, jitter) combine as packet-weighted means over the windows that
    reported them, matching how a coarser aggregator would have sampled
    more streams per close.
    """
    buckets: dict[int, list[dict]] = {}
    for window in windows:
        index = int(math.floor(float(window["start"]) / coarse_seconds))
        buckets.setdefault(index, []).append(window)
    merged: list[dict] = []
    for index in sorted(buckets):
        group = sorted(buckets[index], key=lambda w: float(w["start"]))
        record: dict = {
            "kind": "window",
            "window": index,
            "start": index * coarse_seconds,
            "end": (index + 1) * coarse_seconds,
            "windows_merged": len(group),
            "forced": any(w.get("forced") for w in group),
        }
        for key in (
            "packets_total",
            "bytes_total",
            "zoom_packets",
            "meetings_formed",
            "streams_evicted",
        ):
            record[key] = sum(int(w.get(key, 0)) for w in group)
        record["meetings_active"] = max(
            (int(w.get("meetings_active", 0)) for w in group), default=0
        )
        record["media"] = _merge_media(group, coarse_seconds)
        merged.append(record)
    return merged


def _merge_media(group: list[dict], coarse_seconds: float) -> list[dict]:
    by_name: dict[str, list[dict]] = {}
    for window in group:
        for entry in window.get("media", ()):
            by_name.setdefault(str(entry.get("media")), []).append(entry)
    out: list[dict] = []
    for name in sorted(by_name):
        entries = by_name[name]
        packets = sum(int(e.get("packets", 0)) for e in entries)
        total_bytes = sum(int(e.get("bytes", 0)) for e in entries)
        merged: dict = {
            "media": name,
            "packets": packets,
            "bytes": total_bytes,
            "bitrate_bps": round(total_bytes * 8.0 / coarse_seconds, 3),
            "streams": max((int(e.get("streams", 0)) for e in entries), default=0),
            "streams_opened": sum(int(e.get("streams_opened", 0)) for e in entries),
            "p2p_packets": sum(int(e.get("p2p_packets", 0)) for e in entries),
            "lost": sum(int(e.get("lost", 0)) for e in entries),
            "duplicates": sum(int(e.get("duplicates", 0)) for e in entries),
        }
        for key in ("mean_fps", "mean_jitter_ms"):
            weighted = [
                (float(e[key]), max(int(e.get("packets", 0)), 1))
                for e in entries
                if e.get(key) is not None
            ]
            if weighted:
                weight = sum(w for _, w in weighted)
                merged[key] = round(
                    sum(v * w for v, w in weighted) / weight, 3
                )
            else:
                merged[key] = None
        out.append(merged)
    return out


# ------------------------------------------------------------ flat output


WINDOW_COLUMNS = (
    "window",
    "start",
    "end",
    "packets_total",
    "zoom_packets",
    "meetings_active",
    "media",
    "media_packets",
    "media_bytes",
    "bitrate_bps",
    "streams",
    "mean_fps",
    "mean_jitter_ms",
    "lost",
)

STREAM_COLUMNS = (
    "start",
    "end",
    "ssrc",
    "media",
    "packets",
    "bytes",
    "frames_completed",
    "mean_fps",
    "jitter_ms",
    "lost",
    "duplicates",
    "stall_count",
)

MEETING_COLUMNS = ("start", "end", "meeting_id", "streams", "participants")


def flatten_records(records: list[dict]) -> tuple[list[str], list[dict]]:
    """Rows for tabular output (``repro query --format table|csv``).

    Window records flatten to one row per media entry (a totals-only row
    when a window carried no media), keyed by the ``media`` column; stream
    and meeting records map straight onto their columns.  The column set is
    the union, in kind order, of the kinds present.
    """
    columns: list[str] = []
    rows: list[dict] = []
    kinds_present = {str(r.get("kind")) for r in records}
    for kind, kind_columns in (
        ("window", WINDOW_COLUMNS),
        ("stream", STREAM_COLUMNS),
        ("meeting", MEETING_COLUMNS),
    ):
        if kind in kinds_present:
            columns.extend(c for c in kind_columns if c not in columns)
    if len(kinds_present) > 1:
        columns.insert(0, "kind")
    for record in records:
        kind = record.get("kind")
        if kind == "window":
            media_entries = record.get("media") or [None]
            for entry in media_entries:
                row = {key: record.get(key) for key in WINDOW_COLUMNS[:6]}
                if entry is not None:
                    row["media"] = entry.get("media")
                    row["media_packets"] = entry.get("packets")
                    row["media_bytes"] = entry.get("bytes")
                    row["bitrate_bps"] = entry.get("bitrate_bps")
                    row["streams"] = entry.get("streams")
                    row["mean_fps"] = entry.get("mean_fps")
                    row["mean_jitter_ms"] = entry.get("mean_jitter_ms")
                    row["lost"] = entry.get("lost")
                row["kind"] = "window"
                rows.append(row)
        else:
            row = dict(record)
            rows.append(row)
    if "kind" not in columns:
        for row in rows:
            row.pop("kind", None)
    return columns, rows
