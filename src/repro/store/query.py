"""The store's query engine: time/meeting/media slicing with segment skipping.

A :class:`StoreQuery` describes the slice — capture-time range, record
kinds, a meeting id, a media type, optional metric projection, optional
re-aggregation of windows into coarser buckets — and :func:`run_query`
executes it against a :class:`~repro.store.store.MetricsStore`:

1. **Plan**: the manifest's per-segment footers (time range, meeting ids,
   media types) prune every sealed segment that cannot hold a matching
   record; only the survivors are decompressed (``segments_scanned`` vs
   ``segments_skipped`` on the result — the benchmark's speedup numbers).
   ``use_index=False`` forces a full scan, kept for exactly that
   comparison.
2. **Scan**: surviving segments (plus any still-active tails) are read in
   time order and records filtered exactly.
3. **Shape**: windows are optionally re-aggregated into coarser windows
   and/or projected down to the selected metrics.

Querying by meeting resolves the meeting's activity span first (from
``meeting`` records, which the footer indexes by id) and then selects the
windows/streams overlapping that span — the longitudinal "slice by time,
meeting, and media type" workflow of the paper's §6.2 campus study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.store.merge import reaggregate_windows, shape_records

__all__ = [
    "QueryResult",
    "StoreQuery",
    "flatten_records",
    "reaggregate_windows",  # re-exported: the math now lives in store.merge
    "run_query",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import MetricsStore, SegmentInfo


@dataclass(frozen=True, slots=True)
class StoreQuery:
    """One declarative slice of the store.

    Attributes:
        start / end: Capture-time range; a record matches if its
            ``[start, end]`` span overlaps the half-open ``[start, end)``
            query range.  ``None`` leaves that side unbounded.
        kinds: Record kinds to return (default: windows only).
        meeting_id: Restrict to one meeting — ``meeting`` records with the
            id, and other kinds overlapping that meeting's activity span.
        media: Media-type name (``audio``/``video``/``screen``): ``stream``
            records of that type, and ``window`` records thinned to that
            media entry (windows with no such traffic are dropped).
        metrics: Optional projection: window records keep only these keys
            (identity keys always survive; per-media metric names select
            within each media entry).
        reaggregate_seconds: Merge window records into tumbling buckets of
            this width (must be a multiple of the stored window width to
            be lossless; checked by the caller's eyes, not enforced).
        use_index: ``False`` disables manifest-based segment skipping (the
            full-scan baseline the benchmark compares against).
        meeting_spans: Pre-resolved activity span(s) for ``meeting_id``.
            When set, :func:`run_query` skips its own span-resolution pass
            and filters non-meeting kinds against these spans directly.
            This is how the fleet's federated plane keeps meeting queries
            correct when the meeting record lives in one node's store but
            the meeting's windows were captured by another tap: the plane
            resolves spans fleet-wide first, then fans the scan out with
            the spans attached.
    """

    start: float | None = None
    end: float | None = None
    kinds: tuple[str, ...] = ("window",)
    meeting_id: int | None = None
    media: str | None = None
    metrics: tuple[str, ...] | None = None
    reaggregate_seconds: float | None = None
    use_index: bool = True
    meeting_spans: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if self.metrics is not None:
            object.__setattr__(self, "metrics", tuple(self.metrics))
        if self.reaggregate_seconds is not None and self.reaggregate_seconds <= 0:
            raise ValueError("reaggregate_seconds must be > 0")
        if self.meeting_spans is not None:
            object.__setattr__(
                self,
                "meeting_spans",
                tuple((float(lo), float(hi)) for lo, hi in self.meeting_spans),
            )

    # ------------------------------------------------------------ transport

    def to_dict(self) -> dict:
        """JSON-serializable form (the fleet HTTP store endpoint's wire
        format); only non-default fields are emitted."""
        payload: dict = {"kinds": list(self.kinds)}
        if self.start is not None:
            payload["start"] = self.start
        if self.end is not None:
            payload["end"] = self.end
        if self.meeting_id is not None:
            payload["meeting_id"] = self.meeting_id
        if self.media is not None:
            payload["media"] = self.media
        if self.metrics is not None:
            payload["metrics"] = list(self.metrics)
        if self.reaggregate_seconds is not None:
            payload["reaggregate_seconds"] = self.reaggregate_seconds
        if not self.use_index:
            payload["use_index"] = False
        if self.meeting_spans is not None:
            payload["meeting_spans"] = [list(span) for span in self.meeting_spans]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StoreQuery":
        """Inverse of :meth:`to_dict`; unknown keys raise (a version-skewed
        fleet peer should fail loudly, not silently mis-filter)."""
        known = {
            "start", "end", "kinds", "meeting_id", "media", "metrics",
            "reaggregate_seconds", "use_index", "meeting_spans",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown StoreQuery fields: {sorted(unknown)}")
        fields = dict(payload)
        if "kinds" in fields:
            fields["kinds"] = tuple(str(kind) for kind in fields["kinds"])
        if "metrics" in fields and fields["metrics"] is not None:
            fields["metrics"] = tuple(str(m) for m in fields["metrics"])
        if "meeting_spans" in fields and fields["meeting_spans"] is not None:
            fields["meeting_spans"] = tuple(
                (float(lo), float(hi)) for lo, hi in fields["meeting_spans"]
            )
        return cls(**fields)


@dataclass
class QueryResult:
    """Matching records plus the plan accounting the benchmark reads."""

    records: list[dict] = field(default_factory=list)
    segments_scanned: int = 0
    segments_skipped: int = 0
    records_examined: int = 0

    @property
    def count(self) -> int:
        return len(self.records)


def run_query(store: "MetricsStore", query: StoreQuery) -> QueryResult:
    """Execute ``query`` against ``store`` (see module docstring)."""
    spans: list[tuple[float, float]] | None = None
    span_result: QueryResult | None = None
    if query.meeting_spans is not None:
        spans = list(query.meeting_spans)
        if not spans:
            return QueryResult()
    elif query.meeting_id is not None and query.kinds != ("meeting",):
        # Resolve the meeting's activity span(s) first; the span query is
        # itself index-pruned by the footers' meeting-id sets.
        span_result = _scan(
            store,
            StoreQuery(
                kinds=("meeting",),
                meeting_id=query.meeting_id,
                start=query.start,
                end=query.end,
                use_index=query.use_index,
            ),
            spans=None,
        )
        spans = [
            (float(r["start"]), float(r["end"])) for r in span_result.records
        ]
        if not spans:
            return QueryResult(
                segments_scanned=span_result.segments_scanned,
                segments_skipped=span_result.segments_skipped,
                records_examined=span_result.records_examined,
            )
    result = _scan(store, query, spans=spans)
    if span_result is not None:
        result.segments_scanned += span_result.segments_scanned
        result.segments_skipped += span_result.segments_skipped
        result.records_examined += span_result.records_examined
    # Shaping (re-aggregation, canonical ordering, projection) goes through
    # the same helper the federated plane uses — the bit-identity contract.
    result.records = shape_records(result.records, query)
    return result


# ----------------------------------------------------------------- planning


def _segment_may_match(info: "SegmentInfo", query: StoreQuery) -> bool:
    if query.start is not None and info.end < query.start:
        return False
    if query.end is not None and info.start >= query.end:
        return False
    kinds = dict(info.kinds)
    if not any(kinds.get(kind) for kind in query.kinds):
        return False
    if (
        query.meeting_id is not None
        and query.kinds == ("meeting",)
        and query.meeting_id not in info.meetings
    ):
        return False
    if query.media is not None and info.media and query.media not in info.media:
        return False
    return True


def _scan(
    store: "MetricsStore",
    query: StoreQuery,
    *,
    spans: list[tuple[float, float]] | None,
) -> QueryResult:
    result = QueryResult()
    batches: list[list[dict]] = []
    for info in store.segments():
        if query.use_index and not _segment_may_match(info, query):
            result.segments_skipped += 1
            continue
        result.segments_scanned += 1
        batches.append(store.iter_segment_records(info))
    for _, records in store.iter_active_records():
        batches.append(records)
    for records in batches:
        for record in records:
            result.records_examined += 1
            matched = _match(record, query, spans)
            if matched is not None:
                result.records.append(matched)
    result.records.sort(
        key=lambda r: (float(r.get("start", 0.0)), str(r.get("kind", "")))
    )
    return result


# ---------------------------------------------------------------- matching


def _overlaps(start: float, end: float, lo: float | None, hi: float | None) -> bool:
    if lo is not None and end < lo:
        return False
    if hi is not None and start >= hi:
        return False
    return True


def _match(
    record: dict,
    query: StoreQuery,
    spans: list[tuple[float, float]] | None,
) -> dict | None:
    kind = record.get("kind")
    if kind not in query.kinds:
        return None
    start = float(record.get("start", 0.0))
    end = float(record.get("end", start))
    if not _overlaps(start, end, query.start, query.end):
        return None
    if kind == "meeting":
        if (
            query.meeting_id is not None
            and int(record.get("meeting_id", -1)) != query.meeting_id
        ):
            return None
    elif spans is not None and not any(
        _overlaps(start, end, lo, hi) for lo, hi in spans
    ):
        return None
    if query.media is not None:
        if kind == "stream":
            if record.get("media") != query.media:
                return None
        elif kind == "window":
            entries = [
                entry
                for entry in record.get("media", ())
                if entry.get("media") == query.media
            ]
            if not entries:
                return None
            record = dict(record)
            record["media"] = entries
    return record


# ------------------------------------------------------------ flat output


WINDOW_COLUMNS = (
    "window",
    "start",
    "end",
    "packets_total",
    "zoom_packets",
    "meetings_active",
    "media",
    "media_packets",
    "media_bytes",
    "bitrate_bps",
    "streams",
    "mean_fps",
    "mean_jitter_ms",
    "lost",
)

STREAM_COLUMNS = (
    "start",
    "end",
    "ssrc",
    "media",
    "packets",
    "bytes",
    "frames_completed",
    "mean_fps",
    "jitter_ms",
    "lost",
    "duplicates",
    "stall_count",
)

MEETING_COLUMNS = ("start", "end", "meeting_id", "streams", "participants")


def flatten_records(records: list[dict]) -> tuple[list[str], list[dict]]:
    """Rows for tabular output (``repro query --format table|csv``).

    Window records flatten to one row per media entry (a totals-only row
    when a window carried no media), keyed by the ``media`` column; stream
    and meeting records map straight onto their columns.  The column set is
    the union, in kind order, of the kinds present.
    """
    columns: list[str] = []
    rows: list[dict] = []
    kinds_present = {str(r.get("kind")) for r in records}
    for kind, kind_columns in (
        ("window", WINDOW_COLUMNS),
        ("stream", STREAM_COLUMNS),
        ("meeting", MEETING_COLUMNS),
    ):
        if kind in kinds_present:
            columns.extend(c for c in kind_columns if c not in columns)
    if len(kinds_present) > 1:
        columns.insert(0, "kind")
    for record in records:
        kind = record.get("kind")
        if kind == "window":
            media_entries = record.get("media") or [None]
            for entry in media_entries:
                row = {key: record.get(key) for key in WINDOW_COLUMNS[:6]}
                if entry is not None:
                    row["media"] = entry.get("media")
                    row["media_packets"] = entry.get("packets")
                    row["media_bytes"] = entry.get("bytes")
                    row["bitrate_bps"] = entry.get("bitrate_bps")
                    row["streams"] = entry.get("streams")
                    row["mean_fps"] = entry.get("mean_fps")
                    row["mean_jitter_ms"] = entry.get("mean_jitter_ms")
                    row["lost"] = entry.get("lost")
                row["kind"] = "window"
                rows.append(row)
        else:
            row = dict(record)
            rows.append(row)
    if "kind" not in columns:
        for row in rows:
            row.pop("kind", None)
    return columns, rows
