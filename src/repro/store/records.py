"""The store's record vocabulary: windows, streams, meetings as plain dicts.

Three record kinds flow into a :class:`~repro.store.store.MetricsStore`,
each a JSON-serializable dict carrying a uniform envelope — ``kind`` plus
``start``/``end`` capture-time bounds (what partitioning, footer indexes,
and time-range queries key on):

* ``window`` — one closed :class:`~repro.service.windows.WindowRecord`,
  exactly its JSONL shape plus the envelope, so the store and the JSONL
  window log stay byte-interchangeable (``repro backfill`` reads either).
* ``stream`` — one finalized stream summary
  (:class:`~repro.core.rolling.FinalizedStream`, or the equivalent built
  from a batch :class:`~repro.core.pipeline.AnalysisResult`).
* ``meeting`` — one meeting's identity and activity bounds, written at
  campaign end (live) or backfill time (batch).

NaN never reaches disk: unavailable quality values are stored as ``null``,
mirroring :meth:`WindowRecord.to_dict`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.service.windows import WindowRecord, media_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.meetings import Meeting
    from repro.core.pipeline import AnalysisResult
    from repro.core.rolling import FinalizedStream

KINDS = ("window", "stream", "meeting")


def _clean(value: float | None) -> float | None:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return value


def window_record(window: WindowRecord) -> dict:
    """A closed window in store form (its JSONL dict + the envelope)."""
    record = window.to_dict()
    record["kind"] = "window"
    return record


def window_record_from_jsonl(line_record: dict) -> dict:
    """Adopt one JSONL window-log object (it already is the window dict)."""
    if "start" not in line_record or "end" not in line_record:
        raise ValueError("not a window-log record: missing start/end bounds")
    record = dict(line_record)
    record["kind"] = "window"
    return record


def stream_record(summary: "FinalizedStream") -> dict:
    """A finalized stream summary in store form."""
    five_tuple = summary.key[0]
    return {
        "kind": "stream",
        "start": summary.first_time,
        "end": summary.last_time,
        "protocol": summary.protocol,
        "ssrc": summary.ssrc,
        "media": media_name(summary.media_type),
        "media_type": summary.media_type,
        "src": five_tuple[0],
        "sport": five_tuple[1],
        "dst": five_tuple[2],
        "dport": five_tuple[3],
        "packets": summary.packets,
        "bytes": summary.bytes,
        "frames_completed": summary.frames_completed,
        "mean_fps": _clean(summary.mean_fps),
        "jitter_ms": _clean(summary.jitter_ms),
        "duplicates": summary.duplicates,
        "lost": summary.lost,
        "stall_count": summary.stall_count,
    }


def meeting_record(meeting: "Meeting") -> dict:
    """A meeting summary in store form."""
    return {
        "kind": "meeting",
        "start": meeting.first_time,
        "end": meeting.last_time,
        "meeting_id": meeting.meeting_id,
        "streams": len(meeting.stream_uids),
        "participants": meeting.participant_estimate(),
    }


def records_from_result(result: "AnalysisResult") -> Iterable[dict]:
    """Stream + meeting records from a finished batch analysis.

    The batch counterpart of what the live service's
    :class:`~repro.store.sink.StoreSink` accumulates over a run: one
    ``stream`` record per media stream (summarized through the same
    estimator fields eviction reports) and one ``meeting`` record per
    formed meeting.  Windows only exist live — a batch result has no
    tumbling-window timeline — so backfilling windows goes through the
    service's JSONL log instead.
    """
    from repro.core.rolling import FinalizedStream

    for stream in result.media_streams():
        metrics = result.metrics_for(stream.key)
        frames = metrics.assembler.completed_count if metrics else 0
        fps_samples = metrics.framerate_delivered.samples if metrics else []
        loss = metrics.loss.report() if metrics else None
        yield stream_record(
            FinalizedStream(
                key=stream.key,
                ssrc=stream.ssrc,
                media_type=stream.media_type,
                first_time=stream.first_time,
                last_time=stream.last_time,
                packets=stream.packets,
                bytes=stream.bytes,
                frames_completed=frames,
                mean_fps=(
                    sum(s.fps for s in fps_samples) / len(fps_samples)
                    if fps_samples
                    else float("nan")
                ),
                jitter_ms=(
                    metrics.jitter.jitter * 1000 if metrics else float("nan")
                ),
                duplicates=loss.duplicates if loss else 0,
                lost=loss.lost if loss else 0,
                stall_count=len(metrics.stall_events()) if metrics else 0,
                protocol=stream.protocol,
            )
        )
    for meeting in result.meetings:
        yield meeting_record(meeting)
