"""Hash-indexed register arrays with data-plane semantics.

Tofino register arrays are fixed-size SRAM blocks indexed by a hash of the
key; there is no collision resolution — a new key landing on an occupied
slot simply overwrites it.  The P2P detector of the capture program stores
STUN-learned (IP, port) endpoints in such arrays (§6.1), so the software
model keeps the same semantics (including the false positives/negatives
hash collisions can cause, which the paper's design accepts).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _stable_hash(key: bytes, salt: bytes) -> int:
    """A deterministic hash independent of Python's randomized ``hash()``."""
    return int.from_bytes(hashlib.blake2s(key, key=salt[:32], digest_size=8).digest(), "big")


@dataclass
class _Slot:
    fingerprint: int
    written_at: float


class HashRegisterArray:
    """A fixed-size register array indexed by ``hash(key) % size``.

    Each slot stores a key fingerprint and a write timestamp; lookups match
    only when the fingerprint agrees (guarding against index collisions the
    way the real program uses a second hash) and the entry is younger than
    ``timeout``.

    Attributes:
        size: Number of slots (SRAM budget).
        timeout: Entry lifetime in seconds; 0 disables expiry.
    """

    def __init__(self, size: int = 65536, *, timeout: float = 120.0, salt: bytes = b"zoom") -> None:
        if size <= 0:
            raise ValueError("register array size must be positive")
        self.size = size
        self.timeout = timeout
        self._salt = salt
        self._slots: dict[int, _Slot] = {}
        self.writes = 0
        self.overwrites = 0

    def _index_and_fingerprint(self, key: bytes) -> tuple[int, int]:
        digest = _stable_hash(key, self._salt)
        return digest % self.size, digest >> 24

    def insert(self, key: bytes, now: float) -> None:
        """Write ``key``'s fingerprint to its slot (overwriting any tenant)."""
        index, fingerprint = self._index_and_fingerprint(key)
        previous = self._slots.get(index)
        if previous is not None and previous.fingerprint != fingerprint:
            self.overwrites += 1
        self._slots[index] = _Slot(fingerprint, now)
        self.writes += 1

    def contains(self, key: bytes, now: float) -> bool:
        """Membership test with fingerprint check and expiry."""
        index, fingerprint = self._index_and_fingerprint(key)
        slot = self._slots.get(index)
        if slot is None or slot.fingerprint != fingerprint:
            return False
        if self.timeout > 0 and now - slot.written_at > self.timeout:
            return False
        return True

    @property
    def occupancy(self) -> int:
        return len(self._slots)


def endpoint_key(ip: str, port: int) -> bytes:
    """The (IP, port) register key used by the P2P detector."""
    return ip.encode() + b":" + port.to_bytes(2, "big")
