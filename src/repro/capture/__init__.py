"""Software model of the paper's Tofino-based Zoom capture system (§6.1).

The paper deploys a P4 program on an Intel Tofino switch between the campus
packet broker and the collection server: it receives *all* campus border
traffic and passes through only Zoom packets — including STUN-predicted P2P
flows — optionally anonymizing them on the way out (Figure 13).  This
package reproduces that pipeline functionally:

* :mod:`repro.capture.registers` — hash-indexed register arrays with the
  collision semantics of data-plane SRAM registers;
* :mod:`repro.capture.p4_model` — the match-action pipeline, stage by stage;
* :mod:`repro.capture.anonymize` — ONTAS-style keyed IP/MAC anonymization;
* :mod:`repro.capture.resources` — a cost model of the program's Tofino
  resource usage, calibrated to reproduce Table 5.
"""

from repro.capture.anonymize import Anonymizer
from repro.capture.p4_model import P4CaptureModel, PipelineCounters
from repro.capture.registers import HashRegisterArray
from repro.capture.resources import (
    TOFINO_BUDGET,
    ComponentUsage,
    resource_usage_table,
    total_usage,
)

__all__ = [
    "Anonymizer",
    "ComponentUsage",
    "HashRegisterArray",
    "P4CaptureModel",
    "PipelineCounters",
    "TOFINO_BUDGET",
    "resource_usage_table",
    "total_usage",
]
