"""The P4 capture pipeline, stage by stage (Figure 13).

Processing order for every campus border packet:

1. **Campus IP match** — determine which side of the packet is the campus
   host (direction); packets with no campus endpoint are not border traffic.
2. **Zoom IP match** — stateless match of the other side against Zoom's
   published prefixes → pass (server-based traffic, TCP and UDP).
3. **STUN learn** — a passing packet that is a STUN exchange on port 3478
   writes the campus endpoint (IP, port) into the P2P register arrays.
4. **P2P lookup** — a non-Zoom UDP packet whose campus endpoint hits the
   registers → pass as P2P.
5. Everything else is dropped.
6. Passing packets are optionally anonymized on egress.

The model also keeps the per-second processed/filtered counters the paper
used for Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.capture.anonymize import Anonymizer
from repro.capture.registers import HashRegisterArray, endpoint_key
from repro.core.detector import ZoomSubnetMatcher
from repro.core.metrics.binning import TimeBinner
from repro.net.packet import CapturedPacket, ParsedPacket, parse_frame
from repro.rtp.stun import STUN_PORT, is_stun
from repro.zoom.constants import CAMPUS_SUBNETS, ZOOM_SERVER_SUBNETS


@dataclass
class PipelineCounters:
    """Per-stage packet counters (the switch's own telemetry)."""

    processed: int = 0
    no_campus_endpoint: int = 0
    zoom_ip_matched: int = 0
    stun_learned: int = 0
    p2p_matched: int = 0
    dropped: int = 0

    @property
    def passed(self) -> int:
        return self.zoom_ip_matched + self.p2p_matched


class P4CaptureModel:
    """Functional model of the Tofino capture program.

    Args:
        zoom_subnets / campus_subnets: The two prefix lists of Figure 13.
        register_size: Slots per P2P register array (SRAM budget).
        stun_timeout: Lifetime of learned P2P endpoints.
        anonymizer: Optional egress anonymization (`None` disables it, as
            the paper notes it may be optional in some deployments).

    Usage::

        model = P4CaptureModel()
        zoom_only = list(model.process(all_campus_packets))
    """

    def __init__(
        self,
        zoom_subnets: Iterable[str] = ZOOM_SERVER_SUBNETS,
        campus_subnets: Iterable[str] = CAMPUS_SUBNETS,
        *,
        register_size: int = 65536,
        stun_timeout: float = 120.0,
        anonymizer: Anonymizer | None = None,
        rate_bin_width: float = 60.0,
    ) -> None:
        self.zoom_matcher = ZoomSubnetMatcher(zoom_subnets)
        self.campus_matcher = ZoomSubnetMatcher(campus_subnets)
        self.p2p_sources = HashRegisterArray(register_size, timeout=stun_timeout)
        self.p2p_destinations = HashRegisterArray(register_size, timeout=stun_timeout)
        self.anonymizer = anonymizer
        self.counters = PipelineCounters()
        self.all_rate = TimeBinner(rate_bin_width)
        self.zoom_rate = TimeBinner(rate_bin_width)
        # Exact mirror of what was ever learned, keyed (ip, port) -> last
        # learn time.  The register arrays are lossy (hash-slot eviction,
        # timeout) so they cannot enumerate live endpoints; the dataplane
        # compiler reads this mirror and re-checks liveness against the
        # registers when snapshotting rules.
        self.learned_endpoints: dict[tuple[str, int], float] = {}

    def process_one(self, packet: CapturedPacket) -> CapturedPacket | None:
        """Run one packet through the pipeline; returns it if it passes."""
        parsed = parse_frame(packet.data, packet.timestamp)
        self.counters.processed += 1
        self.all_rate.add(packet.timestamp)
        verdict = self._match(parsed)
        if not verdict:
            self.counters.dropped += 1
            return None
        self.zoom_rate.add(packet.timestamp)
        if self.anonymizer is not None:
            return self.anonymizer.anonymize_packet(packet)
        return packet

    def process(self, packets: Iterable[CapturedPacket]) -> Iterator[CapturedPacket]:
        """Stream packets through the pipeline, yielding the passers."""
        for packet in packets:
            passed = self.process_one(packet)
            if passed is not None:
                yield passed

    # ------------------------------------------------------------- internals

    def _match(self, parsed: ParsedPacket) -> bool:
        src_ip, dst_ip = parsed.src_ip, parsed.dst_ip
        if src_ip is None or dst_ip is None:
            self.counters.no_campus_endpoint += 1
            return False
        src_campus = self.campus_matcher.matches(src_ip)
        dst_campus = self.campus_matcher.matches(dst_ip)
        if not src_campus and not dst_campus:
            self.counters.no_campus_endpoint += 1
            return False
        # Stage: Zoom IP match (stateless pass for server traffic).
        if self.zoom_matcher.matches(src_ip) or self.zoom_matcher.matches(dst_ip):
            self.counters.zoom_ip_matched += 1
            # Stage: STUN learn.
            if (
                parsed.is_udp
                and STUN_PORT in (parsed.src_port, parsed.dst_port)
                and is_stun(parsed.payload)
            ):
                self._learn(parsed, src_campus)
            return True
        # Stage: P2P lookup for non-server UDP traffic.
        if parsed.is_udp:
            now = parsed.timestamp
            if src_campus and self.p2p_sources.contains(
                endpoint_key(src_ip, parsed.src_port or 0), now
            ):
                self.counters.p2p_matched += 1
                return True
            if dst_campus and self.p2p_destinations.contains(
                endpoint_key(dst_ip, parsed.dst_port or 0), now
            ):
                self.counters.p2p_matched += 1
                return True
        return False

    def _learn(self, parsed: ParsedPacket, src_campus: bool) -> None:
        """Write the campus endpoint of a STUN exchange to the registers."""
        if src_campus:
            ip, port = parsed.src_ip, parsed.src_port
        else:
            ip, port = parsed.dst_ip, parsed.dst_port
        if ip is None or port is None:
            return
        key = endpoint_key(ip, port)
        self.p2p_sources.insert(key, parsed.timestamp)
        self.p2p_destinations.insert(key, parsed.timestamp)
        self.learned_endpoints[(ip, port)] = parsed.timestamp
        self.counters.stun_learned += 1

    def rate_series(self) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
        """(all traffic, Zoom traffic) packets/s series — Figure 17's data."""
        width = self.all_rate.width
        all_series = [(when, total / width) for when, total in self.all_rate.sums()]
        zoom_series = [(when, total / width) for when, total in self.zoom_rate.sums()]
        return all_series, zoom_series
