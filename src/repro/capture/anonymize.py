"""ONTAS-style keyed anonymization of captured packets (§6.1, §9).

The capture program anonymizes all outgoing packets with a one-way hash so
researchers never see real addresses; media payloads are additionally
removable.  The model preserves the properties the analysis depends on:

* deterministic — the same real address always maps to the same pseudo
  address within a run (flow and meeting structure survive);
* class-preserving — campus addresses map into a campus pseudo-prefix and
  external addresses into an external one, so subnet-based logic still
  works downstream;
* one-way — addresses are mapped through a keyed BLAKE2 hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.net.ethernet import EthernetHeader
from repro.net.ip import IPv4Header, ip_from_str, ip_to_str
from repro.net.packet import CapturedPacket


@dataclass
class Anonymizer:
    """Keyed, class-preserving IPv4/MAC anonymizer.

    Args:
        key: Secret hash key; without it mappings cannot be reversed or
            reproduced.
        campus_prefixes: First octets treated as campus space; campus
            addresses are mapped into ``10.0.0.0/8``.
        zoom_prefixes: First octets of Zoom server space, mapped into
            ``170.0.0.0/8`` so subnet-based detection still works on the
            anonymized trace.
        strip_payload: Truncate UDP/TCP payload bytes (media removal).

    All remaining addresses map into ``240.0.0.0/8`` (reserved space, so
    pseudo and real external addresses can never collide).
    """

    key: bytes = b"change-me"
    campus_prefixes: tuple[int, ...] = (10,)
    zoom_prefixes: tuple[int, ...] = (170, 203)
    strip_payload: bool = False
    _ip_map: dict[str, str] = field(default_factory=dict)
    _mac_map: dict[bytes, bytes] = field(default_factory=dict)

    def anonymize_ip(self, ip: str) -> str:
        """Map one IPv4 address to its stable pseudo address."""
        cached = self._ip_map.get(ip)
        if cached is not None:
            return cached
        digest = hashlib.blake2s(ip_from_str(ip), key=self.key, digest_size=3).digest()
        first_octet = int(ip.split(".", 1)[0])
        if first_octet in self.campus_prefixes:
            prefix = 10
        elif first_octet in self.zoom_prefixes:
            prefix = 170
        else:
            prefix = 240
        pseudo = f"{prefix}.{digest[0]}.{digest[1]}.{max(digest[2], 1)}"
        self._ip_map[ip] = pseudo
        return pseudo

    def anonymize_mac(self, mac: bytes) -> bytes:
        cached = self._mac_map.get(mac)
        if cached is not None:
            return cached
        digest = hashlib.blake2s(mac, key=self.key, digest_size=5).digest()
        pseudo = bytes([0x02]) + digest  # locally administered bit set
        self._mac_map[mac] = pseudo
        return pseudo

    def anonymize_packet(self, packet: CapturedPacket) -> CapturedPacket:
        """Rewrite one captured frame; non-IPv4 frames pass unchanged.

        The IPv4 checksum is recomputed; transport checksums are zeroed
        (they no longer verify against rewritten addresses, matching what
        hardware anonymizers do).
        """
        data = packet.data
        try:
            ether, l2_len = EthernetHeader.parse(data)
        except ValueError:
            return packet
        ether = EthernetHeader(
            dst=self.anonymize_mac(ether.dst),
            src=self.anonymize_mac(ether.src),
            ethertype=ether.ethertype,
            vlan=ether.vlan,
            vlan_pcp=ether.vlan_pcp,
        )
        try:
            ip, ip_len = IPv4Header.parse(data[l2_len:])
        except ValueError:
            return CapturedPacket(packet.timestamp, ether.serialize() + data[l2_len:])
        body = bytearray(data[l2_len + ip_len : l2_len + ip.total_length])
        if len(body) >= 8:
            # Zero the transport checksum (UDP bytes 6-7, TCP bytes 16-17).
            if ip.protocol == 17:
                body[6:8] = b"\x00\x00"
            elif ip.protocol == 6 and len(body) >= 18:
                body[16:18] = b"\x00\x00"
        if self.strip_payload:
            body = body[: _transport_header_len(ip.protocol, bytes(body))]
        new_ip = IPv4Header(
            src=ip_from_str(self.anonymize_ip(ip_to_str(ip.src))),
            dst=ip_from_str(self.anonymize_ip(ip_to_str(ip.dst))),
            protocol=ip.protocol,
            total_length=IPv4Header.HEADER_LEN + len(body),
            ttl=ip.ttl,
            identification=ip.identification,
            dscp=ip.dscp,
            ecn=ip.ecn,
        )
        return CapturedPacket(
            packet.timestamp, ether.serialize() + new_ip.serialize() + bytes(body)
        )

    @property
    def addresses_mapped(self) -> int:
        return len(self._ip_map)


def _transport_header_len(protocol: int, body: bytes) -> int:
    if protocol == 17:
        return min(8, len(body))
    if protocol == 6 and len(body) >= 13:
        return min((body[12] >> 4) * 4, len(body))
    return len(body)
