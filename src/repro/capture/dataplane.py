"""Switch-feasible streaming metric computation (§8).

The paper argues its performance metrics "can be implemented in a streaming
fashion and are amenable to data-plane implementation", with "approximate
data structures limiting overall accuracy" under switch constraints.  This
module implements that sketch faithfully to what a Tofino-class pipeline can
actually do per packet:

* **integer-only arithmetic** — no floats; time in microseconds, media time
  converted through a fixed-point reciprocal multiply (no division);
* **shift-based EWMA** — RFC 3550's ``J += (|D| − J)/16`` becomes
  ``J += (|D| − J) >> 4``;
* **hash-indexed register buckets** — per-stream state lives in fixed
  arrays indexed by a hash of (5-tuple, SSRC); collisions silently share
  state, exactly as on hardware;
* **O(1) per packet** — one read-modify-write per register array.

The accompanying ablation benchmark quantifies the accuracy these
constraints cost against the exact estimators.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.streams import RTPPacketRecord
from repro.zoom.constants import VIDEO_SAMPLING_RATE, RTPPayloadType

FIXED_POINT_BITS = 16
"""Q notation: values carry 16 fractional bits."""

MICROSECOND = 1
SECOND_US = 1_000_000


def reciprocal_fixed(rate: int) -> int:
    """Fixed-point microseconds-per-tick for a sampling rate.

    ``ticks * reciprocal >> FIXED_POINT_BITS`` ≈ microseconds of media time.
    For 90 kHz: 1e6/90000 ≈ 11.1 µs/tick → 728178 in Q16.
    """
    return (SECOND_US << FIXED_POINT_BITS) // rate


def _bucket(key: bytes, size: int) -> int:
    digest = hashlib.blake2s(key, digest_size=4).digest()
    return int.from_bytes(digest, "big") % size


def stream_key_bytes(record: RTPPacketRecord) -> bytes:
    src_ip, src_port, dst_ip, dst_port, _proto = record.five_tuple
    return (
        f"{src_ip}:{src_port}>{dst_ip}:{dst_port}".encode()
        + record.ssrc.to_bytes(4, "big")
    )


@dataclass
class _JitterSlot:
    last_arrival_us: int = 0
    last_rtp_timestamp: int = 0
    jitter_us_fixed: int = 0  # Q16 microseconds
    initialized: bool = False


class DataplaneJitterEstimator:
    """Frame-level RFC 3550 jitter in integer registers.

    Per bucket: last first-of-frame arrival (µs), last frame RTP timestamp,
    and the Q16 jitter accumulator.  FEC packets and repeats of the current
    frame timestamp are excluded with one comparison each — both checks are
    single-register operations a switch can do.
    """

    def __init__(self, buckets: int = 4096, sampling_rate: int = VIDEO_SAMPLING_RATE) -> None:
        if buckets <= 0:
            raise ValueError("bucket count must be positive")
        self._slots = [_JitterSlot() for _ in range(buckets)]
        self._buckets = buckets
        self._reciprocal = reciprocal_fixed(sampling_rate)
        self.updates = 0

    def observe(self, record: RTPPacketRecord) -> None:
        if record.payload_type == RTPPayloadType.FEC:
            return
        slot = self._slots[_bucket(stream_key_bytes(record), self._buckets)]
        arrival_us = int(record.timestamp * SECOND_US)
        timestamp = record.rtp_timestamp
        if not slot.initialized:
            slot.initialized = True
            slot.last_arrival_us = arrival_us
            slot.last_rtp_timestamp = timestamp
            return
        if timestamp == slot.last_rtp_timestamp:
            return  # later packet of the same frame
        ticks = (timestamp - slot.last_rtp_timestamp) & 0xFFFFFFFF
        if ticks >= 1 << 31:
            return  # out-of-order frame
        media_gap_us = (ticks * self._reciprocal) >> FIXED_POINT_BITS
        arrival_gap_us = arrival_us - slot.last_arrival_us
        difference_us = arrival_gap_us - media_gap_us
        if difference_us < 0:
            difference_us = -difference_us
        # J += (|D| - J) >> 4, all in Q16 microseconds.
        difference_fixed = difference_us << FIXED_POINT_BITS
        slot.jitter_us_fixed += (difference_fixed - slot.jitter_us_fixed) >> 4
        slot.last_arrival_us = arrival_us
        slot.last_rtp_timestamp = timestamp
        self.updates += 1

    def jitter_seconds(self, record_or_key) -> float:
        """Read one bucket's jitter (control-plane read), in seconds."""
        key = (
            stream_key_bytes(record_or_key)
            if isinstance(record_or_key, RTPPacketRecord)
            else record_or_key
        )
        slot = self._slots[_bucket(key, self._buckets)]
        return (slot.jitter_us_fixed >> FIXED_POINT_BITS) / SECOND_US


@dataclass
class _RateSlot:
    window_start_us: int = 0
    frame_count: int = 0
    last_rtp_timestamp: int = 0
    last_window_rate: int = 0
    initialized: bool = False


class DataplaneFrameRateCounter:
    """Frames per second from two registers and a comparison.

    Counts first-of-frame packets (timestamp changed) within tumbling
    one-second windows; the previous window's count is the reported rate.
    Interleaved frames are under-counted — a documented accuracy limit of
    the single last-timestamp register.
    """

    def __init__(self, buckets: int = 4096) -> None:
        self._slots = [_RateSlot() for _ in range(buckets)]
        self._buckets = buckets

    def observe(self, record: RTPPacketRecord) -> None:
        if record.payload_type == RTPPayloadType.FEC:
            return
        slot = self._slots[_bucket(stream_key_bytes(record), self._buckets)]
        now_us = int(record.timestamp * SECOND_US)
        if not slot.initialized:
            slot.initialized = True
            slot.window_start_us = now_us
            slot.last_rtp_timestamp = record.rtp_timestamp ^ 0xFFFFFFFF
        if now_us - slot.window_start_us >= SECOND_US:
            slot.last_window_rate = slot.frame_count
            slot.frame_count = 0
            slot.window_start_us = now_us
        if record.rtp_timestamp != slot.last_rtp_timestamp:
            slot.frame_count += 1
            slot.last_rtp_timestamp = record.rtp_timestamp

    def rate(self, record_or_key) -> int:
        """The last completed window's frame count (control-plane read)."""
        key = (
            stream_key_bytes(record_or_key)
            if isinstance(record_or_key, RTPPacketRecord)
            else record_or_key
        )
        return self._slots[_bucket(key, self._buckets)].last_window_rate


@dataclass
class _ByteSlot:
    window_start_us: int = 0
    byte_count: int = 0
    last_window_bytes: int = 0


class DataplaneBitrateCounter:
    """Per-stream byte counters over tumbling one-second windows."""

    def __init__(self, buckets: int = 4096) -> None:
        self._slots = [_ByteSlot() for _ in range(buckets)]
        self._buckets = buckets

    def observe(self, record: RTPPacketRecord) -> None:
        slot = self._slots[_bucket(stream_key_bytes(record), self._buckets)]
        now_us = int(record.timestamp * SECOND_US)
        if slot.window_start_us == 0:
            slot.window_start_us = now_us
        if now_us - slot.window_start_us >= SECOND_US:
            slot.last_window_bytes = slot.byte_count
            slot.byte_count = 0
            slot.window_start_us = now_us
        slot.byte_count += record.payload_len

    def bits_per_second(self, record_or_key) -> int:
        key = (
            stream_key_bytes(record_or_key)
            if isinstance(record_or_key, RTPPacketRecord)
            else record_or_key
        )
        return 8 * self._slots[_bucket(key, self._buckets)].last_window_bytes


@dataclass
class DataplaneMetrics:
    """The three switch-side estimators behind one observe() call."""

    buckets: int = 4096
    sampling_rate: int = VIDEO_SAMPLING_RATE
    jitter: DataplaneJitterEstimator = field(init=False)
    framerate: DataplaneFrameRateCounter = field(init=False)
    bitrate: DataplaneBitrateCounter = field(init=False)

    def __post_init__(self) -> None:
        self.jitter = DataplaneJitterEstimator(self.buckets, self.sampling_rate)
        self.framerate = DataplaneFrameRateCounter(self.buckets)
        self.bitrate = DataplaneBitrateCounter(self.buckets)

    def observe(self, record: RTPPacketRecord) -> None:
        self.jitter.observe(record)
        self.framerate.observe(record)
        self.bitrate.observe(record)

    def resource_estimate(self) -> dict[str, float]:
        """Rough SRAM cost of the three register arrays, in Tofino blocks.

        Jitter: 2x32-bit + 1x32-bit Q16 per bucket; frame rate: 4x32-bit;
        bit rate: 3x32-bit — ~10 words per bucket.
        """
        words = 10 * self.buckets
        blocks = words * 32 / (128 * 1024)
        from repro.capture.resources import TOFINO_BUDGET

        return {
            "sram_blocks": blocks,
            "sram_percent": 100.0 * blocks / TOFINO_BUDGET["sram_blocks"],
        }
