"""Tofino resource-usage model for the capture program (Table 5).

We obviously cannot compile to a real Tofino here, so the model works the
way switch resource estimation does in practice: each functional component
is described by the match-action tables and register arrays it needs, and a
cost model maps those to stages, TCAM, SRAM, VLIW instructions, and hash
units.  The constants are calibrated so the three components of the paper's
program reproduce Table 5's numbers; the value of the model is that
*variations* (bigger register arrays, no anonymization, more prefixes) can
be costed consistently — see the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Total resources of one Tofino pipeline, used to express percentages.
#: (Stage count is per pipeline; other budgets are the fractions' basis.)
TOFINO_BUDGET = {
    "stages": 12,
    "tcam_blocks": 288,
    "sram_blocks": 960,
    "instruction_slots": 384,
    "hash_units": 72,
}


@dataclass(frozen=True, slots=True)
class TableSpec:
    """One match-action table or register structure in the P4 program.

    Attributes:
        name: Human-readable identity.
        match_kind: ``"ternary"`` (TCAM), ``"exact"`` (SRAM), or
            ``"register"`` (stateful SRAM array).
        key_bits: Match key width.
        entries: Table capacity / register slots.
        actions: Number of distinct actions (drives instruction slots).
        hash_units: Hash engines needed (register indexing, selectors).
        stages: Pipeline stages this structure occupies.
    """

    name: str
    match_kind: str
    key_bits: int
    entries: int
    actions: int = 1
    hash_units: int = 0
    stages: int = 1


@dataclass
class ComponentUsage:
    """Resource totals of one functional component, absolute and relative."""

    name: str
    stages: int = 0
    tcam_blocks: float = 0.0
    sram_blocks: float = 0.0
    instruction_slots: float = 0.0
    hash_units: int = 0

    def percentages(self) -> dict[str, float]:
        """Resource use as percentages of the Tofino budget (Table 5)."""
        return {
            "stages": float(self.stages),
            "tcam": 100.0 * self.tcam_blocks / TOFINO_BUDGET["tcam_blocks"],
            "sram": 100.0 * self.sram_blocks / TOFINO_BUDGET["sram_blocks"],
            "instructions": 100.0
            * self.instruction_slots
            / TOFINO_BUDGET["instruction_slots"],
            "hash_units": 100.0 * self.hash_units / TOFINO_BUDGET["hash_units"],
        }


#: TCAM blocks are 44 bits x 512 entries; SRAM blocks 128 bits x 1024 words.
_TCAM_BLOCK_BITS = 44
_TCAM_BLOCK_ENTRIES = 512
_SRAM_BLOCK_BITS = 128
_SRAM_BLOCK_WORDS = 1024


def cost(table: TableSpec) -> ComponentUsage:
    """Cost one table/register under the block-granular allocation model."""
    usage = ComponentUsage(name=table.name, stages=table.stages)
    if table.match_kind == "ternary":
        width_blocks = -(-table.key_bits // _TCAM_BLOCK_BITS)
        depth_blocks = -(-table.entries // _TCAM_BLOCK_ENTRIES)
        usage.tcam_blocks = width_blocks * depth_blocks
        usage.sram_blocks = 0.5 * depth_blocks  # action data overhead
        usage.hash_units += table.hash_units
    elif table.match_kind == "exact":
        bits = table.key_bits * table.entries
        usage.sram_blocks = bits / (_SRAM_BLOCK_BITS * _SRAM_BLOCK_WORDS)
        usage.hash_units += max(table.hash_units, 1)
    elif table.match_kind == "register":
        bits = table.key_bits * table.entries
        usage.sram_blocks = bits / (_SRAM_BLOCK_BITS * _SRAM_BLOCK_WORDS)
        usage.hash_units += table.hash_units or 2
    else:
        raise ValueError(f"unknown match kind {table.match_kind!r}")
    usage.instruction_slots = float(table.actions + table.stages)
    return usage


#: The three functional components of Figure 13's program, described as the
#: tables they would compile to.  Entry counts follow the deployment in the
#: paper: 117 Zoom prefixes plus campus prefixes in TCAM, 64k-slot register
#: pairs for P2P endpoints, and ONTAS-style anonymization tables.
ZOOM_IP_MATCH = (
    TableSpec("zoom_ipv4_src", "ternary", key_bits=32, entries=256, actions=2),
    TableSpec("zoom_ipv4_dst", "ternary", key_bits=32, entries=256, actions=1, stages=1),
)

P2P_DETECTION = (
    TableSpec("campus_side_select", "ternary", key_bits=132, entries=512, actions=2),
    TableSpec(
        "p2p_sources", "register", key_bits=104, entries=65536, actions=2, hash_units=5, stages=3
    ),
    TableSpec(
        "p2p_destinations",
        "register",
        key_bits=104,
        entries=65536,
        actions=2,
        hash_units=5,
        stages=3,
    ),
    TableSpec("stun_classify", "exact", key_bits=48, entries=1024, actions=3, stages=0, hash_units=2),
)

ANONYMIZATION = (
    TableSpec("anon_class", "ternary", key_bits=32, entries=2048, actions=2, stages=1),
    TableSpec("anon_ipv4_src", "exact", key_bits=32, entries=16384, actions=4, stages=4, hash_units=2),
    TableSpec("anon_ipv4_dst", "exact", key_bits=32, entries=16384, actions=4, stages=4, hash_units=2),
    TableSpec("anon_mac", "exact", key_bits=96, entries=4096, actions=4, stages=2, hash_units=2),
)

COMPONENTS: dict[str, tuple[TableSpec, ...]] = {
    "Zoom IP Match": ZOOM_IP_MATCH,
    "P2P Detection": P2P_DETECTION,
    "Anonymization": ANONYMIZATION,
}


def component_usage(name: str, tables: tuple[TableSpec, ...] | None = None) -> ComponentUsage:
    """Total resource usage of one component."""
    tables = tables if tables is not None else COMPONENTS[name]
    total = ComponentUsage(name=name)
    for table in tables:
        usage = cost(table)
        total.stages += usage.stages
        total.tcam_blocks += usage.tcam_blocks
        total.sram_blocks += usage.sram_blocks
        total.instruction_slots += usage.instruction_slots
        total.hash_units += usage.hash_units
    return total


def resource_usage_table() -> list[ComponentUsage]:
    """Per-component usage — the rows of Table 5."""
    return [component_usage(name) for name in COMPONENTS]


def total_usage() -> ComponentUsage:
    """Whole-program usage; must fit the Tofino budget."""
    total = ComponentUsage(name="total")
    for component in resource_usage_table():
        total.stages += component.stages
        total.tcam_blocks += component.tcam_blocks
        total.sram_blocks += component.sram_blocks
        total.instruction_slots += component.instruction_slots
        total.hash_units += component.hash_units
    return total


def fits_budget(usage: ComponentUsage | None = None) -> bool:
    """Whether the program fits one Tofino pipeline.

    Stages from different components share the pipeline (tables can be
    placed side by side), so the stage check uses the maximum component
    depth rather than the sum.
    """
    if usage is None:
        deepest = max(component.stages for component in resource_usage_table())
        usage = total_usage()
        stage_need = deepest
    else:
        stage_need = usage.stages
    return (
        stage_need <= TOFINO_BUDGET["stages"]
        and usage.tcam_blocks <= TOFINO_BUDGET["tcam_blocks"]
        and usage.sram_blocks <= TOFINO_BUDGET["sram_blocks"]
        and usage.instruction_slots <= TOFINO_BUDGET["instruction_slots"]
        and usage.hash_units <= TOFINO_BUDGET["hash_units"]
    )
