"""In-network monitoring *and control* actions (§8 "Discussion").

The paper's discussion sketches what a programmable switch could do with the
parsed Zoom headers beyond measurement: "annotating packets (e.g., using
DSCP) based on their type [or] relative importance" and "selectively
forwarding layers in an SVC stream ... dynamically in response to
congestion".  This module implements both actions over captured packets:

* :class:`DscpAnnotator` rewrites the IPv4 DSCP field per decoded media
  type, so downstream queues can prioritize audio over video over screen
  share over control traffic;
* :class:`SvcLayerDropper` models temporal-layer SVC thinning: when told the
  egress is congested, it drops FEC shadow packets first and, at the
  aggressive setting, every other video frame — halving frame rate without
  corrupting the stream (frames are dropped whole, by frame sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.ethernet import EthernetHeader
from repro.net.ip import IPv4Header
from repro.net.packet import CapturedPacket, parse_frame
from repro.zoom.constants import RTPPayloadType, ZoomMediaType
from repro.zoom.packets import parse_zoom_payload

#: Default DSCP plan: expedited forwarding for audio, high-priority assured
#: forwarding for video, lower AF class for screen share, best effort for
#: everything else (incl. control packets).
DEFAULT_DSCP_PLAN: dict[int, int] = {
    int(ZoomMediaType.AUDIO): 46,         # EF
    int(ZoomMediaType.VIDEO): 34,         # AF41
    int(ZoomMediaType.SCREEN_SHARE): 26,  # AF31
}
BEST_EFFORT_DSCP = 0


def _rewrite_dscp(packet: CapturedPacket, dscp: int) -> CapturedPacket:
    """Return a copy of the frame with the IPv4 DSCP field set."""
    try:
        ether, l2_len = EthernetHeader.parse(packet.data)
        ip, ip_len = IPv4Header.parse(packet.data[l2_len:])
    except ValueError:
        return packet
    if ip.dscp == dscp:
        return packet
    new_ip = IPv4Header(
        src=ip.src,
        dst=ip.dst,
        protocol=ip.protocol,
        total_length=ip.total_length,
        ttl=ip.ttl,
        identification=ip.identification,
        dscp=dscp,
        ecn=ip.ecn,
        flags=ip.flags,
        fragment_offset=ip.fragment_offset,
    )
    body = packet.data[l2_len + ip_len :]
    return CapturedPacket(packet.timestamp, packet.data[:l2_len] + new_ip.serialize() + body)


@dataclass
class DscpAnnotator:
    """Per-media-type DSCP marking of Zoom packets.

    Non-Zoom or undecodable packets get ``BEST_EFFORT_DSCP``.  The
    ``from_server`` hint follows the usual port-8801 rule when ``None``.
    """

    plan: dict[int, int] = field(default_factory=lambda: dict(DEFAULT_DSCP_PLAN))
    marked: int = 0
    best_effort: int = 0

    def annotate(self, packet: CapturedPacket) -> CapturedPacket:
        parsed = parse_frame(packet.data, packet.timestamp)
        if not parsed.is_udp:
            return packet
        from_server = 8801 in (parsed.src_port, parsed.dst_port)
        zoom = parse_zoom_payload(parsed.payload, from_server=from_server)
        if zoom.is_media and zoom.media is not None:
            dscp = self.plan.get(zoom.media.media_type, BEST_EFFORT_DSCP)
        else:
            dscp = BEST_EFFORT_DSCP
        if dscp == BEST_EFFORT_DSCP:
            self.best_effort += 1
        else:
            self.marked += 1
        return _rewrite_dscp(packet, dscp)


@dataclass
class SvcLayerDropper:
    """Temporal SVC thinning under congestion.

    Args:
        congested: Predicate of capture time; when it returns True, thinning
            is active.
        drop_fec: Drop payload-type-110 shadow packets while congested.
        halve_frame_rate: Additionally drop whole odd-``frame_sequence``
            video frames (a temporal layer), halving the delivered rate.
    """

    congested: Callable[[float], bool]
    drop_fec: bool = True
    halve_frame_rate: bool = False
    passed: int = 0
    dropped_fec: int = 0
    dropped_frames: int = 0

    def admit(self, packet: CapturedPacket) -> CapturedPacket | None:
        """Forward or drop one packet; returns ``None`` when dropped."""
        if not self.congested(packet.timestamp):
            self.passed += 1
            return packet
        parsed = parse_frame(packet.data, packet.timestamp)
        if not parsed.is_udp:
            self.passed += 1
            return packet
        from_server = 8801 in (parsed.src_port, parsed.dst_port)
        zoom = parse_zoom_payload(parsed.payload, from_server=from_server)
        if zoom.is_media and zoom.rtp is not None and zoom.media is not None:
            if self.drop_fec and zoom.rtp.payload_type == RTPPayloadType.FEC:
                self.dropped_fec += 1
                return None
            if (
                self.halve_frame_rate
                and zoom.media.media_type == ZoomMediaType.VIDEO
                and zoom.media.frame_sequence % 2 == 1
            ):
                self.dropped_frames += 1
                return None
        self.passed += 1
        return packet

    def process(self, packets) -> list[CapturedPacket]:
        """Batch convenience."""
        out = []
        for packet in packets:
            admitted = self.admit(packet)
            if admitted is not None:
                out.append(admitted)
        return out
