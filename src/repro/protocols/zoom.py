"""Zoom as a protocol plugin: the §4.1 detector + §4.2 dissector.

This is the original pipeline behaviour, refactored behind the
:class:`~repro.protocols.base.ProtocolPlugin` contract with **bit-identical
output** (proven by the unregenerated golden snapshots): the classify-stage
decision tree, the telemetry counter names, the detector's own counters, and
the demux accounting all match the pre-registry code path exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.detector import ZoomClass, ZoomTrafficDetector
from repro.core.events import RTCPObserved
from repro.core.metrics.latency import TCPRTTEstimator
from repro.core.streams import RTPPacketRecord
from repro.protocols.base import ProtocolPlugin
from repro.zoom.constants import ENCAP_OTHER, SERVER_MEDIA_PORT
from repro.zoom.packets import parse_zoom_payload
from repro.zoom.sfu_encap import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import AnalyzerConfig
    from repro.core.detector import StunTracker
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.core.stages.base import PacketContext
    from repro.net.packet import ParsedPacket
    from repro.telemetry.registry import Telemetry


class ZoomPlugin(ProtocolPlugin):
    """The Zoom detector/dissector pair behind the plugin contract.

    Owns the stateful :class:`~repro.core.detector.ZoomTrafficDetector`
    (the analyzer exposes the same object as ``result.detector`` so shard
    merges and the report layers keep working unchanged).
    """

    name = "zoom"
    priority = 0
    classes = tuple(ZoomClass)

    def __init__(self, detector: ZoomTrafficDetector) -> None:
        self.detector = detector

    @classmethod
    def from_config(cls, config: "AnalyzerConfig") -> "ZoomPlugin":
        return cls(
            ZoomTrafficDetector(
                config.zoom_subnets,
                campus_subnets=config.campus_subnets,
                stun_timeout=config.stun_timeout,
            )
        )

    # ------------------------------------------------------------- prefilter

    @property
    def prefilter_networks(self) -> tuple:
        return tuple(self.detector.matcher.networks)

    @property
    def stun_trackers(self) -> tuple["StunTracker", ...]:
        return (self.detector.stun,)

    # ------------------------------------------------------------- detection

    def classify(self, parsed: "ParsedPacket") -> ZoomClass:
        """Delegates to the detector — returns ``NOT_ZOOM`` rather than
        ``None`` for unclaimed packets so the detector's per-class counters
        keep their original semantics (every packet is counted)."""
        return self.detector.classify(parsed)

    def would_claim(self, parsed: "ParsedPacket") -> bool:
        """The detector's decision tree, re-evaluated without mutation.

        Mirrors :meth:`ZoomTrafficDetector._classify` with
        :meth:`~repro.core.detector.StunTracker.peek` in place of the
        refreshing ``lookup`` and no STUN learning.
        """
        detector = self.detector
        src_ip, dst_ip = parsed.src_ip, parsed.dst_ip
        if src_ip is None:
            return False
        if detector.matcher.matches(src_ip) or detector.matcher.matches(dst_ip):
            # Every server-side branch of the tree yields a Zoom class.
            return True
        if parsed.is_udp:
            now = parsed.timestamp
            stun = detector.stun
            if detector._endpoint_is_campus(src_ip) is not False and stun.peek(
                src_ip, parsed.src_port or 0, now
            ):
                return True
            if detector._endpoint_is_campus(dst_ip) is not False and stun.peek(
                dst_ip, parsed.dst_port or 0, now
            ):
                return True
        return False

    def account_unclaimed_batch(self, count: int) -> None:
        self.detector.counters.add(ZoomClass.NOT_ZOOM, count)

    def on_claimed(self, ctx: "PacketContext", result: "AnalysisResult") -> bool:
        parsed = ctx.parsed
        klass = ctx.klass
        assert parsed is not None and klass is not None
        if klass is ZoomClass.SERVER_TLS:
            self._observe_tcp(parsed, result)
            return False
        if klass is ZoomClass.SERVER_STUN:
            result.stun_packets += 1
            return False
        if not klass.is_media or not parsed.is_udp:
            return False
        ctx.five_tuple = parsed.five_tuple
        return ctx.five_tuple is not None

    # ------------------------------------------------------------ dissection

    def dissect(
        self,
        ctx: "PacketContext",
        result: "AnalysisResult",
        bus: "EventBus",
        telemetry: "Telemetry",
    ) -> bool:
        parsed = ctx.parsed
        assert parsed is not None and ctx.five_tuple is not None
        from_server = ctx.klass is ZoomClass.SERVER_MEDIA
        zoom = parse_zoom_payload(parsed.payload, from_server=from_server)
        ctx.zoom = zoom
        if zoom.media is None or not (zoom.is_media or zoom.is_rtcp):
            result.undecoded_packets += 1
            result.encap_packets[ENCAP_OTHER] += 1
            result.encap_bytes[ENCAP_OTHER] += len(parsed.payload)
            telemetry.count("demux.undecoded")
            return False
        media_type = zoom.media.media_type
        result.encap_packets[media_type] += 1
        result.encap_bytes[media_type] += len(parsed.payload)
        if zoom.is_rtcp:
            telemetry.count("demux.rtcp")
            self._observe_rtcp(zoom, parsed.timestamp, result, bus, telemetry)
            return False
        assert zoom.rtp is not None
        to_server: bool | None
        if zoom.is_p2p:
            to_server = None
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.FROM_SFU:
            to_server = False
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.TO_SFU:
            to_server = True
        else:
            # Fall back on the well-known server port.
            to_server = parsed.dst_port == SERVER_MEDIA_PORT
        record = RTPPacketRecord(
            timestamp=parsed.timestamp,
            five_tuple=ctx.five_tuple,
            ssrc=zoom.rtp.ssrc,
            payload_type=zoom.rtp.payload_type,
            sequence=zoom.rtp.sequence,
            rtp_timestamp=zoom.rtp.timestamp,
            marker=zoom.rtp.marker,
            media_type=media_type,
            payload_len=len(zoom.rtp_payload),
            udp_payload_len=len(parsed.payload),
            frame_sequence=zoom.media.frame_sequence,
            packets_in_frame=zoom.media.packets_in_frame,
            is_p2p=zoom.is_p2p,
            to_server=to_server,
        )
        result.payload_type_packets[(media_type, record.payload_type)] += 1
        result.payload_type_bytes[(media_type, record.payload_type)] += record.payload_len
        ctx.record = record
        return True

    def _observe_rtcp(
        self,
        zoom,
        timestamp: float,
        result: "AnalysisResult",
        bus: "EventBus",
        telemetry: "Telemetry",
    ) -> None:
        from repro.rtp.rtcp import RTCPReceiverReport, RTCPSdes, RTCPSenderReport

        for report in zoom.rtcp:
            if isinstance(report, RTCPSenderReport):
                result.rtcp_sender_reports += 1
            elif isinstance(report, RTCPSdes):
                if report.is_empty:
                    result.rtcp_sdes_empty += 1
            elif isinstance(report, RTCPReceiverReport):
                result.rtcp_receiver_reports += 1
                telemetry.count("demux.rtcp_receiver_reports")
            bus.emit(RTCPObserved(timestamp=timestamp, report=report))

    def _observe_tcp(self, parsed: "ParsedPacket", result: "AnalysisResult") -> None:
        src_is_zoom = self.detector.matcher.matches(parsed.src_ip)
        if src_is_zoom:
            client_ip, server_ip = parsed.dst_ip, parsed.src_ip
        else:
            client_ip, server_ip = parsed.src_ip, parsed.dst_ip
        if client_ip is None or server_ip is None:
            return
        key = (client_ip, server_ip)
        estimator = result.tcp_rtt.get(key)
        if estimator is None:
            estimator = result.tcp_rtt[key] = TCPRTTEstimator(client_ip, server_ip)
        estimator.observe(parsed)

    # --------------------------------------------------------------- sharing

    def observe_stun(self, parsed: "ParsedPacket") -> bool:
        return self.detector.observe_stun(parsed)

    def purge(self, now: float) -> int:
        return self.detector.stun.purge(now)

    # ------------------------------------------------------------------- CLI

    def flow_tag(self, klass) -> str:
        return "p2p" if klass is ZoomClass.P2P_MEDIA else "server"

    def dissect_text(self, parsed: "ParsedPacket", klass) -> str:
        from repro.core.dissector import dissect_text

        return dissect_text(
            parsed.payload, from_server=(klass is ZoomClass.SERVER_MEDIA)
        )
