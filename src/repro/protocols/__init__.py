"""Protocol plugin registry: Zoom is one dissector among many (DESIGN §14)."""

from repro.protocols.base import (
    ProtocolClass,
    ProtocolPlugin,
    protocol_counter_seeds,
)
from repro.protocols.registry import PLUGIN_FACTORIES, build_registry
from repro.protocols.rtp import RtpClass, RtpPlugin, looks_like_rtcp
from repro.protocols.zoom import ZoomPlugin

__all__ = [
    "PLUGIN_FACTORIES",
    "ProtocolClass",
    "ProtocolPlugin",
    "RtpClass",
    "RtpPlugin",
    "ZoomPlugin",
    "build_registry",
    "looks_like_rtcp",
    "protocol_counter_seeds",
]
