"""Generic RTP-over-UDP / WebRTC plugin: same window metrics, no app headers.

WebRTC-family applications (Meet, Webex, browser calls) negotiate media
flows with ICE: cleartext STUN binding exchanges on the *same 5-tuple* the
RTP media then uses.  That makes the paper's P2P trick work without any
Zoom-specific knowledge — learn the endpoints from the STUN magic cookie,
then decode standard RFC 3550 RTP/RTCP on those endpoints:

* **Detection** — any UDP frame that `is_stun` teaches the tracker *both*
  endpoints (either end may be the monitored side) and is claimed as
  ``RTP_STUN``; a later UDP frame touching a learned endpoint whose payload
  passes the RTP (or RTCP) format check is claimed as ``RTP_MEDIA``.
* **Dissection** — RTCP compounds feed the same SR/SDES/RR accounting and
  bus events as Zoom RTCP; RTP packets become
  :class:`~repro.core.streams.RTPPacketRecord` with the payload type mapped
  onto the canonical media-type values (``AUDIO``/``VIDEO``) so the §5
  estimators, stream table, QoE tracker, service windows, and store records
  work unchanged.
* **Frames** — plain RTP has no ``packets_in_frame`` header, but the marker
  bit flags the last packet of a video frame (RFC 3550 §5.1).  The plugin
  synthesizes stateless instant-completion frame fields on marker packets
  (``packets_in_frame=1``, ``frame_sequence=sequence``): delivered frame
  rate and frame spacing are exact, per-frame byte sizes are lower bounds
  (last packet only) — the estimate the WebRTC-QoE literature shows is
  enough for QoE scoring without application headers.

Because ICE STUN rides the media 5-tuple, flow-affine sharding keeps each
flow's STUN preamble and media on the same shard with no extra hint
replication.  (Flows that STUN only against a *separate* server address on
port 3478 still replicate through the existing hint path.)
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.core.detector import StunTracker
from repro.core.events import RTCPObserved
from repro.core.streams import RTPPacketRecord
from repro.protocols.base import ProtocolPlugin
from repro.rtp.rtp import RTP_VERSION, RTPHeader, looks_like_rtp
from repro.rtp.stun import is_stun
from repro.zoom.constants import ENCAP_OTHER, ZoomMediaType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import AnalyzerConfig
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.core.stages.base import PacketContext
    from repro.net.packet import ParsedPacket
    from repro.telemetry.registry import Telemetry

#: Default payload types mapped to the audio media type; everything else
#: decodable as RTP is treated as video.  Covers the static audio PTs of
#: RFC 3551 plus Opus as commonly negotiated (111).
DEFAULT_AUDIO_PAYLOAD_TYPES = (0, 8, 9, 13, 111)


def looks_like_rtcp(payload: bytes | memoryview) -> bool:
    """Version-2 header whose packet-type field sits in the RTCP range.

    The RFC 5761 demux rule for RTP/RTCP sharing one port: payload types
    72–76 collide with RTCP packet types 200–204 (SR/RR/SDES/BYE/APP)
    once the marker bit is masked off.
    """
    if len(payload) < 4:
        return False
    if payload[0] >> 6 != RTP_VERSION:
        return False
    return 72 <= (payload[1] & 0x7F) <= 76


class RtpClass(enum.Enum):
    """Classification of one packet by the generic RTP plugin."""

    RTP_STUN = "rtp_stun"  # ICE/STUN exchange (teaches the endpoint tracker)
    RTP_MEDIA = "rtp_media"  # RTP or RTCP on a STUN-learned endpoint

    @property
    def claimed(self) -> bool:
        return True

    @property
    def is_media(self) -> bool:
        return self is RtpClass.RTP_MEDIA


class RtpPlugin(ProtocolPlugin):
    """Generic RTP/WebRTC detection and dissection (no app headers)."""

    name = "rtp"
    priority = 10
    classes = tuple(RtpClass)
    sniff_all_stun = True

    def __init__(
        self,
        *,
        stun_timeout: float = 120.0,
        audio_payload_types: tuple[int, ...] = DEFAULT_AUDIO_PAYLOAD_TYPES,
    ) -> None:
        self.stun = StunTracker(timeout=stun_timeout)
        self._audio_payload_types = frozenset(audio_payload_types)

    @classmethod
    def from_config(cls, config: "AnalyzerConfig") -> "RtpPlugin":
        return cls(
            stun_timeout=config.stun_timeout,
            audio_payload_types=config.protocols.rtp_audio_payload_types,
        )

    @property
    def stun_trackers(self) -> tuple[StunTracker, ...]:
        return (self.stun,)

    # ------------------------------------------------------------- detection

    def classify(self, parsed: "ParsedPacket") -> RtpClass | None:
        if not parsed.is_udp:
            return None
        payload = parsed.payload
        if is_stun(payload):
            now = parsed.timestamp
            if parsed.src_ip is not None and parsed.src_port is not None:
                self.stun.learn(parsed.src_ip, parsed.src_port, now)
            if parsed.dst_ip is not None and parsed.dst_port is not None:
                self.stun.learn(parsed.dst_ip, parsed.dst_port, now)
            return RtpClass.RTP_STUN
        now = parsed.timestamp
        tracked = self.stun.lookup(
            parsed.src_ip or "", parsed.src_port or 0, now, refresh=True
        ) or self.stun.lookup(
            parsed.dst_ip or "", parsed.dst_port or 0, now, refresh=True
        )
        if not tracked:
            return None
        if looks_like_rtcp(payload) or looks_like_rtp(payload):
            return RtpClass.RTP_MEDIA
        return None

    def would_claim(self, parsed: "ParsedPacket") -> bool:
        if not parsed.is_udp:
            return False
        payload = parsed.payload
        if is_stun(payload):
            return True
        now = parsed.timestamp
        tracked = self.stun.peek(
            parsed.src_ip or "", parsed.src_port or 0, now
        ) or self.stun.peek(parsed.dst_ip or "", parsed.dst_port or 0, now)
        return tracked and (looks_like_rtcp(payload) or looks_like_rtp(payload))

    def on_claimed(self, ctx: "PacketContext", result: "AnalysisResult") -> bool:
        parsed = ctx.parsed
        assert parsed is not None
        if ctx.klass is RtpClass.RTP_STUN:
            result.stun_packets += 1
            return False
        ctx.five_tuple = parsed.five_tuple
        return ctx.five_tuple is not None

    # ------------------------------------------------------------ dissection

    def dissect(
        self,
        ctx: "PacketContext",
        result: "AnalysisResult",
        bus: "EventBus",
        telemetry: "Telemetry",
    ) -> bool:
        parsed = ctx.parsed
        assert parsed is not None and ctx.five_tuple is not None
        payload = parsed.payload
        if looks_like_rtcp(payload):
            if self._observe_rtcp(payload, parsed.timestamp, result, bus, telemetry):
                return False
            return self._undecoded(payload, result, telemetry)
        try:
            header, payload_offset = RTPHeader.parse(payload)
        except ValueError:
            return self._undecoded(payload, result, telemetry)
        if header.payload_type in self._audio_payload_types:
            media_type = int(ZoomMediaType.AUDIO)
        else:
            media_type = int(ZoomMediaType.VIDEO)
        # Marker-synthesized frame fields (module docstring): exact frame
        # timing, lower-bound frame sizes, zero per-flow assembler state.
        if media_type == ZoomMediaType.VIDEO and header.marker:
            frame_sequence = header.sequence
            packets_in_frame = 1
        else:
            frame_sequence = 0
            packets_in_frame = 0
        record = RTPPacketRecord(
            timestamp=parsed.timestamp,
            five_tuple=ctx.five_tuple,
            ssrc=header.ssrc,
            payload_type=header.payload_type,
            sequence=header.sequence,
            rtp_timestamp=header.timestamp,
            marker=header.marker,
            media_type=media_type,
            payload_len=len(payload) - payload_offset,
            udp_payload_len=len(payload),
            frame_sequence=frame_sequence,
            packets_in_frame=packets_in_frame,
            is_p2p=True,
            to_server=None,
            protocol=self.name,
        )
        result.encap_packets[media_type] += 1
        result.encap_bytes[media_type] += len(payload)
        result.payload_type_packets[(media_type, record.payload_type)] += 1
        result.payload_type_bytes[(media_type, record.payload_type)] += record.payload_len
        ctx.record = record
        return True

    def _observe_rtcp(
        self,
        payload: bytes | memoryview,
        timestamp: float,
        result: "AnalysisResult",
        bus: "EventBus",
        telemetry: "Telemetry",
    ) -> bool:
        from repro.rtp.rtcp import (
            RTCPReceiverReport,
            RTCPSdes,
            RTCPSenderReport,
            parse_rtcp_compound,
        )

        reports = parse_rtcp_compound(bytes(payload))
        if not reports:
            return False
        result.encap_packets[int(ZoomMediaType.RTCP_SR)] += 1
        result.encap_bytes[int(ZoomMediaType.RTCP_SR)] += len(payload)
        telemetry.count("demux.rtcp")
        for report in reports:
            if isinstance(report, RTCPSenderReport):
                result.rtcp_sender_reports += 1
            elif isinstance(report, RTCPSdes):
                if report.is_empty:
                    result.rtcp_sdes_empty += 1
            elif isinstance(report, RTCPReceiverReport):
                result.rtcp_receiver_reports += 1
                telemetry.count("demux.rtcp_receiver_reports")
            bus.emit(RTCPObserved(timestamp=timestamp, report=report))
        return True

    def _undecoded(
        self,
        payload: bytes | memoryview,
        result: "AnalysisResult",
        telemetry: "Telemetry",
    ) -> bool:
        result.undecoded_packets += 1
        result.encap_packets[ENCAP_OTHER] += 1
        result.encap_bytes[ENCAP_OTHER] += len(payload)
        telemetry.count("demux.undecoded")
        return False

    # --------------------------------------------------------------- sharing

    def observe_stun(self, parsed: "ParsedPacket") -> bool:
        """Learn both endpoints of a replicated STUN frame (hint path)."""
        if not parsed.is_udp or not is_stun(parsed.payload):
            return False
        learned = False
        if parsed.src_ip is not None and parsed.src_port is not None:
            self.stun.learn(parsed.src_ip, parsed.src_port, parsed.timestamp)
            learned = True
        if parsed.dst_ip is not None and parsed.dst_port is not None:
            self.stun.learn(parsed.dst_ip, parsed.dst_port, parsed.timestamp)
            learned = True
        return learned

    def purge(self, now: float) -> int:
        return self.stun.purge(now)

    # ------------------------------------------------------------------- CLI

    def flow_tag(self, klass) -> str:
        return "stun" if klass is RtpClass.RTP_STUN else "p2p"

    def dissect_text(self, parsed: "ParsedPacket", klass) -> str:
        payload = parsed.payload
        if is_stun(payload):
            return "STUN binding (ICE) — endpoint learned\n"
        if looks_like_rtcp(payload):
            from repro.rtp.rtcp import parse_rtcp_compound

            reports = parse_rtcp_compound(bytes(payload))
            lines = [f"RTCP compound ({len(reports)} report(s))"]
            for report in reports:
                lines.append(
                    f"  {type(report).__name__} ssrc=0x{report.ssrc:08x}"
                )
            return "\n".join(lines) + "\n"
        try:
            header, payload_offset = RTPHeader.parse(payload)
        except ValueError:
            return "undecodable payload\n"
        media = (
            "audio"
            if header.payload_type in self._audio_payload_types
            else "video"
        )
        return (
            f"Real-Time Transport Protocol pt={header.payload_type} ({media}) "
            f"ssrc=0x{header.ssrc:08x} seq={header.sequence} "
            f"ts={header.timestamp} marker={int(header.marker)} "
            f"payload={len(payload) - payload_offset}B\n"
        )
