"""The protocol plugin contract: detector + dissector + prefilter hints.

The staged pipeline (:mod:`repro.core.stages`) is protocol-agnostic: the
classify stage asks each enabled plugin, in deterministic ``(priority,
name)`` order, whether it *claims* a parsed packet, and the demux stage
hands claimed media-class packets to the claimant's :meth:`dissect` to
produce the normalized :class:`~repro.core.streams.RTPPacketRecord` every
downstream layer (assembly, metrics, QoE, store, service windows) already
consumes.  A plugin therefore bundles four concerns:

1. **Detection** — :meth:`classify` returns a protocol-class enum member
   (``claimed`` True/False) or ``None``; it may mutate plugin state (STUN
   endpoint learning) exactly the way the scalar path would.
2. **Dissection** — :meth:`dissect` decodes a claimed media packet into an
   :class:`~repro.core.streams.RTPPacketRecord` (or stops the pipeline for
   control/RTCP packets), tagging the record with :attr:`name`.
3. **Prefilter hints** — :attr:`prefilter_networks`,
   :attr:`sniff_all_stun`, and :attr:`stun_trackers` let
   :meth:`repro.net.batch.BatchPrefilter.from_plugins` compile the union
   of every enabled plugin's match-action rules, preserving the batch
   path's guarantee: a dropped frame is provably unclaimed by *every*
   plugin and touches no plugin state.
4. **Conflict probing** — :meth:`would_claim` is a side-effect-free
   re-evaluation used to count ``protocols.conflicts`` when a lower-
   priority plugin would also have claimed a packet.

Class enums are per-plugin (``ZoomClass``, ``RtpClass``) but share a tiny
structural contract: a string ``value`` (telemetry counter suffix), a
``claimed`` property, and an ``is_media`` property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import StunTracker
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.core.stages.base import PacketContext
    from repro.net.packet import ParsedPacket
    from repro.telemetry.registry import Telemetry


@runtime_checkable
class ProtocolClass(Protocol):
    """Structural contract of a plugin's classification enum members."""

    value: str

    @property
    def claimed(self) -> bool: ...

    @property
    def is_media(self) -> bool: ...


class ProtocolPlugin:
    """Base class / contract for one protocol's detector + dissector.

    Subclasses set :attr:`name`, :attr:`priority`, and :attr:`classes`,
    and implement the methods below.  The default attribute values make a
    plugin with no prefilter footprint (nothing passes on its behalf
    beyond what other plugins compile in).
    """

    #: Registry key, telemetry dimension, and record label.
    name: str = "?"

    #: Claim precedence — lower wins; ties break on :attr:`name`.
    priority: int = 100

    #: Every classification this plugin can return (for counter pre-resolution).
    classes: Sequence[ProtocolClass] = ()

    #: Prefilter rule: subnets whose traffic must always pass.
    prefilter_networks: tuple = ()

    #: Prefilter rule: sniff the STUN magic cookie on *every* IPv4/UDP
    #: frame (not just well-known-port frames in plugin subnets) because
    #: this plugin can learn endpoints from arbitrary-port STUN.
    sniff_all_stun: bool = False

    @property
    def stun_trackers(self) -> tuple["StunTracker", ...]:
        """Endpoint trackers whose learned (ip, port) keys must pass the
        prefilter; synced into its never-expiring pass-set per batch."""
        return ()

    # ------------------------------------------------------------- detection

    def classify(self, parsed: "ParsedPacket") -> ProtocolClass | None:
        """Classify one packet, mutating plugin state as needed.

        Returns a class with ``claimed=True`` to claim the packet, a
        non-claiming class to veto it with an explicit verdict (Zoom's
        ``NOT_ZOOM``), or ``None`` to abstain.
        """
        raise NotImplementedError

    def would_claim(self, parsed: "ParsedPacket") -> bool:
        """Whether :meth:`classify` would claim — **without side effects**."""
        raise NotImplementedError

    def account_unclaimed_batch(self, count: int) -> None:
        """Bulk-account ``count`` prefilter-dropped frames.

        Dropped frames are provably unclaimed by every plugin; a plugin
        with its own per-verdict counters (Zoom's detector) applies here
        exactly what ``count`` scalar ``classify`` calls would have.
        """

    def on_claimed(self, ctx: "PacketContext", result: "AnalysisResult") -> bool:
        """Post-claim handling in the classify stage.

        Runs the protocol's non-media side channels (TLS RTT folding, STUN
        accounting) and returns ``True`` only for media-class packets that
        should continue into the demux stage, with ``ctx.five_tuple`` set.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ dissection

    def dissect(
        self,
        ctx: "PacketContext",
        result: "AnalysisResult",
        bus: "EventBus",
        telemetry: "Telemetry",
    ) -> bool:
        """Decode one claimed media-class packet.

        Sets ``ctx.record`` and returns ``True`` to advance to assembly;
        returns ``False`` for RTCP/control/undecodable payloads after
        doing their accounting (Table 2/3 counters, RTCP events).
        """
        raise NotImplementedError

    # --------------------------------------------------------------- sharing

    def observe_stun(self, parsed: "ParsedPacket") -> bool:
        """Learn endpoint state from a replicated STUN frame without
        counting it (sharded hint replication); returns whether anything
        was learned."""
        return False

    def purge(self, now: float) -> int:
        """Drop expired endpoint state (rolling sweep); returns the count."""
        return 0

    # ------------------------------------------------------------------- CLI

    def flow_tag(self, klass: ProtocolClass) -> str:
        """Short direction/kind tag for the ``dissect`` CLI header."""
        return klass.value

    def dissect_text(self, parsed: "ParsedPacket", klass: ProtocolClass) -> str:
        """Human-readable payload rendering for the ``dissect`` CLI."""
        raise NotImplementedError


def protocol_counter_seeds(names: Sequence[str]) -> tuple[str, ...]:
    """The per-protocol telemetry counters to pre-seed for ``names``.

    Seeded at analyzer construction (and therefore visible as zeros on the
    service's ``/metrics`` page before the first packet, the same pattern
    as ``qoe.*``): one claim counter and one decoded-media counter per
    enabled plugin, plus the cross-plugin conflict counter.
    """
    seeds = ["protocols.conflicts"]
    for name in names:
        seeds.append(f"protocols.claimed.{name}")
        seeds.append(f"protocols.media.{name}")
    return tuple(seeds)
