"""Plugin registry: name → factory, config → deterministic plugin tuple."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.protocols.rtp import RtpPlugin
from repro.protocols.zoom import ZoomPlugin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import AnalyzerConfig
    from repro.protocols.base import ProtocolPlugin

#: Known plugin factories keyed by registry name.  ``ProtocolConfig``
#: validates requested names against :data:`KNOWN_PROTOCOLS` (kept as a
#: plain literal there to avoid a config→protocols import cycle); this
#: mapping is the single authoritative construction point.
PLUGIN_FACTORIES: dict[str, Callable[["AnalyzerConfig"], "ProtocolPlugin"]] = {
    "zoom": ZoomPlugin.from_config,
    "rtp": RtpPlugin.from_config,
}


def build_registry(config: "AnalyzerConfig") -> tuple["ProtocolPlugin", ...]:
    """Instantiate the plugins enabled by ``config.protocols``.

    Returns them sorted by ``(priority, name)`` — the classify stage's
    claim order — so registry behaviour is deterministic regardless of
    how the ``--protocols`` list was spelled.
    """
    plugins = []
    for name in config.protocols.protocols:
        factory = PLUGIN_FACTORIES.get(name)
        if factory is None:
            known = ", ".join(sorted(PLUGIN_FACTORIES))
            raise ValueError(f"unknown protocol {name!r} (known: {known})")
        plugins.append(factory(config))
    plugins.sort(key=lambda plugin: (plugin.priority, plugin.name))
    return tuple(plugins)
