"""Unit tests for the cBPF ISA layer: assembler, packer, reference VM."""

import struct

import pytest

from repro.dataplane.cbpf import (
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_B,
    BPF_DIV,
    BPF_H,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_MAXINSNS,
    BPF_MEM,
    BPF_MISC,
    BPF_MSH,
    BPF_RET,
    BPF_ST,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BPF_X,
    Assembler,
    BPFInstruction,
    CBPFProgram,
    run_cbpf,
)


def prog(*insns):
    return CBPFProgram(list(insns))


def ret_k(k):
    return BPFInstruction(BPF_RET | BPF_K, k=k)


class TestInstructionPacking:
    def test_sock_filter_layout(self):
        insn = BPFInstruction(BPF_LD | BPF_H | BPF_ABS, jt=1, jf=2, k=12)
        assert insn.pack() == struct.pack("HBBI", 0x28, 1, 2, 12)

    def test_program_pack_concatenates(self):
        p = prog(BPFInstruction(BPF_LD | BPF_W | BPF_LEN), ret_k(0xFFFFFFFF))
        packed = p.pack()
        assert len(packed) == 2 * struct.calcsize("HBBI")
        assert packed[: struct.calcsize("HBBI")] == p.insns[0].pack()

    def test_negative_k_packs_as_u32(self):
        insn = BPFInstruction(BPF_LD | BPF_IMM, k=-1 & 0xFFFFFFFF)
        (_, _, _, k) = struct.unpack("HBBI", insn.pack())
        assert k == 0xFFFFFFFF


class TestValidator:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            prog().validate()

    def test_oversized_program_rejected(self):
        p = CBPFProgram([ret_k(0)] * (BPF_MAXINSNS + 1))
        with pytest.raises(ValueError, match="too long"):
            p.validate()

    def test_jump_out_of_range_rejected(self):
        p = prog(BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=5, jf=0, k=1), ret_k(0))
        with pytest.raises(ValueError, match="target out of range"):
            p.validate()

    def test_ja_out_of_range_rejected(self):
        p = prog(BPFInstruction(BPF_JMP | BPF_JA, k=9), ret_k(0))
        with pytest.raises(ValueError, match="ja target"):
            p.validate()

    def test_scratch_slot_out_of_range_rejected(self):
        p = prog(BPFInstruction(BPF_ST, k=16), ret_k(0))
        with pytest.raises(ValueError, match="scratch slot"):
            p.validate()

    def test_constant_div_by_zero_rejected(self):
        p = prog(BPFInstruction(BPF_ALU | BPF_DIV | BPF_K, k=0), ret_k(0))
        with pytest.raises(ValueError, match="division by zero"):
            p.validate()

    def test_fallthrough_rejected(self):
        p = prog(BPFInstruction(BPF_LD | BPF_IMM, k=1))
        with pytest.raises(ValueError, match="fall off"):
            p.validate()

    def test_minimal_accept_program_valid(self):
        prog(ret_k(0xFFFFFFFF)).validate()


class TestAssembler:
    def test_label_resolution(self):
        asm = Assembler()
        asm.emit(BPF_LD | BPF_B | BPF_ABS, k=0)
        asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=7, jt="yes", jf="no")
        asm.label("no")
        asm.ret_k(0)
        asm.label("yes")
        asm.ret_k(1)
        p = asm.assemble()
        assert p.insns[1].jt == 1  # skip over the drop
        assert p.insns[1].jf == 0  # fall through
        assert run_cbpf(p, bytes([7])) == 1
        assert run_cbpf(p, bytes([8])) == 0

    def test_ja_trampoline(self):
        asm = Assembler()
        asm.ja("end")
        for _ in range(300):  # farther than a conditional's 8-bit reach
            asm.emit(BPF_LD | BPF_IMM, k=0)
        asm.label("end")
        asm.ret_k(5)
        p = asm.assemble()
        assert p.insns[0].k == 300
        assert run_cbpf(p, b"") == 5

    def test_conditional_offset_overflow_rejected(self):
        asm = Assembler()
        asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=0, jt="far", jf="far")
        for _ in range(300):
            asm.emit(BPF_LD | BPF_IMM, k=0)
        asm.label("far")
        asm.ret_k(0)
        with pytest.raises(ValueError, match="> 255"):
            asm.assemble()

    def test_backward_jump_rejected(self):
        asm = Assembler()
        asm.label("top")
        asm.emit(BPF_LD | BPF_IMM, k=0)
        asm.ja("top")
        with pytest.raises(ValueError, match="backward"):
            asm.assemble()

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.ja("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            asm.label("x")


class TestInterpreter:
    def test_abs_loads_are_big_endian(self):
        data = bytes([0xDE, 0xAD, 0xBE, 0xEF])
        p = prog(BPFInstruction(BPF_LD | BPF_W | BPF_ABS, k=0), ret_k(0))
        # ret_k ignores A; use a jeq to observe it instead.
        asm = Assembler()
        asm.emit(BPF_LD | BPF_W | BPF_ABS, k=0)
        asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=0xDEADBEEF, jt="yes", jf="no")
        asm.label("no")
        asm.ret_k(0)
        asm.label("yes")
        asm.ret_k(1)
        assert run_cbpf(asm.assemble(), data) == 1
        assert run_cbpf(p, data) == 0

    def test_out_of_bounds_abs_load_drops(self):
        p = prog(BPFInstruction(BPF_LD | BPF_W | BPF_ABS, k=2), ret_k(99))
        assert run_cbpf(p, bytes(5)) == 0  # needs bytes 2..5
        assert run_cbpf(p, bytes(6)) == 99

    def test_out_of_bounds_ind_load_drops(self):
        p = prog(
            BPFInstruction(BPF_LDX | BPF_IMM, k=4),
            BPFInstruction(BPF_LD | BPF_B | BPF_IND, k=2),
            ret_k(7),
        )
        assert run_cbpf(p, bytes(6)) == 0
        assert run_cbpf(p, bytes(7)) == 7

    def test_msh_decodes_ip_header_length(self):
        # pkt[0] = 0x45 → X = 4 * 5 = 20
        p = prog(
            BPFInstruction(BPF_LDX | BPF_B | BPF_MSH, k=0),
            BPFInstruction(BPF_MISC | BPF_TXA),
            BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=0, jf=1, k=20),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, bytes([0x45])) == 1
        assert run_cbpf(p, bytes([0x4F])) == 0  # ihl 15 → 60

    def test_len_uses_wirelen_not_caplen(self):
        p = prog(
            BPFInstruction(BPF_LD | BPF_W | BPF_LEN),
            BPFInstruction(BPF_JMP | BPF_JGE | BPF_K, jt=0, jf=1, k=100),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, bytes(10), wirelen=150) == 1
        assert run_cbpf(p, bytes(10)) == 0

    def test_alu_wraps_u32(self):
        p = prog(
            BPFInstruction(BPF_LD | BPF_IMM, k=0xFFFFFFFF),
            BPFInstruction(BPF_ALU | BPF_ADD | BPF_K, k=2),
            BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=0, jf=1, k=1),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, b"") == 1

    def test_sub_and_jge_x(self):
        # len - 4 >= X(=ihl-style register) gate
        p = prog(
            BPFInstruction(BPF_LDX | BPF_IMM, k=20),
            BPFInstruction(BPF_LD | BPF_W | BPF_LEN),
            BPFInstruction(BPF_ALU | BPF_SUB | BPF_K, k=4),
            BPFInstruction(BPF_JMP | BPF_JGE | BPF_X, jt=0, jf=1),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, bytes(24)) == 1
        assert run_cbpf(p, bytes(23)) == 0

    def test_scratch_memory_roundtrip(self):
        p = prog(
            BPFInstruction(BPF_LD | BPF_IMM, k=42),
            BPFInstruction(BPF_ST, k=3),
            BPFInstruction(BPF_LD | BPF_IMM, k=0),
            BPFInstruction(BPF_LD | BPF_MEM, k=3),
            BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=0, jf=1, k=42),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, b"") == 1

    def test_tax_txa(self):
        p = prog(
            BPFInstruction(BPF_LD | BPF_IMM, k=9),
            BPFInstruction(BPF_MISC | BPF_TAX),
            BPFInstruction(BPF_LD | BPF_IMM, k=0),
            BPFInstruction(BPF_MISC | BPF_TXA),
            BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=0, jf=1, k=9),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, b"") == 1

    def test_and_mask(self):
        p = prog(
            BPFInstruction(BPF_LD | BPF_W | BPF_ABS, k=0),
            BPFInstruction(BPF_ALU | BPF_AND | BPF_K, k=0xFFFF0000),
            BPFInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=0, jf=1, k=0x0A080000),
            ret_k(1),
            ret_k(0),
        )
        assert run_cbpf(p, bytes([0x0A, 0x08, 0x01, 0x02])) == 1
        assert run_cbpf(p, bytes([0x0A, 0x09, 0x01, 0x02])) == 0

    def test_ret_a_returns_accumulator(self):
        # BPF_RET with BPF_A (0x10) returns A, not k.
        p = prog(
            BPFInstruction(BPF_LD | BPF_IMM, k=77),
            BPFInstruction(BPF_RET | 0x10),
        )
        assert run_cbpf(p, b"") == 77

    def test_unknown_opcode_drops(self):
        p = prog(BPFInstruction(0xFFFF), ret_k(1))
        assert run_cbpf(p, b"") == 0

    def test_dump_is_printable(self):
        p = prog(ret_k(0))
        assert "code=0x0006" in p.dump()
