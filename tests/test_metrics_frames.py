"""Tests for frame assembly from packets (§5.2)."""

import pytest

from repro.core.metrics.frames import FrameAssembler
from repro.core.streams import RTPPacketRecord

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def packet(seq, rtp_ts, *, t=1.0, n=2, payload_type=98, payload_len=500, frame_seq=1):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=FT,
        ssrc=0x110,
        payload_type=payload_type,
        sequence=seq,
        rtp_timestamp=rtp_ts,
        marker=False,
        media_type=16,
        payload_len=payload_len,
        udp_payload_len=payload_len + 50,
        frame_sequence=frame_seq,
        packets_in_frame=n,
        to_server=True,
    )


def test_single_packet_frame_completes_immediately():
    assembler = FrameAssembler()
    frame = assembler.observe(packet(1, 100, n=1))
    assert frame is not None
    assert frame.expected_packets == 1
    assert frame.payload_bytes == 500


def test_multi_packet_frame():
    assembler = FrameAssembler()
    assert assembler.observe(packet(1, 100, n=3, t=1.00)) is None
    assert assembler.observe(packet(2, 100, n=3, t=1.01)) is None
    frame = assembler.observe(packet(3, 100, n=3, t=1.02))
    assert frame is not None
    assert frame.first_time == 1.00
    assert frame.completed_time == 1.02
    assert frame.delay == pytest.approx(0.02)
    assert frame.payload_bytes == 1500


def test_duplicate_does_not_double_count():
    """Retransmitted packets (same seq) must not complete a frame early."""
    assembler = FrameAssembler()
    assembler.observe(packet(1, 100, n=2, t=1.0))
    assert assembler.observe(packet(1, 100, n=2, t=1.1)) is None  # duplicate
    frame = assembler.observe(packet(2, 100, n=2, t=1.2))
    assert frame is not None
    assert frame.duplicates == 1
    assert frame.payload_bytes == 1000  # duplicate bytes not counted


def test_fec_excluded():
    """FEC packets share the timestamp but live in their own sequence space
    and must not contribute to frame completion (§4.2.3)."""
    assembler = FrameAssembler()
    assembler.observe(packet(1, 100, n=2))
    assert assembler.observe(packet(900, 100, n=2, payload_type=110)) is None
    assert assembler.completed_count == 0
    frame = assembler.observe(packet(2, 100, n=2))
    assert frame is not None


def test_interleaved_frames():
    """Packets of two frames interleaved (e.g. retransmit tail + new frame)."""
    assembler = FrameAssembler()
    assembler.observe(packet(1, 100, n=2, t=1.0))
    assembler.observe(packet(3, 200, n=2, t=1.1))
    first = assembler.observe(packet(2, 100, n=2, t=1.2))
    second = assembler.observe(packet(4, 200, n=2, t=1.3))
    assert first.rtp_timestamp == 100
    assert second.rtp_timestamp == 200
    assert assembler.completed_count == 2


def test_zero_packets_in_frame_ignored():
    """Audio packets carry no frame fields; the assembler skips them."""
    assembler = FrameAssembler()
    assert assembler.observe(packet(1, 100, n=0)) is None
    assert assembler.completed_count == 0


def test_pending_inspection():
    assembler = FrameAssembler()
    assembler.observe(packet(1, 100, n=3))
    assert assembler.pending() == [(100, 1, 3)]


def test_eviction_bounds_memory():
    assembler = FrameAssembler(max_pending=4)
    for i in range(10):
        assembler.observe(packet(i * 10, 1000 + i, n=5, t=1.0 + i))
    assert len(assembler.pending()) <= 4
    assert assembler.abandoned_count >= 6


def test_late_duplicate_does_not_recount_frame():
    """A retransmitted copy arriving after the frame completed must not
    re-open it (that would double-count in frame-rate Method 1)."""
    assembler = FrameAssembler()
    assert assembler.observe(packet(1, 100, n=1, t=1.0)) is not None
    assert assembler.observe(packet(1, 100, n=1, t=1.15)) is None
    assert assembler.completed_count == 1
    assert assembler.late_duplicates == 1


def test_frame_sequence_carried():
    assembler = FrameAssembler()
    frame = assembler.observe(packet(1, 100, n=1, frame_seq=77))
    assert frame.frame_sequence == 77
