"""Tests for CDFs, tables, time series, and correlation helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdfs import cdf_of
from repro.analysis.correlation import pearson, spearman
from repro.analysis.tables import format_table
from repro.analysis.timeseries import ascii_plot, downsample, resample_sum


class TestCdf:
    def test_quantiles(self):
        cdf = cdf_of(range(100))
        assert cdf.quantile(0.0) == 0
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 99
        assert cdf.median == 50

    def test_probability_below(self):
        cdf = cdf_of([1, 2, 3, 4])
        assert cdf.probability_below(2) == 0.5
        assert cdf.probability_below(0) == 0.0
        assert cdf.probability_below(10) == 1.0

    def test_nan_dropped(self):
        cdf = cdf_of([1.0, float("nan"), 2.0])
        assert cdf.count == 2

    def test_empty(self):
        cdf = cdf_of([])
        assert math.isnan(cdf.quantile(0.5))
        assert math.isnan(cdf.mean)

    def test_quantile_row(self):
        cdf = cdf_of(range(1000))
        row = cdf.quantile_row((0.1, 0.9))
        assert row[0] == pytest.approx(100, abs=2)
        assert row[1] == pytest.approx(900, abs=2)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            cdf_of([1.0]).quantile(1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_quantiles_monotone(self, values):
        cdf = cdf_of(values)
        quantiles = [cdf.quantile(f / 10) for f in range(11)]
        assert quantiles == sorted(quantiles)


class TestCorrelation:
    def test_perfect_positive(self):
        xs = list(range(50))
        assert pearson(xs, xs) == pytest.approx(1.0)
        assert spearman(xs, xs) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = list(range(50))
        ys = list(reversed(xs))
        assert pearson(xs, ys) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        import random

        rng = random.Random(7)
        xs = [rng.random() for _ in range(3000)]
        ys = [rng.random() for _ in range(3000)]
        assert abs(pearson(xs, ys)) < 0.08
        assert abs(spearman(xs, ys)) < 0.08

    def test_monotone_nonlinear_spearman_one(self):
        xs = list(range(1, 40))
        ys = [x**3 for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)
        assert pearson(xs, ys) < 1.0

    def test_nan_pairs_dropped(self):
        assert pearson([1, 2, float("nan"), 4], [1, 2, 3, 4]) == pytest.approx(1.0)

    def test_degenerate(self):
        assert math.isnan(pearson([1.0], [1.0]))
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])
        with pytest.raises(ValueError):
            spearman([1], [1, 2])

    def test_spearman_with_ties(self):
        assert spearman([1, 1, 2, 2], [1, 1, 2, 2]) == pytest.approx(1.0)


class TestTables:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "1.50" in text and "22.25" in text

    def test_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert "x" in text

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text


class TestTimeseries:
    def test_resample_sum(self):
        points = [(0.5, 1.0), (0.9, 2.0), (2.2, 5.0)]
        assert resample_sum(points, 1.0) == [(0.0, 3.0), (1.0, 0.0), (2.0, 5.0)]

    def test_resample_validation(self):
        with pytest.raises(ValueError):
            resample_sum([], 0)

    def test_resample_empty(self):
        assert resample_sum([], 1.0) == []

    def test_downsample_keeps_bounds(self):
        points = [(float(i), float(i)) for i in range(100)]
        sampled = downsample(points, 10)
        assert len(sampled) == 10
        assert sampled[0] == (0.0, 0.0)

    def test_downsample_short_input_unchanged(self):
        points = [(1.0, 2.0)]
        assert downsample(points, 10) == points

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            downsample([], 0)

    def test_ascii_plot_renders(self):
        points = [(float(i), math.sin(i / 5)) for i in range(100)]
        plot = ascii_plot(points, width=40, height=8, label="sine")
        assert "sine" in plot
        assert "*" in plot
        assert len(plot.splitlines()) == 10

    def test_ascii_plot_empty(self):
        assert "no data" in ascii_plot([])
