"""Tailing-source tests: rotation, truncated tails, re-discovery idempotence.

The scenarios mirror what a capture daemon actually does to the directory:
rotate to a new file mid-meeting, leave a half-written record at the tail of
the in-progress file, and keep every finished file in place so each poll
re-discovers all of them.
"""

import io

import pytest

from repro.net.pcap import PcapReader, PcapWriter, write_pcap
from repro.net.pcapng import PcapngReader, PcapngWriter
from repro.net.source import CaptureDirectorySource, PcapFileSource
from repro.service.tail import CaptureDirectoryTailer
from repro.telemetry.registry import Telemetry


def _drain(tailer):
    """All packets from one poll, flattened."""
    return [parsed for batch in tailer.poll() for parsed in batch]


def _pcap_bytes(packets) -> bytes:
    buffer = io.BytesIO()
    with PcapWriter(buffer) as writer:
        writer.write_all(packets)
    return buffer.getvalue()


def _pcapng_bytes(packets) -> bytes:
    buffer = io.BytesIO()
    with PcapngWriter(buffer) as writer:
        writer.write_all(packets)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def captures(sfu_meeting_result):
    return sfu_meeting_result.captures


class TestReaderResume:
    def test_pcap_start_offset_resumes_exactly(self, captures, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, captures[:100])
        with PcapReader(path) as reader:
            iterator = iter(reader)
            head = [next(iterator) for _ in range(40)]
            offset = reader.next_offset
        with PcapReader(path, start_offset=offset) as reader:
            rest = list(reader)
        assert len(head) + len(rest) == 100
        assert rest[0].timestamp == pytest.approx(captures[40].timestamp, abs=1e-6)

    def test_pcap_rejects_offset_inside_header(self, captures, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, captures[:5])
        with pytest.raises(ValueError, match="global header"):
            PcapReader(path, start_offset=10)

    def test_pcap_truncated_tail_keeps_offset_at_boundary(self, captures, tmp_path):
        data = _pcap_bytes(captures[:10])
        path = tmp_path / "t.pcap"
        path.write_bytes(data[:-7])  # cut the last record mid-data
        with PcapReader(path, tolerant=True) as reader:
            got = list(reader)
            boundary = reader.next_offset
        assert len(got) == 9
        # Finish the file: resuming from the boundary retries the cut record.
        path.write_bytes(data)
        with PcapReader(path, start_offset=boundary) as reader:
            rest = list(reader)
        assert len(rest) == 1
        assert rest[0].timestamp == pytest.approx(captures[9].timestamp, abs=1e-6)

    def test_pcapng_resume_state_roundtrip(self, captures, tmp_path):
        path = tmp_path / "t.pcapng"
        path.write_bytes(_pcapng_bytes(captures[:50]))
        with PcapngReader(path) as reader:
            iterator = iter(reader)
            head = [next(iterator) for _ in range(20)]
            state = reader.resume_state()
        assert state.interfaces  # the IDB travelled into the token
        with PcapngReader(path, resume=state) as reader:
            rest = list(reader)
        assert len(head) + len(rest) == 50
        # Timestamps survive the resume (if_tsresol came from the token,
        # not from re-reading the IDB).
        assert rest[0].timestamp == pytest.approx(captures[20].timestamp, abs=1e-6)


class TestTailerRotation:
    def test_rotation_mid_meeting_delivers_every_packet_once(
        self, captures, tmp_path
    ):
        """Files appear one at a time across polls; the union equals a
        one-shot directory-source run over the final directory."""
        third = len(captures) // 3
        slices = [
            captures[:third],
            captures[third : 2 * third],
            captures[2 * third :],
        ]
        tailer = CaptureDirectoryTailer(tmp_path)
        collected = []
        for index, piece in enumerate(slices):
            write_pcap(tmp_path / f"zoom-{index:02d}.pcap", piece)
            collected.extend(_drain(tailer))
        collected.extend(_drain(tailer))  # one more poll: nothing new
        assert len(collected) == len(captures)
        one_shot = list(CaptureDirectorySource(tmp_path))
        assert len(one_shot) == len(collected)
        assert sorted(p.timestamp for p in collected) == sorted(
            p.timestamp for p in one_shot
        )

    def test_growing_file_resumes_mid_file(self, captures, tmp_path):
        data = _pcap_bytes(captures[:200])
        grown = _pcap_bytes(captures[:200] + captures[200:400])
        path = tmp_path / "zoom-00.pcap"
        path.write_bytes(data)
        tailer = CaptureDirectoryTailer(tmp_path)
        first = _drain(tailer)
        path.write_bytes(grown)
        second = _drain(tailer)
        assert len(first) == 200
        assert len(second) == 200
        assert [p.timestamp for p in second] == [
            pytest.approx(p.timestamp, abs=1e-6) for p in captures[200:400]
        ]

    def test_truncated_tail_then_growth(self, captures, tmp_path):
        """A half-written record is skipped without advancing the offset,
        then delivered exactly once when the writer completes it."""
        tel = Telemetry()
        full = _pcap_bytes(captures[:50])
        path = tmp_path / "zoom-00.pcap"
        path.write_bytes(full[:-11])
        tailer = CaptureDirectoryTailer(tmp_path, telemetry=tel)
        first = _drain(tailer)
        assert len(first) == 49
        assert tel.counter("capture.truncated") == 1
        path.write_bytes(full)
        second = _drain(tailer)
        assert len(second) == 1
        assert second[0].timestamp == pytest.approx(captures[49].timestamp, abs=1e-6)
        assert _drain(tailer) == []

    def test_duplicate_rediscovery_is_idempotent(self, captures, tmp_path):
        write_pcap(tmp_path / "a.pcap", captures[:80])
        write_pcap(tmp_path / "b.pcap", captures[80:160])
        tailer = CaptureDirectoryTailer(tmp_path)
        assert len(_drain(tailer)) == 160
        for _ in range(3):  # every later poll re-discovers both files
            assert _drain(tailer) == []
        assert tailer.packets_emitted == 160

    def test_pcapng_files_tail_too(self, captures, tmp_path):
        full = _pcapng_bytes(captures[:120])
        partial_blocks = _pcapng_bytes(captures[:60])
        path = tmp_path / "zoom.pcapng"
        path.write_bytes(partial_blocks)
        tailer = CaptureDirectoryTailer(tmp_path)
        first = _drain(tailer)
        path.write_bytes(full)
        second = _drain(tailer)
        assert len(first) == 60
        assert len(second) == 60
        assert [p.timestamp for p in first + second] == [
            pytest.approx(c.timestamp, abs=1e-6) for c in captures[:120]
        ]

    def test_replaced_file_is_reread(self, captures, tmp_path):
        tel = Telemetry()
        path = tmp_path / "zoom-00.pcap"
        write_pcap(path, captures[:100])
        tailer = CaptureDirectoryTailer(tmp_path, telemetry=tel)
        assert len(_drain(tailer)) == 100
        write_pcap(path, captures[:30])  # shorter file under the same name
        assert len(_drain(tailer)) == 30
        assert tel.counter("ingest.tail.replaced") == 1

    def test_not_ready_header_retried(self, captures, tmp_path):
        tel = Telemetry()
        data = _pcap_bytes(captures[:10])
        path = tmp_path / "zoom-00.pcap"
        path.write_bytes(data[:12])  # global header itself incomplete
        tailer = CaptureDirectoryTailer(tmp_path, telemetry=tel)
        assert _drain(tailer) == []
        assert tel.counter("ingest.tail.not_ready") == 1
        path.write_bytes(data)
        assert len(_drain(tailer)) == 10

    def test_abandoned_poll_never_double_delivers(self, captures, tmp_path):
        """A consumer that stops mid-poll (shutdown) resumes at the first
        packet it never received."""
        write_pcap(tmp_path / "zoom-00.pcap", captures[:600])
        tailer = CaptureDirectoryTailer(tmp_path, batch_size=64)
        received = []
        poll = tailer.poll()
        for batch in poll:
            received.extend(batch)
            if len(received) >= 128:
                poll.close()
                break
        received.extend(_drain(tailer))
        assert len(received) == 600
        assert [p.timestamp for p in received] == [
            pytest.approx(c.timestamp, abs=1e-6) for c in captures[:600]
        ]


class TestResumeTokenSafety:
    def test_format_mismatch_rejected(self, captures, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, captures[:20])
        with PcapFileSource(path) as source:
            list(source)
            token = source.resume_state()
        path.write_bytes(_pcapng_bytes(captures[:20]))
        from repro.net.source import open_capture_source

        with pytest.raises(ValueError, match="resume token"):
            open_capture_source(path, resume=token)
