"""Exact-boundary tests for the telemetry anomaly rules.

Every rule here has a documented threshold; these tests pin which side of
each boundary fires, so a refactor that flips a ``>`` to a ``>=`` (or the
reverse) fails loudly instead of silently changing operator-facing alerts.
"""

from repro.telemetry.anomalies import (
    PREFILTER_MIN_FRAMES,
    PREFILTER_PASS_WARN_FRACTION,
    SHARD_IMBALANCE_SHARE,
    detect_anomalies,
)
from repro.telemetry.registry import Telemetry


def _snapshot(counters: dict[str, int]):
    telemetry = Telemetry()
    for name, value in counters.items():
        telemetry.count(name, value)
    return telemetry.snapshot()


def _names(counters: dict[str, int], **thresholds) -> set[str]:
    return {a.name for a in detect_anomalies(_snapshot(counters), **thresholds)}


class TestPrefilterBoundary:
    def test_below_volume_floor_never_fires(self):
        # One frame short of the floor with a 100% pass rate: volume too
        # small to be meaningful, rule must stay silent.
        counters = {"prefilter.passed": PREFILTER_MIN_FRAMES - 1}
        assert "prefilter-pass-through" not in _names(counters)

    def test_exactly_at_volume_floor_fires(self):
        # The floor itself qualifies (>=), and a 100% pass rate exceeds the
        # pass-rate bound.
        counters = {"prefilter.passed": PREFILTER_MIN_FRAMES}
        assert "prefilter-pass-through" in _names(counters)

    def test_pass_rate_exactly_at_bound_does_not_fire(self):
        # 999_000 / 1_000_000 == 0.999 exactly: the comparison is strict.
        assert PREFILTER_PASS_WARN_FRACTION == 0.999
        counters = {"prefilter.passed": 999_000, "prefilter.dropped": 1_000}
        assert "prefilter-pass-through" not in _names(counters)

    def test_pass_rate_just_above_bound_fires(self):
        counters = {"prefilter.passed": 999_001, "prefilter.dropped": 999}
        assert "prefilter-pass-through" in _names(counters)

    def test_no_prefilter_counters_no_fire(self):
        assert "prefilter-pass-through" not in _names({})


class TestShardImbalanceBoundary:
    def test_single_shard_never_fires(self):
        # One shard trivially holds 100% of the packets; the rule needs at
        # least two shards to be meaningful.
        counters = {"sharded.shard_packets.0": 1_000}
        assert "shard-imbalance" not in _names(counters)

    def test_two_shards_exactly_at_share_does_not_fire(self):
        # peak/total == 0.7 exactly: strict comparison.
        assert SHARD_IMBALANCE_SHARE == 0.7
        counters = {
            "sharded.shard_packets.0": 7,
            "sharded.shard_packets.1": 3,
        }
        assert "shard-imbalance" not in _names(counters)

    def test_two_shards_just_above_share_fires(self):
        counters = {
            "sharded.shard_packets.0": 71,
            "sharded.shard_packets.1": 29,
        }
        assert "shard-imbalance" in _names(counters)

    def test_share_threshold_override(self):
        counters = {
            "sharded.shard_packets.0": 6,
            "sharded.shard_packets.1": 4,
        }
        assert "shard-imbalance" in _names(counters, shard_imbalance_share=0.5)

    def test_empty_shards_no_division_error(self):
        counters = {
            "sharded.shard_packets.0": 0,
            "sharded.shard_packets.1": 0,
        }
        assert "shard-imbalance" not in _names(counters)


class TestUndecodedBoundary:
    def test_zero_media_snapshot_is_silent(self):
        # A capture with no media-class packets at all (demux.undecoded may
        # still be absent or zero) must neither fire nor divide by zero.
        assert "undecoded-media" not in _names({})
        assert "undecoded-media" not in _names({"demux.undecoded": 5})

    def test_exactly_at_fraction_does_not_fire(self):
        counters = {"demux.media_class_packets": 100, "demux.undecoded": 25}
        assert "undecoded-media" not in _names(counters)

    def test_just_above_fraction_fires(self):
        counters = {"demux.media_class_packets": 100, "demux.undecoded": 26}
        assert "undecoded-media" in _names(counters)


class TestQoeImpairmentRule:
    def test_degraded_only_does_not_alert(self):
        # DEGRADED entries are informational; only IMPAIRED/CRITICAL page.
        counters = {
            "qoe.transitions": 4,
            "qoe.transitions_to.degraded": 2,
            "qoe.transitions_to.good": 2,
        }
        assert "qoe-impairments" not in _names(counters)

    def test_impaired_entry_alerts(self):
        names = _names({"qoe.transitions_to.impaired": 1})
        assert "qoe-impairments" in names

    def test_counts_impaired_and_critical(self):
        snapshot = _snapshot(
            {
                "qoe.transitions_to.impaired": 2,
                "qoe.transitions_to.critical": 1,
            }
        )
        (finding,) = [
            a for a in detect_anomalies(snapshot) if a.name == "qoe-impairments"
        ]
        assert finding.value == 3
        assert finding.counter == "qoe.alerts"
        assert "2 IMPAIRED" in finding.message
        assert "1 CRITICAL" in finding.message


class TestDataplaneKernelDropsBoundary:
    def test_zero_drops_silent(self):
        # A pre-seeded zero counter (interface mode seeds it at startup)
        # must not fire.
        assert "dataplane-kernel-drops" not in _names({"dataplane.kernel_drops": 0})

    def test_single_drop_fires(self):
        # Kernel ring drops are unrecoverable (never hit disk), so the
        # threshold is exactly one frame.
        names = _names({"dataplane.kernel_drops": 1})
        assert "dataplane-kernel-drops" in names

    def test_message_carries_count(self):
        snapshot = _snapshot({"dataplane.kernel_drops": 42})
        (finding,) = [
            a for a in detect_anomalies(snapshot) if a.name == "dataplane-kernel-drops"
        ]
        assert finding.value == 42
        assert finding.counter == "dataplane.kernel_drops"
        assert "cannot be recovered" in finding.message
