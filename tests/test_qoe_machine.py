"""Unit tests for the QoE state machine: thresholds, hysteresis, consensus.

Everything here drives :class:`repro.qoe.QoeStateMachine` directly with
hand-built samples — no simulator, no analyzer — so each hysteresis rule is
pinned in isolation before the ground-truth suite exercises the whole
pipeline.
"""

import math

import pytest

from repro.core.config import QoeConfig
from repro.qoe import QoeSample, QoeState, QoeStateMachine


def _sample(
    index: int,
    *,
    loss: float = 0.0,
    jitter: float = 3.0,
    fps: float = 1.0,
    packets: int = 500,
) -> QoeSample:
    return QoeSample(
        window_index=index,
        window_end=float(index + 1),
        packets=packets,
        loss_fraction=loss,
        jitter_ms=jitter,
        fps_ratio=fps,
    )


def _feed(machine: QoeStateMachine, specs) -> list:
    """specs: iterable of kwargs dicts for _sample, auto-indexed."""
    transitions = []
    for index, spec in enumerate(specs):
        t = machine.observe(_sample(index, **spec))
        if t is not None:
            transitions.append(t)
    return transitions


class TestSeverity:
    def test_good_on_clean_sample(self):
        machine = QoeStateMachine()
        assert machine.enter_severity(_sample(0)) is QoeState.GOOD

    def test_each_metric_alone_reaches_each_state(self):
        cfg = QoeConfig()
        machine = QoeStateMachine(cfg)
        cases = [
            ({"loss": cfg.loss_degraded + 0.001}, QoeState.DEGRADED),
            ({"loss": cfg.loss_impaired + 0.001}, QoeState.IMPAIRED),
            ({"loss": cfg.loss_critical + 0.001}, QoeState.CRITICAL),
            ({"jitter": cfg.jitter_degraded_ms + 0.1}, QoeState.DEGRADED),
            ({"jitter": cfg.jitter_impaired_ms + 0.1}, QoeState.IMPAIRED),
            ({"jitter": cfg.jitter_critical_ms + 0.1}, QoeState.CRITICAL),
            ({"fps": cfg.fps_degraded - 0.01}, QoeState.DEGRADED),
            ({"fps": cfg.fps_impaired - 0.01}, QoeState.IMPAIRED),
            ({"fps": cfg.fps_critical - 0.01}, QoeState.CRITICAL),
        ]
        for kwargs, expected in cases:
            assert machine.enter_severity(_sample(0, **kwargs)) is expected, kwargs

    def test_exactly_at_enter_threshold_is_not_entered(self):
        cfg = QoeConfig()
        machine = QoeStateMachine(cfg)
        assert (
            machine.enter_severity(_sample(0, loss=cfg.loss_degraded))
            is QoeState.GOOD
        )
        assert (
            machine.enter_severity(_sample(0, jitter=cfg.jitter_degraded_ms))
            is QoeState.GOOD
        )
        assert (
            machine.enter_severity(_sample(0, fps=cfg.fps_degraded)) is QoeState.GOOD
        )

    def test_nan_metrics_are_good(self):
        machine = QoeStateMachine()
        nan = float("nan")
        sample = _sample(0, loss=nan, jitter=nan, fps=nan)
        assert machine.enter_severity(sample) is QoeState.GOOD
        assert machine.exit_severity(sample) is QoeState.GOOD

    def test_worst_metric_wins(self):
        cfg = QoeConfig()
        machine = QoeStateMachine(cfg)
        sample = _sample(
            0, loss=cfg.loss_degraded + 0.001, jitter=cfg.jitter_critical_ms + 1
        )
        assert machine.enter_severity(sample) is QoeState.CRITICAL


class TestEscalation:
    def test_needs_enter_windows_consecutive(self):
        cfg = QoeConfig(enter_windows=2)
        machine = QoeStateMachine(cfg)
        assert machine.observe(_sample(0, loss=0.05)) is None
        t = machine.observe(_sample(1, loss=0.05))
        assert t is not None
        assert t.previous is QoeState.GOOD
        assert t.state is QoeState.DEGRADED
        assert machine.state is QoeState.DEGRADED

    def test_interrupted_streak_does_not_escalate(self):
        machine = QoeStateMachine(QoeConfig(enter_windows=2))
        transitions = _feed(
            machine, [{"loss": 0.05}, {}, {"loss": 0.05}, {}, {"loss": 0.05}]
        )
        assert transitions == []
        assert machine.state is QoeState.GOOD

    def test_onset_boundary_window_does_not_lower_target(self):
        # The window straddling the impairment onset reads a milder
        # severity; with consensus entry it restarts the count instead of
        # dragging the target to DEGRADED and staircasing upward.
        machine = QoeStateMachine(QoeConfig(enter_windows=2))
        transitions = _feed(
            machine, [{"loss": 0.05}, {"loss": 0.30}, {"loss": 0.30}]
        )
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.GOOD, QoeState.CRITICAL)
        ]

    def test_outlier_cannot_drag_state_to_its_peak(self):
        # One CRITICAL outlier inside a DEGRADED streak: consensus forms on
        # DEGRADED, never on CRITICAL.
        machine = QoeStateMachine(QoeConfig(enter_windows=2))
        transitions = _feed(
            machine, [{"loss": 0.30}, {"loss": 0.05}, {"loss": 0.05}]
        )
        assert [t.state for t in transitions] == [QoeState.DEGRADED]

    def test_fallback_escalation_on_oscillating_severity(self):
        # Severities alternating IMPAIRED/CRITICAL never agree; after
        # 2*enter_windows the machine escalates to the streak minimum
        # rather than stalling in GOOD forever.
        machine = QoeStateMachine(QoeConfig(enter_windows=2))
        transitions = _feed(
            machine,
            [{"loss": 0.30}, {"loss": 0.12}, {"loss": 0.30}, {"loss": 0.12}],
        )
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.GOOD, QoeState.IMPAIRED)
        ]

    def test_escalation_from_degraded_to_critical(self):
        machine = QoeStateMachine(
            QoeConfig(enter_windows=2, min_dwell_windows=2, exit_windows=2)
        )
        transitions = _feed(
            machine,
            [{"loss": 0.05}, {"loss": 0.05}, {"loss": 0.30}, {"loss": 0.30}],
        )
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.GOOD, QoeState.DEGRADED),
            (QoeState.DEGRADED, QoeState.CRITICAL),
        ]

    def test_reason_names_the_offending_metric(self):
        machine = QoeStateMachine(QoeConfig(enter_windows=1, min_dwell_windows=1))
        t = machine.observe(_sample(0, loss=0.05))
        assert t is not None and "loss=0.050" in t.reason


class TestDeescalation:
    def test_consensus_exit_goes_straight_to_agreed_state(self):
        cfg = QoeConfig(enter_windows=2, exit_windows=3, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        _feed(machine, [{"loss": 0.30}] * 2)
        assert machine.state is QoeState.CRITICAL
        transitions = _feed(machine, [{}] * 3)
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.CRITICAL, QoeState.GOOD)
        ]
        assert transitions[0].reason == "recovered"

    def test_residual_window_breaks_consensus_not_target(self):
        # The first post-impairment window still shows mild loss (as real
        # recoveries do); the machine must wait for a fresh GOOD consensus
        # rather than staircase through DEGRADED.
        cfg = QoeConfig(enter_windows=2, exit_windows=3, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        _feed(machine, [{"loss": 0.30}] * 2)
        residual_then_clean = [{"loss": 0.018}] + [{}] * 3
        transitions = _feed(machine, residual_then_clean)
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.CRITICAL, QoeState.GOOD)
        ]

    def test_fallback_exit_when_no_consensus(self):
        # Metrics bouncing between GOOD and DEGRADED (below CRITICAL) never
        # agree; after 2*exit_windows the machine takes the streak maximum
        # instead of staying stuck.
        cfg = QoeConfig(enter_windows=2, exit_windows=3, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        _feed(machine, [{"loss": 0.30}] * 2)
        bouncing = [{"loss": 0.0}, {"loss": 0.018}] * 3
        transitions = _feed(machine, bouncing)
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.CRITICAL, QoeState.DEGRADED)
        ]
        assert transitions[0].reason == "partial recovery"

    def test_exit_thresholds_are_stricter_than_enter(self):
        # Loss below the enter threshold but above the exit threshold must
        # hold the current state (the hysteresis band).
        cfg = QoeConfig(enter_windows=2, exit_windows=3, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        _feed(machine, [{"loss": 0.05}] * 2)
        assert machine.state is QoeState.DEGRADED
        inside_band = cfg.loss_degraded * (1 + cfg.exit_fraction) / 2
        transitions = _feed(machine, [{"loss": inside_band}] * 8)
        assert transitions == []
        assert machine.state is QoeState.DEGRADED

    def test_fps_exit_band_does_not_trap_healthy_ratio(self):
        # A recovered stream's fps ratio hovers near 1.0 with a few percent
        # of noise; the additive exit margin must read that as GOOD.
        cfg = QoeConfig(enter_windows=2, exit_windows=3, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        _feed(machine, [{"fps": 0.5}] * 2)
        assert machine.state is QoeState.DEGRADED
        transitions = _feed(machine, [{"fps": 0.96}, {"fps": 0.93}, {"fps": 0.97}])
        assert [(t.previous, t.state) for t in transitions] == [
            (QoeState.DEGRADED, QoeState.GOOD)
        ]


class TestDwell:
    def test_dwell_blocks_early_exit(self):
        cfg = QoeConfig(enter_windows=1, exit_windows=1, min_dwell_windows=4)
        machine = QoeStateMachine(cfg)
        t = machine.observe(_sample(0, loss=0.05))
        assert t is not None
        # Three clean windows arrive inside the dwell; exit only fires on
        # the fourth post-transition window.
        assert machine.observe(_sample(1)) is None
        assert machine.observe(_sample(2)) is None
        assert machine.observe(_sample(3)) is None
        t = machine.observe(_sample(4))
        assert t is not None and t.state is QoeState.GOOD

    def test_transitions_never_closer_than_dwell(self):
        cfg = QoeConfig(enter_windows=1, exit_windows=1, min_dwell_windows=3)
        machine = QoeStateMachine(cfg)
        specs = [{"loss": 0.30 if i % 2 == 0 else 0.0} for i in range(40)]
        transitions = _feed(machine, specs)
        observations = [t.observation for t in transitions]
        gaps = [b - a for a, b in zip(observations, observations[1:])]
        assert all(gap >= cfg.min_dwell_windows for gap in gaps)


class TestBatchEquivalence:
    def test_observe_batch_matches_scalar_loop(self):
        specs = (
            [{"loss": 0.05}] * 3
            + [{}] * 5
            + [{"jitter": 90.0}] * 4
            + [{"loss": 0.018}]
            + [{}] * 6
            + [{"fps": 0.3}] * 3
            + [{}] * 8
        )
        samples = [_sample(i, **spec) for i, spec in enumerate(specs)]
        scalar_machine = QoeStateMachine()
        scalar = [
            t for s in samples if (t := scalar_machine.observe(s)) is not None
        ]
        batch = QoeStateMachine().observe_batch(samples)
        assert batch == scalar


class TestConfigValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            QoeConfig(loss_degraded=0.5, loss_impaired=0.1)
        with pytest.raises(ValueError):
            QoeConfig(jitter_impaired_ms=100.0, jitter_critical_ms=50.0)
        with pytest.raises(ValueError):
            QoeConfig(fps_degraded=0.1, fps_impaired=0.4)

    def test_streaks_and_dwell_must_be_positive(self):
        with pytest.raises(ValueError):
            QoeConfig(enter_windows=0)
        with pytest.raises(ValueError):
            QoeConfig(exit_windows=0)
        with pytest.raises(ValueError):
            QoeConfig(min_dwell_windows=0)
        with pytest.raises(ValueError):
            QoeConfig(min_substream_packets=0)

    def test_exit_fraction_bounds(self):
        with pytest.raises(ValueError):
            QoeConfig(exit_fraction=0.0)
        with pytest.raises(ValueError):
            QoeConfig(exit_fraction=1.5)

    def test_replace_revalidates(self):
        cfg = QoeConfig()
        with pytest.raises(ValueError):
            cfg.replace(loss_degraded=0.9)
        assert cfg.replace(loss_degraded=0.03).loss_degraded == 0.03

    def test_default_config_is_sane(self):
        cfg = QoeConfig()
        assert cfg.enabled
        assert not math.isnan(cfg.window_seconds)
