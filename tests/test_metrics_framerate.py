"""Tests for both frame-rate estimation methods (§5.2)."""

import pytest

from repro.core.metrics.framerate import (
    FrameRateMethod1,
    FrameRateMethod2,
    infer_sampling_rate,
)
from repro.core.metrics.frames import CompletedFrame


def frame(ts, completed, *, first=None, n=2, size=1000):
    return CompletedFrame(
        rtp_timestamp=ts,
        frame_sequence=0,
        expected_packets=n,
        first_time=first if first is not None else completed - 0.005,
        completed_time=completed,
        payload_bytes=size,
    )


class TestMethod1:
    def test_steady_30fps(self):
        meter = FrameRateMethod1()
        sample = None
        for i in range(60):
            sample = meter.observe(frame(i * 3000, 1.0 + i / 30.0))
        assert sample.fps == pytest.approx(30.0, abs=1.5)

    def test_rate_at_decays_when_frames_stop(self):
        meter = FrameRateMethod1()
        for i in range(30):
            meter.observe(frame(i * 3000, 1.0 + i / 30.0))
        assert meter.rate_at(2.0) > 20
        assert meter.rate_at(10.0) == 0.0

    def test_rate_halves_with_rate_change(self):
        meter = FrameRateMethod1()
        t = 0.0
        for i in range(30):
            t += 1 / 30.0
            meter.observe(frame(i, t))
        for i in range(30, 60):
            t += 1 / 15.0
            meter.observe(frame(i, t))
        assert meter.samples[-1].fps == pytest.approx(15.0, abs=2.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FrameRateMethod1(window=0)


class TestMethod2:
    def test_encoder_rate_from_increments(self):
        meter = FrameRateMethod2(90_000)
        meter.observe(frame(0, 1.0))
        sample = meter.observe(frame(3000, 1.033))
        assert sample.fps == pytest.approx(30.0)

    def test_first_frame_yields_no_sample(self):
        meter = FrameRateMethod2(90_000)
        assert meter.observe(frame(0, 1.0)) is None

    def test_duplicate_timestamp_skipped(self):
        meter = FrameRateMethod2(90_000)
        meter.observe(frame(0, 1.0))
        assert meter.observe(frame(0, 1.01)) is None

    def test_wraparound_increment(self):
        meter = FrameRateMethod2(90_000)
        meter.observe(frame((1 << 32) - 1500, 1.0))
        sample = meter.observe(frame(1500, 1.033))
        assert sample.fps == pytest.approx(30.0)

    def test_out_of_order_timestamp_skipped(self):
        meter = FrameRateMethod2(90_000)
        meter.observe(frame(90_000, 1.0))
        assert meter.observe(frame(45_000, 1.03)) is None

    def test_packetization_time(self):
        meter = FrameRateMethod2(90_000)
        meter.observe(frame(0, 1.0))
        meter.observe(frame(9000, 1.1))
        assert meter.packetization_time() == pytest.approx(0.1)
        assert FrameRateMethod2().packetization_time() is None

    def test_divergence_under_congestion(self):
        """Method 1 (delivered) dips while Method 2 (encoder) holds when the
        network delays frames without the encoder adapting — the §5.2
        network-problem indicator."""
        delivered = FrameRateMethod1()
        encoder = FrameRateMethod2(90_000)
        for i in range(90):
            # Encoder runs at a constant 30 fps (3000-tick increments), but
            # during frames 30-59 a queue builds: each frame is delivered
            # 40 ms later than the previous one's schedule.
            queueing = 0.04 * max(0, min(i, 59) - 29)
            t = (i + 1) / 30.0 + queueing
            completed = frame(i * 3000, t)
            delivered.observe(completed)
            encoder.observe(completed)
        window = (1.5, 2.8)  # during the queue build-up
        congested_delivered = [
            s.fps for s in delivered.samples if window[0] <= s.time <= window[1]
        ]
        congested_encoder = [
            s.fps for s in encoder.samples if window[0] <= s.time <= window[1]
        ]
        assert congested_delivered and min(congested_delivered) < 18
        assert congested_encoder and min(congested_encoder) > 25

    def test_sampling_rate_validation(self):
        with pytest.raises(ValueError):
            FrameRateMethod2(0)


class TestInferSamplingRate:
    def test_finds_90khz(self):
        """The §5.2 parameter sweep on 30 fps video timestamps."""
        increments = [3000] * 20
        intervals = [1 / 30.0] * 20
        assert infer_sampling_rate(increments, intervals) == 90_000

    def test_finds_48khz_audio(self):
        increments = [960] * 20
        intervals = [0.020] * 20
        assert infer_sampling_rate(increments, intervals) == 48_000

    def test_empty_or_mismatched(self):
        assert infer_sampling_rate([], []) is None
        assert infer_sampling_rate([1], []) is None
