"""The old construction surfaces must keep working — loudly.

Every pre-AnalyzerConfig keyword on the three drivers, and every
list-returning reader, is a supported shim for one release: it still
works, carries the same semantics, and emits a DeprecationWarning naming
the replacement.  These tests pin both halves of that contract.
"""

import warnings

import pytest

from repro.core import AnalyzerConfig, RollingZoomAnalyzer, ShardedAnalyzer, ZoomAnalyzer
from repro.net.packet import CapturedPacket
from repro.net.pcap import read_pcap, write_pcap
from repro.net.pcapng import read_capture as pcapng_read_capture
from repro.net.pcapng import read_pcapng, write_pcapng
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


@pytest.fixture(scope="module")
def captures():
    config = MeetingConfig(
        meeting_id="shim-test",
        participants=(
            ParticipantConfig(name="a"),
            ParticipantConfig(name="b", join_time=0.5),
        ),
        duration=4.0,
        seed=13,
    )
    return MeetingSimulator(config).run().captures


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory, captures):
    path = tmp_path_factory.mktemp("shims") / "meeting.pcap"
    write_pcap(path, captures)
    return path


@pytest.fixture(scope="module")
def pcapng_path(tmp_path_factory, captures):
    path = tmp_path_factory.mktemp("shims") / "meeting.pcapng"
    write_pcapng(path, captures)
    return path


class TestAnalyzerKwargShims:
    def test_zoom_analyzer_legacy_kwargs_warn_and_apply(self):
        with pytest.deprecated_call(match="zoom_subnets"):
            analyzer = ZoomAnalyzer(
                zoom_subnets=("203.0.113.0/24",), keep_records=True
            )
        assert analyzer.config.zoom_subnets == ("203.0.113.0/24",)
        assert analyzer.config.keep_records is True

    def test_rolling_legacy_kwargs_warn_and_apply(self):
        with pytest.deprecated_call(match="idle_timeout"):
            rolling = RollingZoomAnalyzer(idle_timeout=5.0, sweep_interval=2.0)
        assert rolling.idle_timeout == 5.0
        assert rolling.sweep_interval == 2.0
        assert rolling.config.rolling_idle_timeout == 5.0

    def test_sharded_legacy_kwargs_warn_and_apply(self):
        with pytest.deprecated_call(match="shards"):
            sharded = ShardedAnalyzer(shards=2, backend="serial")
        assert sharded.config.shards == 2
        assert sharded.config.shard_backend == "serial"

    def test_config_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ZoomAnalyzer(AnalyzerConfig(keep_records=True))
            RollingZoomAnalyzer(AnalyzerConfig(rolling=True))
            ShardedAnalyzer(AnalyzerConfig(shards=2))

    def test_mixing_config_and_kwargs_rejected(self):
        with pytest.raises(TypeError):
            ZoomAnalyzer(AnalyzerConfig(), keep_records=True)
        with pytest.raises(TypeError):
            ShardedAnalyzer(AnalyzerConfig(shards=2), backend="serial")
        with pytest.raises(TypeError):
            RollingZoomAnalyzer(AnalyzerConfig(), idle_timeout=3.0)

    def test_legacy_analysis_still_runs(self, captures):
        with pytest.deprecated_call():
            analyzer = ZoomAnalyzer(keep_records=True)
        result = analyzer.analyze(captures)
        assert result.packets_total == len(captures)

    def test_sharded_default_still_four_shards(self):
        """The historical no-args default (4 shards) must survive the
        config migration."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert ShardedAnalyzer().config.shards == 4
        assert ShardedAnalyzer(AnalyzerConfig()).config.shards == 1


class TestReaderShims:
    def test_read_pcap_warns_and_returns_list(self, pcap_path, captures):
        with pytest.deprecated_call(match="PcapFileSource"):
            packets = read_pcap(pcap_path)
        assert len(packets) == len(captures)
        assert isinstance(packets[0], CapturedPacket)

    def test_read_pcapng_warns_and_returns_list(self, pcapng_path, captures):
        with pytest.deprecated_call(match="PcapNgFileSource"):
            packets = read_pcapng(pcapng_path)
        assert len(packets) == len(captures)

    def test_pcapng_read_capture_reexport(self, pcap_path, captures):
        """Historically exported from repro.net.pcapng; must still dispatch
        on magic bytes from its new home."""
        with pytest.deprecated_call(match="open_capture_source"):
            packets = pcapng_read_capture(pcap_path)
        assert len(packets) == len(captures)
