"""Batch ingestion tests: FrameBatch readers, prefilter safety, equivalence.

The batch fast path's correctness contract is *bit-identical* results: the
same frame sequence out of the readers, and the same analysis out of
``feed_batch``, as the scalar path produces packet by packet.  These tests
pin that contract directly (golden scenarios are covered separately in
``test_golden_e2e.py`` / ``test_source_equivalence.py``), including the
awkward inputs — truncated records, malformed frames, pcapng interface
blocks, multi-section files — where fast paths usually diverge first.
"""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalyzerConfig, ZoomAnalyzer
from repro.net.batch import (
    BatchPrefilter,
    FrameBatchBuilder,
    decode_columns,
    prepared_frame_batch,
)
from repro.net.packet import CapturedPacket, build_udp_frame, parse_frame
from repro.net.pcap import PcapReader, PcapWriter
from repro.net.pcapng import PcapngReader, PcapngWriter
from repro.rtp.stun import StunMessage
from repro.telemetry.registry import Telemetry, shard_invariant_counters

ZOOM_NET = "170.114.0.0/16"
TXN = bytes(range(12))


def _batch_frames(reader):
    """All (frame bytes, timestamp) pairs off a reader's batch interface."""
    out = []
    for batch in reader.read_batches():
        assert batch.total_caplen == sum(batch.caplens)
        for i in range(len(batch)):
            out.append((batch.frame(i), batch.timestamps[i]))
    return out


def _scalar_frames(reader):
    return [(p.data, p.timestamp) for p in reader]


def _mixed_frames(n=40):
    """Border-style traffic: Zoom media, STUN, P2P, and background noise."""
    frames = []
    for i in range(n):
        kind = i % 5
        ts = 100.0 + 0.01 * i
        if kind == 0:  # Zoom SFU media
            data = build_udp_frame(
                "10.8.0.5", 20000 + i, "170.114.1.1", 8801, b"\x05\x10" + bytes(40)
            )
        elif kind == 1:  # STUN binding request to a Zoom server
            data = build_udp_frame(
                "10.8.0.9", 54321, "170.114.1.2", 3478,
                StunMessage.binding_request(TXN).serialize(),
            )
        elif kind == 2:  # P2P media from the STUN-learned endpoint
            data = build_udp_frame(
                "10.8.0.9", 54321, "192.0.2.44", 9000, bytes(60)
            )
        elif kind == 3:  # background DNS-ish noise: provably not Zoom
            data = build_udp_frame("10.0.0.1", 33000 + i, "8.8.8.8", 53, bytes(30))
        else:  # malformed runt frame (no full Ethernet header)
            data = b"\x01\x02\x03"
        frames.append(CapturedPacket(ts, data))
    return frames


# --------------------------------------------------------------- pcap reader


class TestPcapReadBatches:
    @pytest.mark.parametrize("nanosecond", [True, False])
    def test_matches_scalar(self, nanosecond):
        packets = _mixed_frames()
        buffer = io.BytesIO()
        PcapWriter(buffer, nanosecond=nanosecond).write_all(packets)
        scalar = _scalar_frames(PcapReader(io.BytesIO(buffer.getvalue())))
        batched = _batch_frames(PcapReader(io.BytesIO(buffer.getvalue())))
        assert batched == scalar

    def test_max_frames_splits_batches(self):
        packets = _mixed_frames(10)
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(packets)
        buffer.seek(0)
        sizes = [len(b) for b in PcapReader(buffer).read_batches(max_frames=4)]
        assert sizes == [4, 4, 2]
        assert sum(sizes) == 10

    def test_telemetry_counters_match_scalar(self):
        packets = _mixed_frames(12)
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(packets)
        tel_scalar, tel_batch = Telemetry(), Telemetry()
        list(PcapReader(io.BytesIO(buffer.getvalue()), telemetry=tel_scalar))
        list(PcapReader(io.BytesIO(buffer.getvalue()), telemetry=tel_batch).read_batches())
        assert tel_batch.counters == tel_scalar.counters

    @pytest.mark.parametrize("cut", [3, 9, 20])
    def test_truncated_strict_and_tolerant_match_scalar(self, cut):
        packets = _mixed_frames(6)
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(packets)
        data = buffer.getvalue()[:-cut]

        def collect(frame_iter):
            frames, error = [], None
            try:
                for item in frame_iter:
                    frames.append(item)
            except ValueError as exc:
                error = str(exc)
            return frames, error

        scalar, scalar_err = collect(
            (p.data, p.timestamp) for p in PcapReader(io.BytesIO(data))
        )
        batched, batch_err = collect(
            (batch.frame(i), batch.timestamps[i])
            for batch in PcapReader(io.BytesIO(data)).read_batches()
            for i in range(len(batch))
        )
        assert batched == scalar
        assert batch_err == scalar_err and batch_err is not None

        tolerant_tel = Telemetry()
        tolerant = PcapReader(io.BytesIO(data), tolerant=True, telemetry=tolerant_tel)
        assert _batch_frames(tolerant) == scalar
        assert tolerant_tel.counter("capture.truncated") == 1


# ------------------------------------------------------------- pcapng reader


class TestPcapngReadBatches:
    def test_matches_scalar_with_interface_and_unknown_blocks(self):
        packets = _mixed_frames(8)
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        for packet in packets[:4]:
            writer.write(packet)
        # An unknown block a reader must skip without losing sync.
        body = b"\xde\xad\xbe\xef"
        total = 12 + len(body)
        buffer.write(struct.pack("<II", 0x0BAD, total) + body + struct.pack("<I", total))
        # A Simple Packet Block: no timestamp, reported at t=0.
        frame = b"\xaa" * 24
        body = struct.pack("<I", len(frame)) + frame
        total = 12 + len(body)
        buffer.write(struct.pack("<II", 3, total) + body + struct.pack("<I", total))
        for packet in packets[4:]:
            writer.write(packet)
        data = buffer.getvalue()

        scalar = _scalar_frames(PcapngReader(io.BytesIO(data)))
        batched = _batch_frames(PcapngReader(io.BytesIO(data)))
        assert batched == scalar
        assert (frame, 0.0) in batched

    def test_multi_section_file(self):
        packets = _mixed_frames(6)
        first, second = io.BytesIO(), io.BytesIO()
        PcapngWriter(first).write_all(packets[:3])
        PcapngWriter(second).write_all(packets[3:])
        data = first.getvalue() + second.getvalue()
        scalar = _scalar_frames(PcapngReader(io.BytesIO(data)))
        batched = _batch_frames(PcapngReader(io.BytesIO(data)))
        assert batched == scalar
        assert len(batched) == 6

    def test_truncated_flushes_partial_batch(self):
        packets = _mixed_frames(5)
        buffer = io.BytesIO()
        PcapngWriter(buffer).write_all(packets)
        data = buffer.getvalue()[:-7]
        scalar = []
        try:
            scalar = _scalar_frames(PcapngReader(io.BytesIO(data)))
        except ValueError:
            pass
        frames, error = [], None
        try:
            frames.extend(_batch_frames(PcapngReader(io.BytesIO(data))))
        except ValueError as exc:
            error = exc
        # The strict batch reader flushed every complete block before
        # raising — nothing buffered is lost to the exception.
        assert error is not None

        tel = Telemetry()
        tolerant = PcapngReader(io.BytesIO(data), tolerant=True, telemetry=tel)
        assert _batch_frames(tolerant) == scalar or len(scalar) == 0
        assert tel.counter("capture.truncated") == 1


# ------------------------------------------------------- property: identical


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.binary(min_size=0, max_size=120),
        ),
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_lazy_materialization_is_byte_identical(items):
    """read_batches → materialize reproduces the scalar ParsedPacket stream,
    field for field, including truncated/malformed frames."""
    packets = [CapturedPacket(t, d) for t, d in items]
    for writer_cls, reader_cls in (
        (PcapWriter, PcapReader),
        (PcapngWriter, PcapngReader),
    ):
        buffer = io.BytesIO()
        writer_cls(buffer).write_all(packets)
        data = buffer.getvalue()
        scalar = [parse_frame(p.data, p.timestamp) for p in reader_cls(io.BytesIO(data))]
        batched = []
        for batch in reader_cls(io.BytesIO(data)).read_batches():
            batched.extend(batch.materialize(i) for i in range(len(batch)))
        assert [p.raw for p in batched] == [p.raw for p in scalar]
        assert [p.timestamp for p in batched] == [p.timestamp for p in scalar]
        assert batched == scalar


# ----------------------------------------------------------- prefilter rules


def _single_frame_verdict(prefilter, data, hint=False):
    builder = FrameBatchBuilder()
    builder.append(data, 1.0, hint=hint)
    batch = builder.build()
    return prefilter.apply(batch, decode_columns(batch)), batch


class TestBatchPrefilter:
    def test_zoom_range_frame_passes(self):
        prefilter = BatchPrefilter([ZOOM_NET])
        verdict, _ = _single_frame_verdict(
            prefilter, build_udp_frame("10.0.0.1", 5000, "170.114.9.9", 8801, b"x")
        )
        assert verdict.survivors == [0] and verdict.dropped == 0

    def test_background_frame_drops_and_scalar_agrees(self):
        prefilter = BatchPrefilter([ZOOM_NET])
        data = build_udp_frame("10.0.0.1", 5000, "8.8.8.8", 53, b"x" * 20)
        verdict, _ = _single_frame_verdict(prefilter, data)
        assert verdict.dropped == 1 and verdict.survivors == []
        # Drop-safety: the scalar pipeline classifies the same frame
        # NOT_ZOOM and leaves no stream/meeting state behind.
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        analyzer.feed(CapturedPacket(1.0, data))
        snapshot = analyzer.result.telemetry_snapshot()
        assert snapshot.counter("classify.class.not_zoom") == 1
        assert not analyzer.result.media_streams()

    def test_runt_frame_counts_parse_failure(self):
        prefilter = BatchPrefilter([ZOOM_NET])
        verdict, _ = _single_frame_verdict(prefilter, b"\x01\x02\x03")
        assert verdict.dropped == 1
        assert verdict.parse_failures == 1

    def test_ipv6_always_passes(self):
        prefilter = BatchPrefilter([ZOOM_NET])
        frame = bytes(12) + b"\x86\xdd" + bytes(60)
        verdict, _ = _single_frame_verdict(prefilter, frame)
        assert verdict.survivors == [0]

    def test_stun_learn_within_batch_preserves_later_p2p(self):
        """A P2P frame later in the *same batch* as its STUN preamble must
        survive — the prefilter learns during the apply loop, in order."""
        prefilter = BatchPrefilter([ZOOM_NET])
        stun = build_udp_frame(
            "10.8.0.9", 54321, "170.114.1.2", 3478,
            StunMessage.binding_request(TXN).serialize(),
        )
        p2p = build_udp_frame("10.8.0.9", 54321, "192.0.2.44", 9000, bytes(60))
        builder = FrameBatchBuilder()
        builder.append(stun, 1.0)
        builder.append(p2p, 1.1)
        batch = builder.build()
        verdict = prefilter.apply(batch, decode_columns(batch))
        assert verdict.survivors == [0, 1]

    def test_sync_stun_folds_detector_learns_between_batches(self):
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        detector = analyzer.result.detector
        prefilter = BatchPrefilter.from_matcher(detector.matcher)
        p2p = build_udp_frame("10.8.0.9", 54321, "192.0.2.44", 9000, bytes(60))
        verdict, _ = _single_frame_verdict(prefilter, p2p)
        assert verdict.dropped == 1  # nothing learned yet
        # Scalar-path STUN learn (e.g. a shard hint), then sync.
        detector.observe_stun(
            parse_frame(
                build_udp_frame(
                    "10.8.0.9", 54321, "170.114.1.2", 3478,
                    StunMessage.binding_request(TXN).serialize(),
                ),
                1.0,
            )
        )
        prefilter.sync_stun(detector.stun)
        verdict, _ = _single_frame_verdict(prefilter, p2p)
        assert verdict.survivors == [0]

    def test_hint_frames_always_routed_to_hints(self):
        prefilter = BatchPrefilter([ZOOM_NET])
        builder = FrameBatchBuilder()
        builder.append(
            build_udp_frame("10.0.0.1", 5000, "8.8.8.8", 53, b"x"), 1.0, hint=True
        )
        builder.append(
            build_udp_frame("10.0.0.1", 5001, "170.114.9.9", 8801, b"x"), 1.1
        )
        builder.append(
            build_udp_frame(
                "10.8.0.9", 54321, "170.114.1.2", 3478,
                StunMessage.binding_request(TXN).serialize(),
            ),
            1.2,
            hint=True,
        )
        batch = builder.build()
        verdict = prefilter.apply(batch, decode_columns(batch))
        assert verdict.hint_indexes == [0, 2]
        assert verdict.survivors == [1]
        assert verdict.dropped == 0


# ------------------------------------------------------ pipeline equivalence


class TestFeedBatchEquivalence:
    def _summaries(self, packets):
        scalar = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        for packet in packets:
            scalar.feed(packet)
        batched = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(packets)
        buffer.seek(0)
        for batch in PcapReader(buffer).read_batches(max_frames=16):
            batched.feed_batch(batch)
        return scalar.result, batched.result

    def test_mixed_traffic_bit_identical(self):
        scalar, batched = self._summaries(_mixed_frames(100))
        assert batched.packets_total == scalar.packets_total
        assert batched.bytes_total == scalar.bytes_total
        assert batched.packets_zoom == scalar.packets_zoom
        assert shard_invariant_counters(
            batched.telemetry_snapshot()
        ) == shard_invariant_counters(scalar.telemetry_snapshot())
        assert [s.key for s in batched.media_streams()] == [
            s.key for s in scalar.media_streams()
        ]
        snapshot = batched.telemetry_snapshot()
        assert snapshot.counter("prefilter.dropped") > 0
        assert snapshot.counter("prefilter.passed") > 0

    def test_prepared_batches_preserve_objects(self):
        packets = [
            parse_frame(p.data, p.timestamp) for p in _mixed_frames(10)
        ]
        batch = prepared_frame_batch(packets)
        assert list(batch) == packets
        assert batch.materialize(3) is packets[3]
        assert len(batch) == 10

    @given(
        st.lists(
            st.binary(min_size=0, max_size=80),
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_garbage_is_equivalent(self, blobs):
        """Random byte blobs through feed vs feed_batch: identical semantic
        counters (prefilter drops must account exactly like scalar stops)."""
        packets = [CapturedPacket(float(i), blob) for i, blob in enumerate(blobs)]
        scalar, batched = self._summaries(packets)
        assert batched.packets_total == scalar.packets_total
        assert batched.bytes_total == scalar.bytes_total
        assert shard_invariant_counters(
            batched.telemetry_snapshot()
        ) == shard_invariant_counters(scalar.telemetry_snapshot())


# ------------------------------------------------------------ anomaly rule


class TestPrefilterAnomaly:
    def _snapshot(self, passed, dropped):
        tel = Telemetry()
        tel.count("prefilter.passed", passed)
        tel.count("prefilter.dropped", dropped)
        return tel.snapshot()

    def test_full_pass_through_flagged(self):
        from repro.telemetry.anomalies import detect_anomalies

        names = [a.name for a in detect_anomalies(self._snapshot(20_000, 0))]
        assert "prefilter-pass-through" in names

    def test_healthy_drop_rate_not_flagged(self):
        from repro.telemetry.anomalies import detect_anomalies

        names = [a.name for a in detect_anomalies(self._snapshot(15_000, 5_000))]
        assert "prefilter-pass-through" not in names

    def test_small_volume_not_flagged(self):
        from repro.telemetry.anomalies import detect_anomalies

        names = [a.name for a in detect_anomalies(self._snapshot(500, 0))]
        assert "prefilter-pass-through" not in names
