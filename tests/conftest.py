"""Shared fixtures: canned simulations reused across test modules.

The heavier simulations are session-scoped — they are deterministic (seeded)
and read-only for the tests that consume them.
"""

from __future__ import annotations

import pytest

from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)
from repro.simulation.meeting import SimulationResult
from repro.zoom.constants import ZoomMediaType


@pytest.fixture(scope="session")
def sfu_meeting_result() -> SimulationResult:
    """A 3-party SFU meeting: two on-campus, one off-campus with screen
    share, one congestion episode on the first sender's uplink."""
    config = MeetingConfig(
        meeting_id="fixture-sfu",
        participants=(
            ParticipantConfig(
                name="alice",
                on_campus=True,
                congestion=(CongestionEvent(start=12.0, end=17.0, extra_loss=0.03),),
            ),
            ParticipantConfig(name="bob", on_campus=True, join_time=1.0),
            ParticipantConfig(
                name="carol",
                on_campus=False,
                join_time=2.0,
                media=(
                    ZoomMediaType.AUDIO,
                    ZoomMediaType.VIDEO,
                    ZoomMediaType.SCREEN_SHARE,
                ),
            ),
        ),
        duration=25.0,
        allow_p2p=False,
        seed=1234,
    )
    return MeetingSimulator(config).run()


@pytest.fixture(scope="session")
def p2p_meeting_result() -> SimulationResult:
    """A two-party meeting that switches to P2P (one peer off campus)."""
    config = MeetingConfig(
        meeting_id="fixture-p2p",
        participants=(
            ParticipantConfig(name="pat", on_campus=True),
            ParticipantConfig(name="quinn", on_campus=False, join_time=0.5),
        ),
        duration=22.0,
        allow_p2p=True,
        p2p_switch_delay=5.0,
        seed=77,
    )
    return MeetingSimulator(config).run()


@pytest.fixture(scope="session")
def analyzed_sfu(sfu_meeting_result):
    """The SFU fixture run through the full analyzer."""
    from repro.core import ZoomAnalyzer

    return ZoomAnalyzer().analyze(sfu_meeting_result.captures)


@pytest.fixture(scope="session")
def analyzed_p2p(p2p_meeting_result):
    """The P2P fixture run through the full analyzer."""
    from repro.core import ZoomAnalyzer

    return ZoomAnalyzer().analyze(p2p_meeting_result.captures)
