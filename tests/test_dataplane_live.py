"""Live-ingest tests: simulated socket, LiveInterfaceSource, service mode.

The headline test is the golden equivalence: ``analyze-live --interface
sim:<trace>`` must produce the same window records as the directory-tailer
path over the same capture — the live dataplane changes *where* frames are
dropped, never what the analyzer concludes about the frames it keeps.
"""

import json

from repro.core.config import AnalyzerConfig, ServiceConfig
from repro.dataplane import (
    DataplaneFilter,
    LiveInterfaceSource,
    SimulatedPacketSocket,
    open_packet_socket,
)
from repro.dataplane.compiler import CaptureRules, compile_cbpf
from repro.net.batch import BatchPrefilter
from repro.net.packet import CapturedPacket, build_udp_frame
from repro.net.pcap import PcapWriter
from repro.rtp.stun import StunMessage
from repro.service.runner import ZoomMonitorService
from repro.telemetry.registry import Telemetry

ZOOM_NET = "170.114.0.0/16"
ZOOM = "170.114.1.1"
ZOOM_STUN = "170.114.200.9"
CAMPUS = "10.8.1.20"
PEER = "198.18.2.30"
BACKGROUND = "93.184.216.34"

STUN_PAYLOAD = StunMessage.binding_request(b"abcdefghijkl").serialize()


def zoom_frame(i):
    return build_udp_frame(CAMPUS, 20000, ZOOM, 8801, b"\x05\x10" + bytes(200 + i % 7))


def background_frame(i):
    return build_udp_frame("10.9.0.9", 40000 + i % 10, BACKGROUND, 443, bytes(150))


def write_trace(path, frames):
    with PcapWriter(path) as writer:
        for ts, frame in frames:
            writer.write(CapturedPacket(ts, frame))


def pure_zoom_frames(n=120):
    return [(i * 0.05, zoom_frame(i)) for i in range(n)]


def border_frames(n=200):
    out = []
    for i in range(n):
        frame = zoom_frame(i) if i % 4 == 0 else background_frame(i)
        out.append((i * 0.05, frame))
    return out


def zoom_program():
    return compile_cbpf(CaptureRules.from_networks([ZOOM_NET]))


class TestSimulatedPacketSocket:
    def test_inject_filter_and_ring(self):
        sock = SimulatedPacketSocket(ring_capacity=4)
        sock.attach_filter(zoom_program())
        assert sock.inject(0.0, zoom_frame(0))
        assert not sock.inject(0.1, background_frame(0))  # filtered
        assert sock.filtered == 1
        packets, drops = sock.stats()
        assert (packets, drops) == (1, 0)

    def test_ring_overflow_counts_drops(self):
        sock = SimulatedPacketSocket(ring_capacity=2)
        for i in range(5):
            sock.inject(float(i), zoom_frame(i))
        packets, drops = sock.stats()
        assert packets == 5  # tp_packets includes ring-dropped frames
        assert drops == 3
        assert len(sock.recv_batch(10)) == 2

    def test_replay_and_exhaustion(self, tmp_path):
        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(10))
        sock = SimulatedPacketSocket.replay(trace, chunk=4)
        assert not sock.exhausted
        got = []
        while not sock.exhausted:
            got.extend(sock.recv_batch(3))
        assert len(got) == 10
        assert [ts for ts, _ in got] == [i * 0.05 for i in range(10)]

    def test_forced_overload_is_deterministic(self, tmp_path):
        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(100))
        # chunk > ring_capacity: every refill overruns the ring.
        sock = SimulatedPacketSocket.replay(trace, ring_capacity=10, chunk=50)
        delivered = []
        while not sock.exhausted:
            delivered.extend(sock.recv_batch(1000))
        packets, drops = sock.stats()
        assert packets == 100
        assert drops == 80
        assert len(delivered) == packets - drops

    def test_open_packet_socket_sim_prefix(self, tmp_path):
        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(3))
        sock = open_packet_socket(f"sim:{trace}")
        assert isinstance(sock, SimulatedPacketSocket)
        assert len(sock.recv_batch(10)) == 3


class TestDataplaneFilter:
    def test_tracker_sync_triggers_recompile(self):
        from repro.core.detector import StunTracker

        tracker = StunTracker(timeout=120.0)
        dp = DataplaneFilter(BatchPrefilter([ZOOM_NET]), stun_trackers=[tracker])
        dp.compile()
        assert not dp.needs_recompile()
        tracker.learn(CAMPUS, 50001, now=1.0)
        dp.sync()
        assert dp.needs_recompile()
        program = dp.compile()
        assert program.meta["compiled_endpoints"] == 1
        assert not dp.needs_recompile()


class TestLiveInterfaceSource:
    def test_raw_sniff_learns_then_recompiles(self):
        sock = SimulatedPacketSocket()
        dp = DataplaneFilter(BatchPrefilter([ZOOM_NET]))
        source = LiveInterfaceSource(sock, dataplane=dp, telemetry=Telemetry())
        assert source.recompiles == 1  # initial attach
        stun = build_udp_frame(CAMPUS, 50001, ZOOM_STUN, 3478, STUN_PAYLOAD)
        assert sock.inject(0.0, stun)  # zoom range: passes the initial program
        batches = list(source.poll())
        assert sum(len(b) for b in batches) == 1
        # The raw tier sniffed the cookie; the next poll folds it into the
        # kernel program.
        assert dp.needs_recompile()
        list(source.poll())
        assert source.recompiles == 2
        # A P2P frame on the learned endpoint now passes the kernel tier.
        p2p = build_udp_frame(CAMPUS, 50001, PEER, 9999, bytes(30))
        assert sock.inject(1.0, p2p)
        assert sum(len(b) for b in source.poll()) == 1
        assert source.packets_emitted == 2

    def test_frame_batches_drains_replay(self, tmp_path):
        trace = tmp_path / "t.pcap"
        write_trace(trace, border_frames(80))
        dp = DataplaneFilter(BatchPrefilter([ZOOM_NET]))
        source = LiveInterfaceSource(
            SimulatedPacketSocket.replay(trace), dataplane=dp, telemetry=Telemetry()
        )
        total = sum(len(b) for b in source.frame_batches())
        assert total == 20  # every 4th frame is Zoom
        assert source.exhausted
        assert source.socket.filtered == 60

    def test_kernel_stats_fold_into_telemetry(self, tmp_path):
        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(100))
        telemetry = Telemetry()
        dp = DataplaneFilter(BatchPrefilter([ZOOM_NET]))
        source = LiveInterfaceSource(
            SimulatedPacketSocket.replay(trace, ring_capacity=10, chunk=50),
            dataplane=dp,
            telemetry=telemetry,
        )
        delivered = sum(len(b) for b in source.frame_batches())
        assert source.kernel_drops == 80
        assert delivered == source.kernel_packets - source.kernel_drops
        assert telemetry.snapshot().counter("dataplane.kernel_drops") == 80


def run_service(directory, config, **kwargs):
    service = ZoomMonitorService(directory, config)
    report = service.run(**kwargs)
    return service, report


def service_config(jsonl_path=None, interface=None, listen=None):
    return ServiceConfig(
        analyzer=AnalyzerConfig(zoom_subnets=(ZOOM_NET,)),
        window_seconds=2.0,
        watermark_lateness=0.5,
        interface=interface,
        jsonl_path=str(jsonl_path) if jsonl_path else None,
        listen=listen,
    )


class TestServiceInterfaceMode:
    def test_golden_window_equivalence_pure_zoom(self, tmp_path):
        """Interface mode and tailer mode emit identical window records
        over a trace the dataplane filters nothing from."""
        capture_dir = tmp_path / "captures"
        capture_dir.mkdir()
        trace = capture_dir / "t.pcap"
        write_trace(trace, pure_zoom_frames(120))

        tail_jsonl = tmp_path / "tail.jsonl"
        _, tail_report = run_service(
            capture_dir, service_config(tail_jsonl), stop_after_polls=2
        )
        live_jsonl = tmp_path / "live.jsonl"
        _, live_report = run_service(
            None, service_config(live_jsonl, interface=f"sim:{trace}")
        )

        assert live_report.packets_processed == tail_report.packets_processed == 120
        assert live_report.kernel_drops == 0
        tail_windows = [json.loads(line) for line in tail_jsonl.read_text().splitlines()]
        live_windows = [json.loads(line) for line in live_jsonl.read_text().splitlines()]
        assert tail_windows == live_windows
        assert tail_windows  # the equivalence is not vacuous

    def test_border_trace_reconciliation(self, tmp_path):
        """On a mixed trace the interface path sees only the Zoom share;
        the kernel-filtered remainder reconciles the totals exactly."""
        capture_dir = tmp_path / "captures"
        capture_dir.mkdir()
        trace = capture_dir / "t.pcap"
        write_trace(trace, border_frames(200))

        _, tail_report = run_service(
            capture_dir, service_config(), stop_after_polls=2
        )
        sock = SimulatedPacketSocket.replay(trace)
        service = ZoomMonitorService(
            None, service_config(interface=f"sim:{trace}"), packet_socket=sock
        )
        live_report = service.run()

        assert tail_report.packets_processed == 200
        assert live_report.packets_processed == 50
        filtered_raw = service.tailer.frames_filtered
        assert (
            live_report.packets_processed
            + sock.filtered
            + filtered_raw
            + live_report.kernel_drops
            == tail_report.packets_processed
        )

    def test_kernel_drops_in_report_prometheus_and_anomalies(self, tmp_path):
        from repro.telemetry.anomalies import detect_anomalies

        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(100))
        sock = SimulatedPacketSocket.replay(trace, ring_capacity=10, chunk=50)
        service = ZoomMonitorService(
            None, service_config(interface=f"sim:{trace}"), packet_socket=sock
        )
        report = service.run()
        assert report.kernel_drops == 80
        assert report.packets_processed == 20
        page = service.render_metrics()
        assert "repro_dataplane_kernel_drops_total 80" in page
        names = [a.name for a in detect_anomalies(service.telemetry.snapshot())]
        assert "dataplane-kernel-drops" in names

    def test_dataplane_counters_pre_seeded(self, tmp_path):
        """Interface mode exports zero-valued dataplane.* series from the
        first scrape, before any packet arrives (the fleet.* pattern)."""
        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(5))
        service = ZoomMonitorService(
            None, service_config(interface=f"sim:{trace}")
        )
        page = service.render_metrics()  # before run(): nothing counted yet
        for name in ("repro_dataplane_kernel_drops_total", "repro_dataplane_filtered_total",
                     "repro_dataplane_recompiles_total"):
            assert name in page
        service.run()

    def test_directory_required_without_interface(self):
        import pytest

        with pytest.raises(ValueError, match="directory is required"):
            ZoomMonitorService(None, service_config())


class TestCliParsing:
    def test_interface_flag_and_optional_directory(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["analyze-live", "--interface", "sim:/x.pcap"])
        assert args.directory is None
        assert args.interface == "sim:/x.pcap"
        assert args.batch_size == 256

    def test_batch_size_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["analyze", "x.pcap", "--batch-size", "64"])
        assert args.batch_size == 64
        args = build_parser().parse_args(["analyze-live", "d", "--batch-size", "1024"])
        assert args.batch_size == 1024

    def test_directory_and_interface_mutually_exclusive(self):
        from repro.cli import main

        assert main(["analyze-live", "somedir", "--interface", "eth0"]) == 2
        assert main(["analyze-live"]) == 2

    def test_cli_interface_run_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.pcap"
        write_trace(trace, pure_zoom_frames(40))
        assert main(["analyze-live", "--interface", f"sim:{trace}",
                     "--zoom-subnets", ZOOM_NET]) == 0
        out = capsys.readouterr().out
        assert "capturing from sim:" in out
        assert "processed 40 packets" in out

    def test_batch_size_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError, match="batch_size"):
            AnalyzerConfig(batch_size=0)
