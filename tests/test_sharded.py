"""Flow-sharded parallel analysis: partitioning and merge equivalence."""

from __future__ import annotations

import struct

import pytest

from repro.core import ShardedAnalyzer, ZoomAnalyzer
from repro.core.sharded import flow_shard_info


def _ipv4_frame(
    src: str,
    sport: int,
    dst: str,
    dport: int,
    proto: int = 17,
    payload: bytes = b"\x00" * 32,
) -> bytes:
    src_b = bytes(int(p) for p in src.split("."))
    dst_b = bytes(int(p) for p in dst.split("."))
    if proto == 17:
        l4 = struct.pack("!HHHH", sport, dport, 8 + len(payload), 0) + payload
    else:
        l4 = struct.pack("!HHIIBBHHH", sport, dport, 0, 0, 5 << 4, 0, 0, 0, 0) + payload
    ip = (
        struct.pack("!BBHHHBBH", 0x45, 0, 20 + len(l4), 0, 0, 64, proto, 0)
        + src_b
        + dst_b
    )
    return b"\x02" * 6 + b"\x04" * 6 + b"\x08\x00" + ip + l4


class TestFlowShardInfo:
    def test_bidirectional_hash_matches(self):
        forward = _ipv4_frame("10.0.0.1", 5000, "170.114.1.2", 8801)
        reverse = _ipv4_frame("170.114.1.2", 8801, "10.0.0.1", 5000)
        info_f = flow_shard_info(forward)
        info_r = flow_shard_info(reverse)
        assert info_f is not None and info_r is not None
        assert info_f[0] == info_r[0]

    def test_different_flows_hash_differently(self):
        a = flow_shard_info(_ipv4_frame("10.0.0.1", 5000, "170.114.1.2", 8801))
        b = flow_shard_info(_ipv4_frame("10.0.0.2", 6000, "170.114.1.2", 8801))
        assert a[0] != b[0]

    def test_tcp_flows_are_hashable(self):
        info = flow_shard_info(_ipv4_frame("10.0.0.1", 443, "1.2.3.4", 555, proto=6))
        assert info is not None and info[1] is False

    def test_non_ip_frame_is_unhashable(self):
        arp = b"\xff" * 6 + b"\x02" * 6 + b"\x08\x06" + b"\x00" * 28
        assert flow_shard_info(arp) is None

    def test_truncated_frame_is_unhashable(self):
        assert flow_shard_info(b"\x00" * 20) is None

    def test_stun_detection(self):
        stun_payload = b"\x00\x01\x00\x00" + b"\x21\x12\xa4\x42" + b"\x00" * 12
        frame = _ipv4_frame("10.0.0.1", 5000, "1.2.3.4", 3478, payload=stun_payload)
        info = flow_shard_info(frame)
        assert info is not None and info[1] is True

    def test_non_stun_udp_on_other_ports(self):
        frame = _ipv4_frame("10.0.0.1", 5000, "1.2.3.4", 8801)
        info = flow_shard_info(frame)
        assert info is not None and info[1] is False


class TestPartition:
    def test_flow_affinity_and_order(self, sfu_meeting_result):
        driver = ShardedAnalyzer(shards=4)
        buckets = driver.partition(sfu_meeting_result.captures)
        assert len(buckets) == 4
        seen_flows: dict[int, int] = {}
        for index, bucket in enumerate(buckets):
            times = [p.timestamp for p, _ in bucket]
            assert times == sorted(times)
            for packet, is_hint in bucket:
                if is_hint:
                    continue
                info = flow_shard_info(packet.data)
                if info is None:
                    continue
                assert seen_flows.setdefault(info[0], index) == index
        home_total = sum(1 for bucket in buckets for _, hint in bucket if not hint)
        assert home_total == len(sfu_meeting_result.captures)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardedAnalyzer(shards=0)
        with pytest.raises(ValueError):
            ShardedAnalyzer(backend="gpu")


def _assert_equivalent(single, sharded):
    assert len(sharded.streams) == len(single.streams)
    assert len(sharded.grouper.meetings()) == len(single.grouper.meetings())
    assert sharded.packets_total == single.packets_total
    assert sharded.packets_zoom == single.packets_zoom
    assert sharded.bytes_total == single.bytes_total
    assert sharded.stun_packets == single.stun_packets
    assert dict(sharded.encap_packets) == dict(single.encap_packets)
    assert dict(sharded.encap_bytes) == dict(single.encap_bytes)
    assert sharded.encap_share_table() == single.encap_share_table()
    assert sharded.payload_type_table() == single.payload_type_table()
    single_per_stream = {s.key: (s.packets, s.bytes) for s in single.streams}
    sharded_per_stream = {s.key: (s.packets, s.bytes) for s in sharded.streams}
    assert sharded_per_stream == single_per_stream


class TestEquivalence:
    def test_sfu_meeting_four_shards(self, sfu_meeting_result, analyzed_sfu):
        sharded = ShardedAnalyzer(shards=4, backend="serial").analyze(
            sfu_meeting_result.captures
        )
        _assert_equivalent(analyzed_sfu, sharded)

    def test_p2p_meeting_four_shards(self, p2p_meeting_result, analyzed_p2p):
        # P2P media runs on a different 5-tuple than the STUN exchange that
        # announces it — only STUN replication keeps detection sharding-safe
        sharded = ShardedAnalyzer(shards=4, backend="serial").analyze(
            p2p_meeting_result.captures
        )
        _assert_equivalent(analyzed_p2p, sharded)
        assert sum(1 for s in sharded.streams if s.is_p2p) == sum(
            1 for s in analyzed_p2p.streams if s.is_p2p
        )

    def test_single_shard_matches(self, sfu_meeting_result, analyzed_sfu):
        sharded = ShardedAnalyzer(shards=1).analyze(sfu_meeting_result.captures)
        _assert_equivalent(analyzed_sfu, sharded)

    def test_thread_backend(self, sfu_meeting_result, analyzed_sfu):
        sharded = ShardedAnalyzer(shards=3, backend="thread").analyze(
            sfu_meeting_result.captures
        )
        _assert_equivalent(analyzed_sfu, sharded)

    @pytest.mark.slow
    def test_process_backend(self, sfu_meeting_result, analyzed_sfu):
        # Spawning workers and pickling packets across process boundaries
        # dominates the runtime here, hence the slow marker.
        sharded = ShardedAnalyzer(shards=2, backend="process").analyze(
            sfu_meeting_result.captures
        )
        _assert_equivalent(analyzed_sfu, sharded)

    @pytest.mark.slow
    def test_process_backend_telemetry_merges(self, sfu_meeting_result):
        from repro.telemetry import shard_invariant_counters

        captures = sfu_meeting_result.captures
        single = ZoomAnalyzer().analyze(captures)
        sharded = ShardedAnalyzer(shards=2, backend="process").analyze(captures)
        assert shard_invariant_counters(
            sharded.telemetry_snapshot()
        ) == shard_invariant_counters(single.telemetry_snapshot())

    def test_merged_result_supports_reporting(self, sfu_meeting_result):
        from repro.analysis.export import feature_rows
        from repro.analysis.reportgen import full_report

        sharded = ShardedAnalyzer(shards=4, backend="serial").analyze(
            sfu_meeting_result.captures
        )
        assert "Meeting" in full_report(sharded)
        assert feature_rows(sharded)

    def test_options_forwarded_to_shards(self, sfu_meeting_result):
        sharded = ShardedAnalyzer(
            shards=2,
            backend="serial",
            campus_subnets=("10.8.0.0/16",),
            keep_records=True,
        ).analyze(sfu_meeting_result.captures)
        assert sharded.streams.keep_records is True
        assert all(s.records for s in sharded.streams)


class TestMergeErrors:
    def test_adopt_rejects_duplicate_keys(self, sfu_meeting_result):
        from repro.core.pipeline import AnalysisResult

        result = ZoomAnalyzer().analyze(sfu_meeting_result.captures)
        with pytest.raises(ValueError):
            AnalysisResult.merge_all([result, result])
