"""Tests for the pcapng reader/writer."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import CapturedPacket, build_udp_frame
from repro.net.pcapng import (
    BLOCK_SHB,
    PcapngReader,
    PcapngWriter,
    read_capture,
    read_pcapng,
    write_pcapng,
)


def _packets(n=3):
    return [
        CapturedPacket(
            10.0 + i * 0.123456789,
            build_udp_frame("10.8.0.1", 1000 + i, "170.114.0.1", 8801, bytes([i]) * 20),
        )
        for i in range(n)
    ]


def test_roundtrip_memory():
    buffer = io.BytesIO()
    packets = _packets()
    PcapngWriter(buffer).write_all(packets)
    buffer.seek(0)
    restored = list(PcapngReader(buffer))
    assert [p.data for p in restored] == [p.data for p in packets]
    for original, new in zip(packets, restored):
        assert abs(original.timestamp - new.timestamp) < 1e-9


def test_roundtrip_file(tmp_path):
    path = tmp_path / "trace.pcapng"
    assert write_pcapng(path, _packets(5)) == 5
    restored = read_pcapng(path)
    assert len(restored) == 5


def test_starts_with_shb(tmp_path):
    path = tmp_path / "t.pcapng"
    write_pcapng(path, _packets(1))
    (magic,) = struct.unpack("<I", path.read_bytes()[:4])
    assert magic == BLOCK_SHB


def test_nanosecond_resolution_preserved():
    buffer = io.BytesIO()
    PcapngWriter(buffer).write(CapturedPacket(1.000000001, b"x" * 14))
    buffer.seek(0)
    packet = next(iter(PcapngReader(buffer)))
    assert packet.timestamp == pytest.approx(1.000000001, abs=1e-10)


def test_unknown_blocks_skipped():
    buffer = io.BytesIO()
    writer = PcapngWriter(buffer)
    writer.write(_packets(1)[0])
    # Append a custom block (type 0x0BAD) that a reader must skip.
    body = b"\xde\xad\xbe\xef"
    total = 12 + len(body)
    buffer.write(struct.pack("<II", 0x0BAD, total) + body + struct.pack("<I", total))
    writer.write(_packets(2)[1])
    buffer.seek(0)
    restored = list(PcapngReader(buffer))
    assert len(restored) == 2


def test_not_pcapng_rejected():
    with pytest.raises(ValueError):
        PcapngReader(io.BytesIO(b"\x00" * 32))


def test_truncated_rejected():
    buffer = io.BytesIO()
    PcapngWriter(buffer).write(_packets(1)[0])
    data = buffer.getvalue()[:-6]
    with pytest.raises(ValueError):
        list(PcapngReader(io.BytesIO(data)))


def test_simple_packet_block():
    buffer = io.BytesIO()
    writer = PcapngWriter(buffer)
    frame = b"\xaa" * 24
    body = struct.pack("<I", len(frame)) + frame
    total = 12 + len(body)
    buffer.write(struct.pack("<II", 3, total) + body + struct.pack("<I", total))
    buffer.seek(0)
    packets = list(PcapngReader(buffer))
    assert packets == [CapturedPacket(0.0, frame)]


def test_read_capture_autodetect(tmp_path):
    from repro.net.pcap import write_pcap

    packets = _packets(2)
    pcap_path = tmp_path / "a.pcap"
    pcapng_path = tmp_path / "a.pcapng"
    write_pcap(pcap_path, packets)
    write_pcapng(pcapng_path, packets)
    assert [p.data for p in read_capture(pcap_path)] == [p.data for p in packets]
    assert [p.data for p in read_capture(pcapng_path)] == [p.data for p in packets]


def test_analyzer_accepts_pcapng(tmp_path, sfu_meeting_result):
    from repro.core import ZoomAnalyzer

    path = tmp_path / "meeting.pcapng"
    write_pcapng(path, sfu_meeting_result.captures[:3000])
    result = ZoomAnalyzer().analyze(read_capture(path))
    assert result.packets_total == 3000
    assert result.packets_zoom == 3000


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.binary(min_size=0, max_size=120),
), max_size=15))
def test_roundtrip_property(items):
    packets = [CapturedPacket(t, d) for t, d in items]
    buffer = io.BytesIO()
    PcapngWriter(buffer).write_all(packets)
    buffer.seek(0)
    restored = list(PcapngReader(buffer))
    assert [p.data for p in restored] == [p.data for p in packets]
    for original, new in zip(packets, restored):
        assert abs(original.timestamp - new.timestamp) < 1e-8
