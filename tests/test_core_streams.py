"""Tests for RTP stream assembly."""

from repro.core.streams import (
    MediaStream,
    RTPPacketRecord,
    StreamTable,
    _seq_newer,
)

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def record(**overrides) -> RTPPacketRecord:
    defaults = dict(
        timestamp=1.0,
        five_tuple=FT,
        ssrc=0x110,
        payload_type=98,
        sequence=100,
        rtp_timestamp=90000,
        marker=False,
        media_type=16,
        payload_len=500,
        udp_payload_len=550,
        frame_sequence=1,
        packets_in_frame=2,
        to_server=True,
    )
    defaults.update(overrides)
    return RTPPacketRecord(**defaults)


class TestRecord:
    def test_stream_key(self):
        assert record().stream_key == (FT, 0x110)

    def test_src_dst(self):
        r = record()
        assert r.src == ("10.8.1.2", 50001)
        assert r.dst == ("170.114.10.5", 8801)


class TestMediaStream:
    def test_observe_updates_bounds(self):
        stream = MediaStream(key=(FT, 0x110), media_type=16, is_p2p=False, to_server=True)
        stream.observe(record(timestamp=1.0, rtp_timestamp=100))
        stream.observe(record(timestamp=2.5, rtp_timestamp=200, sequence=101))
        assert stream.first_time == 1.0
        assert stream.last_time == 2.5
        assert stream.first_rtp_timestamp == 100
        assert stream.last_rtp_timestamp == 200
        assert stream.packets == 2
        assert stream.bytes == 1000
        assert stream.duration == 1.5

    def test_substream_separation(self):
        stream = MediaStream(key=(FT, 0x110), media_type=16, is_p2p=False, to_server=True)
        stream.observe(record(payload_type=98, sequence=10))
        stream.observe(record(payload_type=110, sequence=500))
        stream.observe(record(payload_type=98, sequence=11))
        assert set(stream.substreams) == {98, 110}
        assert stream.substreams[98].packets == 2
        assert stream.main_substream().payload_type == 98

    def test_record_retention_flag(self):
        keep = MediaStream(key=(FT, 1), media_type=16, is_p2p=False, to_server=True, keep_records=True)
        drop = MediaStream(key=(FT, 1), media_type=16, is_p2p=False, to_server=True, keep_records=False)
        keep.observe(record())
        drop.observe(record())
        assert len(keep.records) == 1
        assert len(drop.records) == 0

    def test_media_type_name(self):
        stream = MediaStream(key=(FT, 1), media_type=16, is_p2p=False, to_server=True)
        assert stream.media_type_name == "VIDEO"
        other = MediaStream(key=(FT, 1), media_type=77, is_p2p=False, to_server=True)
        assert other.media_type_name == "TYPE_77"

    def test_highest_sequence_wraparound(self):
        stream = MediaStream(key=(FT, 1), media_type=16, is_p2p=False, to_server=True)
        stream.observe(record(sequence=0xFFFE))
        stream.observe(record(sequence=0xFFFF))
        stream.observe(record(sequence=0x0000))  # wrapped
        assert stream.substreams[98].highest_sequence == 0x0000


class TestStreamTable:
    def test_streams_created_per_key(self):
        table = StreamTable()
        table.observe(record(ssrc=1))
        table.observe(record(ssrc=2))
        table.observe(record(ssrc=1, sequence=101))
        assert len(table) == 2

    def test_ssrc_index(self):
        table = StreamTable()
        other_flow = ("170.114.10.5", 8801, "10.8.1.3", 50002, 17)
        table.observe(record(ssrc=7))
        table.observe(record(ssrc=7, five_tuple=other_flow, to_server=False))
        assert len(table.with_ssrc(7)) == 2
        assert table.with_ssrc(8) == []

    def test_get(self):
        table = StreamTable()
        table.observe(record())
        assert table.get((FT, 0x110)) is not None
        assert table.get((FT, 0x999)) is None

    def test_iteration(self):
        table = StreamTable()
        table.observe(record(ssrc=1))
        table.observe(record(ssrc=2))
        assert {stream.ssrc for stream in table} == {1, 2}

    def test_keep_records_propagates(self):
        table = StreamTable(keep_records=False)
        stream = table.observe(record())
        assert stream.records == []


class TestSeqNewer:
    def test_simple(self):
        assert _seq_newer(101, 100)
        assert not _seq_newer(100, 101)
        assert not _seq_newer(100, 100)

    def test_wraparound(self):
        assert _seq_newer(5, 0xFFFE)
        assert not _seq_newer(0xFFFE, 5)

    def test_far_apart_is_old(self):
        assert not _seq_newer(0x8001, 0)
