"""Tests for both latency estimation methods (§5.3, Figure 11)."""

import pytest

from repro.core.metrics.latency import RTPLatencyMatcher, TCPRTTEstimator
from repro.core.streams import RTPPacketRecord
from repro.net.packet import build_tcp_frame, parse_frame
from repro.net.tcp import TCPFlags

EGRESS_FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)
INGRESS_FT = ("170.114.10.5", 8801, "10.8.1.3", 50011, 17)


def rtp_record(five_tuple, *, seq, ts, t, to_server, ssrc=0x110, payload_type=98):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=five_tuple,
        ssrc=ssrc,
        payload_type=payload_type,
        sequence=seq,
        rtp_timestamp=ts,
        marker=False,
        media_type=16,
        payload_len=500,
        udp_payload_len=550,
        to_server=to_server,
    )


class TestRTPMatcher:
    def test_matching_copy_produces_sample(self):
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.000, to_server=True))
        sample = matcher.observe(
            rtp_record(INGRESS_FT, seq=5, ts=100, t=1.034, to_server=False)
        )
        assert sample is not None
        assert sample.rtt == pytest.approx(0.034)
        assert sample.ssrc == 0x110

    def test_requires_all_four_fields(self):
        """Time, SSRC, sequence, and timestamp all must match (§4.3.1)."""
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True))
        assert matcher.observe(rtp_record(INGRESS_FT, seq=6, ts=100, t=1.03, to_server=False)) is None
        assert matcher.observe(rtp_record(INGRESS_FT, seq=5, ts=101, t=1.03, to_server=False)) is None
        assert (
            matcher.observe(
                rtp_record(INGRESS_FT, seq=5, ts=100, t=1.03, to_server=False, ssrc=0x111)
            )
            is None
        )

    def test_substreams_matched_separately(self):
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True, payload_type=98))
        assert (
            matcher.observe(
                rtp_record(INGRESS_FT, seq=5, ts=100, t=1.03, to_server=False, payload_type=110)
            )
            is None
        )

    def test_stale_match_discarded(self):
        matcher = RTPLatencyMatcher(max_rtt=2.0)
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True))
        assert matcher.observe(rtp_record(INGRESS_FT, seq=5, ts=100, t=9.0, to_server=False)) is None

    def test_retransmitted_egress_keeps_first_time(self):
        """A retransmitted egress copy must not shrink the measured RTT."""
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True))
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.2, to_server=True))
        sample = matcher.observe(rtp_record(INGRESS_FT, seq=5, ts=100, t=1.25, to_server=False))
        assert sample.rtt == pytest.approx(0.25)

    def test_p2p_records_not_matched(self):
        matcher = RTPLatencyMatcher()
        assert matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=None)) is None

    def test_multiple_receivers_multiple_samples(self):
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True))
        other_ingress = ("170.114.10.5", 8801, "10.8.1.4", 50021, 17)
        assert matcher.observe(rtp_record(INGRESS_FT, seq=5, ts=100, t=1.03, to_server=False))
        assert matcher.observe(rtp_record(other_ingress, seq=5, ts=100, t=1.04, to_server=False))
        assert matcher.matched == 2

    def test_samples_for_filter(self):
        matcher = RTPLatencyMatcher()
        matcher.observe(rtp_record(EGRESS_FT, seq=5, ts=100, t=1.0, to_server=True))
        matcher.observe(rtp_record(INGRESS_FT, seq=5, ts=100, t=1.03, to_server=False))
        assert len(matcher.samples_for(0x110)) == 1
        assert matcher.samples_for(0x999) == []

    def test_pending_bounded(self):
        matcher = RTPLatencyMatcher(max_pending=10)
        for i in range(100):
            matcher.observe(rtp_record(EGRESS_FT, seq=i, ts=i, t=1.0 + i * 0.01, to_server=True))
        assert len(matcher._egress) <= 10


class TestTCPEstimator:
    CLIENT = "10.8.1.2"
    SERVER = "170.114.10.5"

    def _packet(self, src, sport, dst, dport, *, seq, ack, flags, payload=b"", t=0.0):
        return parse_frame(
            build_tcp_frame(src, sport, dst, dport, seq=seq, ack=ack, flags=flags, payload=payload),
            t,
        )

    def test_server_side_rtt(self):
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        estimator.observe(self._packet(
            self.CLIENT, 40000, self.SERVER, 443,
            seq=1000, ack=0, flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"x" * 50, t=1.0,
        ))
        sample = estimator.observe(self._packet(
            self.SERVER, 443, self.CLIENT, 40000,
            seq=0, ack=1050, flags=TCPFlags.ACK, t=1.042,
        ))
        assert sample is not None
        assert sample.rtt == pytest.approx(0.042)
        assert len(estimator.server_samples) == 1

    def test_client_side_rtt(self):
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        estimator.observe(self._packet(
            self.SERVER, 443, self.CLIENT, 40000,
            seq=5000, ack=0, flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"y" * 30, t=2.0,
        ))
        sample = estimator.observe(self._packet(
            self.CLIENT, 40000, self.SERVER, 443,
            seq=0, ack=5030, flags=TCPFlags.ACK, t=2.004,
        ))
        assert sample is not None
        assert sample.rtt == pytest.approx(0.004)
        assert len(estimator.client_samples) == 1

    def test_unrelated_flow_ignored(self):
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        packet = self._packet("9.9.9.9", 1, "8.8.8.8", 2, seq=0, ack=0, flags=TCPFlags.ACK)
        assert estimator.observe(packet) is None

    def test_retransmission_not_resampled(self):
        """Karn's algorithm: the retransmitted segment keeps the original
        send time, so an ambiguous RTT sample is avoided by not updating."""
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        first = self._packet(self.CLIENT, 40000, self.SERVER, 443,
                             seq=1000, ack=0, flags=TCPFlags.ACK, payload=b"x" * 50, t=1.0)
        estimator.observe(first)
        retransmit = self._packet(self.CLIENT, 40000, self.SERVER, 443,
                                  seq=1000, ack=0, flags=TCPFlags.ACK, payload=b"x" * 50, t=1.5)
        estimator.observe(retransmit)
        sample = estimator.observe(self._packet(
            self.SERVER, 443, self.CLIENT, 40000, seq=0, ack=1050, flags=TCPFlags.ACK, t=1.6,
        ))
        assert sample.rtt == pytest.approx(0.6)

    def test_asymmetry_localizes_congestion(self):
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        estimator.observe(self._packet(self.CLIENT, 1, self.SERVER, 443,
                                       seq=0, ack=0, flags=TCPFlags.ACK, payload=b"x", t=1.0))
        estimator.observe(self._packet(self.SERVER, 443, self.CLIENT, 1,
                                       seq=0, ack=1, flags=TCPFlags.ACK, t=1.040))
        estimator.observe(self._packet(self.SERVER, 443, self.CLIENT, 1,
                                       seq=100, ack=0, flags=TCPFlags.ACK, payload=b"y", t=2.0))
        estimator.observe(self._packet(self.CLIENT, 1, self.SERVER, 443,
                                       seq=0, ack=101, flags=TCPFlags.ACK, t=2.002))
        # Server leg ~40ms, client leg ~2ms: congestion is upstream.
        assert estimator.asymmetry() == pytest.approx(0.038, abs=1e-6)

    def test_asymmetry_needs_both_sides(self):
        estimator = TCPRTTEstimator(self.CLIENT, self.SERVER)
        assert estimator.asymmetry() is None
