"""Tests for RTCP sender reports, receiver reports, and SDES."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.rtcp import (
    NTP_EPOCH_OFFSET,
    ReportBlock,
    RTCPPacketType,
    RTCPReceiverReport,
    RTCPSdes,
    RTCPSenderReport,
    ntp_from_unix,
    parse_rtcp_compound,
    unix_from_ntp,
)


def _sender_report(**overrides) -> RTCPSenderReport:
    defaults = dict(
        ssrc=0x110,
        ntp_seconds=NTP_EPOCH_OFFSET + 1000,
        ntp_fraction=1 << 31,
        rtp_timestamp=90000,
        packet_count=500,
        octet_count=600000,
    )
    defaults.update(overrides)
    return RTCPSenderReport(**defaults)


class TestNTP:
    def test_roundtrip(self):
        seconds, fraction = ntp_from_unix(1234.5)
        assert abs(unix_from_ntp(seconds, fraction) - 1234.5) < 1e-6

    def test_epoch_offset(self):
        seconds, fraction = ntp_from_unix(0.0)
        assert seconds == NTP_EPOCH_OFFSET
        assert fraction == 0


class TestSenderReport:
    def test_roundtrip(self):
        report = _sender_report()
        parsed, length = RTCPSenderReport.parse(report.serialize())
        assert parsed == report
        assert length == 28

    def test_header_fields(self):
        wire = _sender_report().serialize()
        assert wire[0] >> 6 == 2
        assert wire[1] == RTCPPacketType.SENDER_REPORT
        assert int.from_bytes(wire[2:4], "big") == 6  # length words

    def test_with_report_blocks(self):
        block = ReportBlock(ssrc=0x99, fraction_lost=10, cumulative_lost=42, jitter=7)
        report = _sender_report(report_blocks=(block,))
        parsed, length = RTCPSenderReport.parse(report.serialize())
        assert parsed.report_blocks == (block,)
        assert length == 28 + 24

    def test_ntp_unix_time(self):
        report = _sender_report(ntp_seconds=NTP_EPOCH_OFFSET + 50, ntp_fraction=0)
        assert report.ntp_unix_time == pytest.approx(50.0)

    def test_rejects_wrong_type(self):
        wire = bytearray(_sender_report().serialize())
        wire[1] = RTCPPacketType.RECEIVER_REPORT
        with pytest.raises(ValueError):
            RTCPSenderReport.parse(bytes(wire))

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            RTCPSenderReport.parse(_sender_report().serialize()[:20])


class TestReceiverReport:
    def test_roundtrip(self):
        report = RTCPReceiverReport(ssrc=5, report_blocks=(ReportBlock(ssrc=0x10),))
        parsed, length = RTCPReceiverReport.parse(report.serialize())
        assert parsed == report
        assert length == 8 + 24


class TestSdes:
    def test_empty_roundtrip(self):
        sdes = RTCPSdes(ssrc=0x110)
        parsed, _length = RTCPSdes.parse(sdes.serialize())
        assert parsed == sdes
        assert parsed.is_empty

    def test_with_items(self):
        sdes = RTCPSdes(ssrc=1, items=((1, b"user@host"),))
        parsed, _length = RTCPSdes.parse(sdes.serialize())
        assert parsed.items == ((1, b"user@host"),)
        assert not parsed.is_empty

    def test_chunk_padding_alignment(self):
        for name_length in range(1, 9):
            sdes = RTCPSdes(ssrc=1, items=((1, b"x" * name_length),))
            assert len(sdes.serialize()) % 4 == 0


class TestCompound:
    def test_sr_plus_empty_sdes(self):
        """The exact compound Zoom emits for media-encap type 34."""
        compound = _sender_report().serialize() + RTCPSdes(ssrc=0x110).serialize()
        reports = parse_rtcp_compound(compound)
        assert len(reports) == 2
        assert isinstance(reports[0], RTCPSenderReport)
        assert isinstance(reports[1], RTCPSdes)
        assert reports[1].is_empty

    def test_lone_sr(self):
        reports = parse_rtcp_compound(_sender_report().serialize())
        assert len(reports) == 1

    def test_garbage_returns_empty(self):
        assert parse_rtcp_compound(b"\x00" * 40) == []

    def test_trailing_garbage_stops_cleanly(self):
        compound = _sender_report().serialize() + b"\x12\x34"
        reports = parse_rtcp_compound(compound)
        assert len(reports) == 1

    def test_unknown_type_skipped(self):
        # RTCP BYE (203) between two SRs: skipped via its stated length.
        bye = bytes([0x80, 203, 0, 1]) + (0x110).to_bytes(4, "big")
        compound = _sender_report().serialize() + bye + _sender_report(ssrc=0x111).serialize()
        reports = parse_rtcp_compound(compound)
        assert [type(r).__name__ for r in reports] == ["RTCPSenderReport", "RTCPSenderReport"]


@given(
    ssrc=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ntp_seconds=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ntp_fraction=st.integers(min_value=0, max_value=0xFFFFFFFF),
    rtp_timestamp=st.integers(min_value=0, max_value=0xFFFFFFFF),
    packet_count=st.integers(min_value=0, max_value=0xFFFFFFFF),
    octet_count=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_sr_roundtrip_property(
    ssrc, ntp_seconds, ntp_fraction, rtp_timestamp, packet_count, octet_count
):
    report = RTCPSenderReport(
        ssrc=ssrc,
        ntp_seconds=ntp_seconds,
        ntp_fraction=ntp_fraction,
        rtp_timestamp=rtp_timestamp,
        packet_count=packet_count,
        octet_count=octet_count,
    )
    parsed, _length = RTCPSenderReport.parse(report.serialize())
    assert parsed == report
