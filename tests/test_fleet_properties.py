"""Property tests: the federated merge is a pure function of the record set.

Two invariants make the fleet trustworthy, and Hypothesis hunts for
counterexamples to both:

* **Partition invariance** — however the records are split across N node
  stores, the federated answer equals a single-store query over the union.
* **Order independence** — permuting the records (and therefore the order
  in which nodes/segments contribute them) changes nothing.

Meetings get unique spans by construction: records for the *same* meeting
observed from two taps legitimately collapse (that is the dedup feature),
so the invariance property is stated over fleets whose meetings are
distinct — exactly the partitioned-store deployment the acceptance
criterion describes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FleetConfig, FleetNodeConfig
from repro.fleet import federated_query
from repro.store import StoreQuery
from repro.store.query import run_query


class FakeStore:
    """The minimal store surface :func:`run_query` scans: no sealed
    segments, all records in one active tail."""

    def __init__(self, records):
        self._records = list(records)

    def segments(self):
        return []

    def iter_segment_records(self, info):  # pragma: no cover - no segments
        return []

    def iter_active_records(self):
        yield 0, list(self._records)


def _fleet_over(parts):
    nodes = tuple(
        FleetNodeConfig(name=f"n{i}", store_dir=f"/unused/n{i}")
        for i in range(len(parts))
    )
    stores = {f"n{i}": FakeStore(part) for i, part in enumerate(parts)}
    return FleetConfig(nodes=nodes), stores


def _single_store_answer(records, query):
    return run_query(FakeStore(records), query).records


windows = st.builds(
    lambda index, packets, fps, jitter, active: {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": packets,
        "bytes_total": packets * 73,
        "zoom_packets": packets // 2,
        "meetings_formed": packets % 3,
        "meetings_active": active,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": "video",
                "packets": packets // 2,
                "bytes": packets * 31,
                "bitrate_bps": packets * 24.8,
                "streams": 1 + packets % 4,
                "streams_opened": packets % 2,
                "p2p_packets": 0,
                "mean_fps": fps,
                "mean_jitter_ms": jitter,
                "lost": packets % 5,
                "duplicates": 0,
            }
        ],
    },
    index=st.integers(min_value=0, max_value=23),
    packets=st.integers(min_value=0, max_value=10_000),
    fps=st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    ),
    jitter=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    active=st.integers(min_value=0, max_value=9),
)

#: Meetings with spans unique per generated id — no cross-node duplicates,
#: so dedup stays out of the invariance property's way (it has its own
#: tests in test_fleet_federation.py).
meetings = st.builds(
    lambda uid, streams: {
        "kind": "meeting",
        "start": 1000.0 + uid * 17.0,
        "end": 1000.0 + uid * 17.0 + 11.0 + uid,
        "meeting_id": uid,
        "streams": streams,
        "participants": 2 + streams % 4,
    },
    uid=st.integers(min_value=0, max_value=50),
    streams=st.integers(min_value=1, max_value=12),
)

record_sets = st.lists(st.one_of(windows, meetings), max_size=30)

queries = st.sampled_from(
    [
        StoreQuery(kinds=("window", "meeting")),
        StoreQuery(kinds=("window", "meeting"), reaggregate_seconds=30.0),
        StoreQuery(kinds=("window",), reaggregate_seconds=60.0),
        StoreQuery(start=40.0, end=1100.0, kinds=("window", "meeting")),
        StoreQuery(media="video", metrics=("packets_total", "mean_fps")),
    ]
)


def _dedupe_meeting_uids(records):
    seen = set()
    out = []
    for record in records:
        if record["kind"] == "meeting":
            if record["meeting_id"] in seen:
                continue
            seen.add(record["meeting_id"])
        out.append(record)
    return out


@settings(max_examples=60, deadline=None)
@given(
    records=record_sets,
    query=queries,
    partition=st.lists(st.integers(min_value=0, max_value=3), max_size=40),
    data=st.data(),
)
def test_partition_and_order_invariance(records, query, partition, data):
    records = _dedupe_meeting_uids(records)
    expected = _single_store_answer(records, query)

    # Partition the records over up to 4 nodes (empty nodes included).
    parts = [[], [], [], []]
    for i, record in enumerate(records):
        parts[partition[i] if i < len(partition) else 0].append(record)
    config, stores = _fleet_over(parts)
    federated = federated_query(config, query, local_stores=stores)
    assert federated.records == expected
    assert federated.nodes_missing == []

    # Permute both the records and the node assignment: same answer.
    shuffled = data.draw(st.permutations(records))
    parts2 = [[], [], [], []]
    for i, record in enumerate(shuffled):
        parts2[(i * 2654435761) % 4].append(record)
    config2, stores2 = _fleet_over(parts2)
    assert federated_query(config2, query, local_stores=stores2).records == expected


@settings(max_examples=30, deadline=None)
@given(records=record_sets)
def test_single_node_fleet_equals_plain_query(records):
    records = _dedupe_meeting_uids(records)
    query = StoreQuery(kinds=("window", "meeting"), reaggregate_seconds=30.0)
    config, stores = _fleet_over([records])
    assert (
        federated_query(config, query, local_stores=stores).records
        == _single_store_answer(records, query)
    )
