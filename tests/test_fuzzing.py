"""Failure injection: hostile and corrupted input must never crash anything.

The analyzer's deployment position — parsing every UDP payload crossing a
campus border — means it will see garbage constantly: non-Zoom traffic that
slipped the filter, truncated snaplen captures, bit errors, and adversarial
payloads.  Parsers may reject input; they may not raise unexpected
exceptions or corrupt analyzer state.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ZoomAnalyzer
from repro.core.dissector import dissect
from repro.core.entropy import analyze_flow
from repro.core.offset_finder import discover_offsets
from repro.net.packet import CapturedPacket, build_udp_frame, parse_frame
from repro.rtp.rtcp import parse_rtcp_compound
from repro.rtp.stun import is_stun
from repro.zoom.packets import parse_zoom_payload


@given(st.binary(min_size=0, max_size=300))
def test_parse_zoom_payload_never_raises(data):
    for from_server in (True, False, None):
        packet = parse_zoom_payload(data, from_server=from_server)
        assert packet.raw == data


@given(st.binary(min_size=0, max_size=300))
def test_dissector_never_raises(data):
    tree = dissect(data)
    assert tree.render()


@given(st.binary(min_size=0, max_size=200))
def test_parse_frame_never_raises(data):
    parsed = parse_frame(data, 1.0)
    assert parsed.raw == data


@given(st.binary(min_size=0, max_size=200))
def test_rtcp_compound_never_raises(data):
    assert isinstance(parse_rtcp_compound(data), list)


@given(st.binary(min_size=0, max_size=100))
def test_is_stun_never_raises(data):
    assert is_stun(data) in (True, False)


@given(st.lists(st.binary(min_size=0, max_size=80), max_size=40))
def test_entropy_sweep_never_raises(payloads):
    reports = analyze_flow(payloads, widths=(1, 2), max_offset=16)
    assert isinstance(reports, list)


@given(st.lists(st.binary(min_size=0, max_size=80), max_size=30))
@settings(max_examples=25)
def test_offset_discovery_never_raises(payloads):
    discovery = discover_offsets(payloads, max_offset=24)
    assert discovery.rtp_offsets is not None


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.binary(min_size=0, max_size=200),
        ),
        max_size=30,
    )
)
@settings(max_examples=30)
def test_analyzer_swallows_arbitrary_frames(items):
    analyzer = ZoomAnalyzer()
    for timestamp, data in items:
        analyzer.feed(CapturedPacket(timestamp, data))
    assert analyzer.result.packets_total == len(items)


@given(st.binary(min_size=10, max_size=400), st.integers(min_value=1, max_value=0xFFFF))
@settings(max_examples=50)
def test_analyzer_swallows_garbage_on_media_port(payload, port):
    analyzer = ZoomAnalyzer()
    frame = build_udp_frame("10.8.1.2", port, "170.114.1.1", 8801, payload)
    analyzer.feed(CapturedPacket(1.0, frame))
    assert analyzer.result.packets_zoom == 1


class TestBitFlipInjection:
    def test_corrupted_meeting_capture_survives(self, sfu_meeting_result):
        """Flip random bits in 10% of a real capture's packets; the analyzer
        must complete and still find the meeting."""
        rng = random.Random(42)
        analyzer = ZoomAnalyzer()
        for captured in sfu_meeting_result.captures:
            data = captured.data
            if rng.random() < 0.10:
                buffer = bytearray(data)
                position = rng.randrange(len(buffer))
                buffer[position] ^= 1 << rng.randrange(8)
                data = bytes(buffer)
            analyzer.feed(CapturedPacket(captured.timestamp, data))
        result = analyzer.result
        assert result.packets_total == len(sfu_meeting_result.captures)
        assert result.meetings  # still groups the meeting

    def test_truncated_snaplen_capture_survives(self, sfu_meeting_result):
        """A 60-byte snaplen (headers only) capture parses without error."""
        analyzer = ZoomAnalyzer()
        for captured in sfu_meeting_result.captures[:2000]:
            analyzer.feed(CapturedPacket(captured.timestamp, captured.data[:60]))
        assert analyzer.result.packets_total == 2000

    def test_reordered_capture_survives(self, sfu_meeting_result):
        """Captures shuffled within 100-packet windows (broker reordering)."""
        rng = random.Random(7)
        packets = list(sfu_meeting_result.captures[:5000])
        for start in range(0, len(packets), 100):
            window = packets[start : start + 100]
            rng.shuffle(window)
            packets[start : start + 100] = window
        result = ZoomAnalyzer().analyze(packets)
        assert result.packets_zoom == len(packets)
        assert result.meetings
