"""Tests for the internet checksum (RFC 1071)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, pseudo_header_v4, pseudo_header_v6


def test_empty_input():
    assert internet_checksum(b"") == 0xFFFF


def test_all_zero_bytes():
    assert internet_checksum(b"\x00" * 8) == 0xFFFF


def test_rfc1071_example():
    # RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, cksum 220d.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_odd_length_pads_right():
    # 0xAB padded to 0xAB00.
    assert internet_checksum(b"\xab") == (~0xAB00) & 0xFFFF


def test_verification_property_fixed():
    """A datagram with the correct checksum inserted re-sums to zero."""
    data = bytearray(b"\x45\x00\x00\x1c" + b"\x00" * 16)
    checksum = internet_checksum(bytes(data))
    data[10:12] = checksum.to_bytes(2, "big")
    assert internet_checksum(bytes(data)) == 0


@given(st.binary(min_size=0, max_size=200))
def test_checksum_in_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=20, max_size=120).filter(lambda d: len(d) % 2 == 0))
def test_inserting_checksum_validates(data):
    """For even-length data with a zeroed checksum slot, inserting the
    computed checksum makes the total sum verify to zero."""
    buffer = bytearray(data)
    buffer[4:6] = b"\x00\x00"
    checksum = internet_checksum(bytes(buffer))
    buffer[4:6] = checksum.to_bytes(2, "big")
    assert internet_checksum(bytes(buffer)) == 0


def test_pseudo_header_v4_layout():
    pseudo = pseudo_header_v4(b"\x0a\x08\x00\x01", b"\xaa\x72\x00\x05", 17, 100)
    assert len(pseudo) == 12
    assert pseudo[8] == 0
    assert pseudo[9] == 17
    assert int.from_bytes(pseudo[10:12], "big") == 100


def test_pseudo_header_v6_layout():
    src = bytes(range(16))
    dst = bytes(range(16, 32))
    pseudo = pseudo_header_v6(src, dst, 17, 1500)
    assert len(pseudo) == 40
    assert int.from_bytes(pseudo[32:36], "big") == 1500
    assert pseudo[39] == 17


@pytest.mark.parametrize("value", [0, 1, 0xFFFF, 0x1234])
def test_carry_folding(value):
    """Sums that overflow 16 bits fold carries back in."""
    data = value.to_bytes(2, "big") * 40
    assert 0 <= internet_checksum(data) <= 0xFFFF
