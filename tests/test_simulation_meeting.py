"""Tests for the meeting orchestrator and ground-truth QoS feed."""

from collections import Counter

import pytest

from repro.net.packet import parse_frame
from repro.rtp.stun import is_stun
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.simulation.client import MAX_RTP_PAYLOAD, ZoomClientModel
from repro.simulation.media import AudioPacketSpec, Frame
from repro.zoom.constants import ZoomMediaType
from repro.zoom.packets import parse_zoom_payload


def _two_party(seed=1, **overrides):
    defaults = dict(
        meeting_id="m",
        participants=(
            ParticipantConfig(name="a", on_campus=True),
            ParticipantConfig(name="b", on_campus=True, join_time=0.5),
        ),
        duration=10.0,
        allow_p2p=False,
        seed=seed,
    )
    defaults.update(overrides)
    return MeetingConfig(**defaults)


class TestClientModel:
    def test_ssrc_scheme(self):
        """SSRCs are small, structured, reused across meetings (§4.3.1)."""
        client = ZoomClientModel(2)
        assert client.stream(ZoomMediaType.VIDEO).ssrc == (2 << 8) | 16
        assert client.stream(ZoomMediaType.AUDIO).ssrc == (2 << 8) | 15

    def test_frame_split_and_marker(self):
        client = ZoomClientModel(0, fec_ratio=0.0)
        frame = Frame(capture_time=1.0, size=MAX_RTP_PAYLOAD * 2 + 100, is_keyframe=False, rtp_timestamp=5000)
        packets = client.packetize_frame(ZoomMediaType.VIDEO, frame, frame_id=1)
        assert len(packets) == 3
        assert all(p.media.packets_in_frame == 3 for p in packets)
        assert [p.rtp.marker for p in packets] == [False, False, True]
        assert len({p.rtp.sequence for p in packets}) == 3
        assert len({p.rtp.timestamp for p in packets}) == 1

    def test_video_payload_has_fu_header(self):
        client = ZoomClientModel(0, fec_ratio=0.0)
        frame = Frame(capture_time=1.0, size=500, is_keyframe=False, rtp_timestamp=1)
        packet = client.packetize_frame(ZoomMediaType.VIDEO, frame, frame_id=1)[0]
        assert packet.rtp_payload[0] == 0x7C

    def test_fec_shares_timestamp_not_sequence_space(self):
        client = ZoomClientModel(0, fec_ratio=1.0)
        frame = Frame(capture_time=1.0, size=500, is_keyframe=False, rtp_timestamp=777)
        packets = client.packetize_frame(ZoomMediaType.VIDEO, frame, frame_id=1)
        fec = [p for p in packets if p.is_fec]
        main = [p for p in packets if not p.is_fec]
        assert fec and main
        assert fec[0].rtp.timestamp == main[0].rtp.timestamp
        assert fec[0].rtp.payload_type == 110

    def test_audio_packetization(self):
        client = ZoomClientModel(0, fec_ratio=0.0)
        spec = AudioPacketSpec(capture_time=1.0, payload_type=112, payload_len=100, rtp_timestamp=5)
        packets = client.packetize_audio(spec)
        assert len(packets) == 1
        assert packets[0].media.media_type == 15
        assert len(packets[0].rtp_payload) == 100

    def test_rtcp_reports_per_stream(self):
        client = ZoomClientModel(0, fec_ratio=0.0)
        frame = Frame(capture_time=1.0, size=300, is_keyframe=False, rtp_timestamp=10)
        client.packetize_frame(ZoomMediaType.VIDEO, frame, frame_id=1)
        spec = AudioPacketSpec(capture_time=1.0, payload_type=112, payload_len=80, rtp_timestamp=5)
        client.packetize_audio(spec)
        reports = client.rtcp_reports(now=1.0)
        assert len(reports) == 2
        media_types = {media.media_type for media, _reports in reports}
        assert media_types <= {33, 34}

    def test_rtcp_silent_before_any_media(self):
        """No SR for a stream that has not sent media yet (a static screen
        share) — sender reports describe sent media."""
        client = ZoomClientModel(0)
        client.stream(ZoomMediaType.SCREEN_SHARE)
        assert client.rtcp_reports(now=1.0) == []

    def test_frame_rejects_audio_type(self):
        client = ZoomClientModel(0)
        frame = Frame(capture_time=1.0, size=100, is_keyframe=False, rtp_timestamp=1)
        with pytest.raises(ValueError):
            client.packetize_frame(ZoomMediaType.AUDIO, frame, frame_id=1)


class TestMeetingRuntime:
    def test_captures_sorted(self, sfu_meeting_result):
        times = [c.timestamp for c in sfu_meeting_result.captures]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        first = MeetingSimulator(_two_party(seed=9)).run()
        second = MeetingSimulator(_two_party(seed=9)).run()
        assert len(first.captures) == len(second.captures)
        assert [c.data for c in first.captures[:100]] == [c.data for c in second.captures[:100]]

    def test_different_seed_differs(self):
        first = MeetingSimulator(_two_party(seed=1)).run()
        second = MeetingSimulator(_two_party(seed=2)).run()
        assert [c.data for c in first.captures[:50]] != [c.data for c in second.captures[:50]]

    def test_off_campus_sender_not_captured_directly(self):
        config = MeetingConfig(
            meeting_id="m",
            participants=(
                ParticipantConfig(name="on", on_campus=True),
                ParticipantConfig(name="off", on_campus=False, join_time=0.2),
            ),
            duration=8.0,
            allow_p2p=False,
            seed=4,
        )
        result = MeetingSimulator(config).run()
        for captured in result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            # Every captured packet touches the on-campus client or a server;
            # the off-campus client's address never appears as a source going
            # to the SFU (its uplink does not cross the border).
            if packet.is_udp and packet.dst_port == 8801:
                assert packet.src_ip.startswith("10.")

    def test_passive_participant_emits_nothing(self):
        config = MeetingConfig(
            meeting_id="m",
            participants=(
                ParticipantConfig(name="a", on_campus=True),
                ParticipantConfig(name="passive", on_campus=True, media=(), join_time=0.2),
            ),
            duration=6.0,
            allow_p2p=False,
            seed=5,
        )
        result = MeetingSimulator(config).run()
        passive_truths = [t for t in result.stream_truths if t.participant == "passive"]
        assert passive_truths == []
        # The passive participant still *receives* a's streams.
        sim_ips = set()
        for captured in result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if packet.is_udp and packet.src_port == 8801:
                sim_ips.add(packet.dst_ip)
        assert len(sim_ips) == 2

    def test_stream_truth_covers_all_media(self, sfu_meeting_result):
        by_participant = Counter(t.participant for t in sfu_meeting_result.stream_truths)
        assert by_participant == {"alice": 2, "bob": 2, "carol": 3}

    def test_retransmissions_visible_as_duplicates(self):
        """Loss after the monitor leads to duplicate sequence numbers at the
        monitor (§5.5)."""
        config = _two_party(seed=6)
        config = MeetingConfig(
            **{
                **config.__dict__,
                "participants": (
                    ParticipantConfig(name="a", on_campus=True, loss_rate=0.05),
                    ParticipantConfig(name="b", on_campus=True, join_time=0.5, loss_rate=0.05),
                ),
            }
        )
        result = MeetingSimulator(config).run()
        seen = Counter()
        duplicates = 0
        for captured in result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if not packet.is_udp or is_stun(packet.payload):
                continue
            zoom = parse_zoom_payload(packet.payload, from_server=True)
            if zoom.is_media:
                key = (packet.five_tuple, zoom.rtp.ssrc, zoom.rtp.payload_type, zoom.rtp.sequence)
                if key in seen:
                    duplicates += 1
                seen[key] += 1
        assert duplicates > 10

    def test_qos_feed_complete(self, sfu_meeting_result):
        qos = sfu_meeting_result.qos
        streams = qos.streams()
        assert len(streams) == 7
        alice_video = qos.for_stream(0x10)
        assert len(alice_video) >= 20
        assert all(s.sent_frames <= 35 for s in alice_video)

    def test_zoom_style_jitter_is_oversmoothed(self, sfu_meeting_result):
        """Reproduces the paper's Figure 10c observation: the Zoom-reported
        jitter stays tiny even when true frame-level jitter spikes."""
        samples = sfu_meeting_result.qos.for_stream(0x10)
        congested = [s for s in samples if 13 <= s.time <= 17]
        assert congested
        assert max(s.jitter_ms for s in congested) < 3.0
        assert max(s.true_jitter_ms for s in congested) > 1.5

    def test_latency_display_updates_every_5s(self, sfu_meeting_result):
        samples = sfu_meeting_result.qos.for_stream(0x110)
        displayed = [s.latency_ms for s in samples if s.latency_ms == s.latency_ms]
        # Values repeat across consecutive seconds because the display only
        # refreshes every 5 s.
        assert len(set(displayed)) < len(displayed) / 2


class TestP2PRuntime:
    def test_stun_precedes_p2p_flow(self, p2p_meeting_result):
        stun_times = []
        p2p_times = []
        for captured in p2p_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if not packet.is_udp:
                continue
            if is_stun(packet.payload):
                stun_times.append(captured.timestamp)
            elif 8801 not in (packet.src_port, packet.dst_port) and packet.dst_port != 3478:
                p2p_times.append(captured.timestamp)
        assert stun_times and p2p_times
        assert min(stun_times) < min(p2p_times)

    def test_p2p_flow_uses_stun_port(self, p2p_meeting_result):
        truth = p2p_meeting_result.p2p_flows[0]
        stun_ports = set()
        for captured in p2p_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if packet.is_udp and is_stun(packet.payload):
                if packet.dst_port == 3478:
                    stun_ports.add((packet.src_ip, packet.src_port))
        assert (truth.client_ip, truth.client_port) in stun_ports

    def test_p2p_single_flow_carries_all_media(self, p2p_meeting_result):
        media_types = set()
        flows = set()
        for captured in p2p_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if not packet.is_udp or is_stun(packet.payload):
                continue
            if 8801 in (packet.src_port, packet.dst_port):
                continue
            zoom = parse_zoom_payload(packet.payload, from_server=False)
            if zoom.is_media:
                media_types.add(zoom.media.media_type)
                flows.add(tuple(sorted([packet.src_port, packet.dst_port])))
        assert media_types >= {15, 16}
        assert len(flows) == 1

    def test_third_join_reverts_to_sfu(self):
        config = MeetingConfig(
            meeting_id="revert",
            participants=(
                ParticipantConfig(name="a", on_campus=True),
                ParticipantConfig(name="b", on_campus=False, join_time=0.5),
                ParticipantConfig(name="c", on_campus=True, join_time=10.0),
            ),
            duration=16.0,
            allow_p2p=True,
            p2p_switch_delay=3.0,
            seed=8,
        )
        simulator = MeetingSimulator(config)
        result = simulator.run()
        assert result.p2p_flows  # P2P happened...
        assert simulator.mode == "sfu"  # ...and reverted
        assert simulator.p2p_banned
        late_server_packets = [
            c for c in result.captures
            if c.timestamp > 12.0
            and (p := parse_frame(c.data, c.timestamp)).is_udp
            and 8801 in (p.src_port, p.dst_port)
        ]
        assert late_server_packets
