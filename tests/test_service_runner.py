"""End-to-end service tests: batch equivalence, backpressure, SIGTERM drain.

The headline acceptance test for the monitoring daemon: run the full
tailer → rolling analyzer → aggregator → exporter stack over a rotated
capture directory and check that the union of the emitted JSONL windows
reproduces what the batch analyzer says about the same packets.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core import AnalyzerConfig, ServiceConfig, ZoomAnalyzer
from repro.net.pcap import write_pcap
from repro.service.runner import ZoomMonitorService
from repro.service.windows import media_name


def _rotated_dir(tmp_path: Path, captures) -> Path:
    directory = tmp_path / "caps"
    directory.mkdir()
    third = len(captures) // 3
    write_pcap(directory / "zoom-00.pcap", captures[:third])
    write_pcap(directory / "zoom-01.pcap", captures[third : 2 * third])
    write_pcap(directory / "zoom-02.pcap", captures[2 * third :])
    return directory


def _service_config(tmp_path: Path, **overrides) -> ServiceConfig:
    defaults = dict(
        analyzer=AnalyzerConfig(
            rolling=True, rolling_idle_timeout=60.0, telemetry=True
        ),
        window_seconds=5.0,
        watermark_lateness=2.0,
        poll_interval=0.05,
        jsonl_path=str(tmp_path / "windows.jsonl"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestServiceEquivalence:
    @pytest.fixture(scope="class")
    def run_artifacts(self, sfu_meeting_result, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("service")
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        config = _service_config(tmp_path, listen="127.0.0.1:0")
        service = ZoomMonitorService(directory, config)
        report = service.run(stop_after_polls=2)
        windows = [
            json.loads(line)
            for line in (tmp_path / "windows.jsonl").read_text().splitlines()
        ]
        batch = ZoomAnalyzer(AnalyzerConfig(telemetry=True)).analyze(captures)
        return service, report, windows, batch

    def test_window_union_matches_batch_totals(self, run_artifacts, sfu_meeting_result):
        _, report, windows, batch = run_artifacts
        captures = sfu_meeting_result.captures
        assert report.packets_processed == len(captures)
        assert report.packets_dropped == 0
        assert sum(w["packets_total"] for w in windows) == batch.packets_total
        opened = sum(m["streams_opened"] for w in windows for m in w["media"])
        assert opened == len(batch.media_streams())
        assert report.streams_finalized == len(batch.media_streams())
        formed = sum(w["meetings_formed"] for w in windows)
        assert formed == batch.telemetry.counter("assemble.meetings_formed")
        assert report.meetings_formed == len(batch.meetings)

    def test_per_media_bitrate_matches_batch(self, run_artifacts):
        _, _, windows, batch = run_artifacts
        window_bytes: dict[str, int] = {}
        for window in windows:
            for media in window["media"]:
                window_bytes[media["media"]] = (
                    window_bytes.get(media["media"], 0) + media["bytes"]
                )
        batch_bytes: dict[str, int] = {}
        for stream in batch.media_streams():
            label = media_name(stream.media_type)
            batch_bytes[label] = batch_bytes.get(label, 0) + stream.bytes
        assert window_bytes == batch_bytes

    def test_windows_emitted_exactly_once(self, run_artifacts):
        _, report, windows, _ = run_artifacts
        indices = [w["window"] for w in windows]
        assert len(indices) == len(set(indices))
        assert indices == sorted(indices)
        assert report.windows_emitted == len(windows)

    def test_metrics_page_reflects_run(self, run_artifacts):
        service, report, windows, _ = run_artifacts
        body = service.render_metrics()
        assert f"repro_service_windows_total {len(windows)}" in body
        assert "repro_capture_frames_total" in body
        assert (
            f"repro_service_streams_finalized {report.streams_finalized}" in body
        )
        assert "repro_window_start_seconds" in body  # last window exported


class TestBackpressure:
    def test_full_queue_drops_and_counts(self, sfu_meeting_result, tmp_path):
        """With nothing draining a 1-deep queue, overload is shed and
        counted — never buffered without bound."""
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        config = _service_config(tmp_path, jsonl_path=None, queue_max_batches=1)
        service = ZoomMonitorService(directory, config)
        service._ingest_loop(1)  # no analysis thread: the queue stays full
        assert service.batches_dropped > 0
        assert service.packets_dropped > 0
        assert service.telemetry.counter("service.dropped") == service.packets_dropped
        assert (
            service.telemetry.counter("service.dropped_batches")
            == service.batches_dropped
        )
        assert service._queue.qsize() == 1  # bounded, despite the overload
        report = service.report()
        assert report.packets_dropped == service.packets_dropped

    def test_drained_queue_drops_nothing(self, sfu_meeting_result, tmp_path):
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        config = _service_config(tmp_path, jsonl_path=None)
        service = ZoomMonitorService(directory, config)
        report = service.run(stop_after_polls=1)
        assert report.packets_dropped == 0
        assert report.packets_processed == len(captures)


class TestIngestRestart:
    def test_poll_crash_is_counted_and_retried(self, sfu_meeting_result, tmp_path):
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        config = _service_config(
            tmp_path, jsonl_path=None, restart_backoff_base=0.01
        )
        service = ZoomMonitorService(directory, config)
        calls = {"n": 0}
        real_poll = service.tailer.poll

        def flaky_poll():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient capture-dir error")
            return real_poll()

        service.tailer.poll = flaky_poll
        report = service.run(stop_after_polls=1)
        assert report.ingest_restarts == 1
        assert service.telemetry.counter("service.ingest_restarts") == 1
        assert report.packets_processed == len(captures)  # recovered fully


@pytest.mark.slow
class TestSigtermShutdown:
    def test_sigterm_flushes_once_and_exits_zero(self, sfu_meeting_result, tmp_path):
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        jsonl_path = tmp_path / "windows.jsonl"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "analyze-live",
                str(directory),
                "--window",
                "5",
                "--lateness",
                "2",
                "--poll-interval",
                "0.2",
                "--listen",
                "127.0.0.1:0",
                "--jsonl-out",
                str(jsonl_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
        )
        try:
            url = None
            for _ in range(2):
                line = process.stdout.readline()
                if line.startswith("metrics: "):
                    url = line.split(" ", 1)[1].strip()
            assert url, "daemon never printed its metrics URL"
            base = url.rsplit("/", 1)[0]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:  # wait for the first full poll
                try:
                    if urllib.request.urlopen(f"{base}/readyz", timeout=2).status == 200:
                        break
                except OSError:
                    pass
                time.sleep(0.1)
            else:
                pytest.fail("daemon never became ready")
            metrics = urllib.request.urlopen(url, timeout=5).read().decode()
            assert "repro_capture_frames_total" in metrics
            health = urllib.request.urlopen(f"{base}/healthz", timeout=5)
            assert health.status == 200
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "processed" in stdout
        windows = [
            json.loads(line) for line in jsonl_path.read_text().splitlines()
        ]
        indices = [w["window"] for w in windows]
        assert len(indices) == len(set(indices))  # flushed exactly once
        batch = ZoomAnalyzer(AnalyzerConfig()).analyze(captures)
        assert sum(w["packets_total"] for w in windows) == batch.packets_total
        opened = sum(m["streams_opened"] for w in windows for m in w["media"])
        assert opened == len(batch.media_streams())
