"""Exporter tests: Prometheus rendering, JSONL rotation, the HTTP endpoints."""

import gzip
import json
import urllib.error
import urllib.request

import pytest

from repro.service.exporters import JsonlWindowLog, MetricsHTTPServer
from repro.service.prometheus import metric_name, render_metrics
from repro.service.windows import WindowRecord
from repro.telemetry.registry import Telemetry
from repro.zoom.constants import ZoomMediaType


def _window(index: int = 3) -> WindowRecord:
    window = WindowRecord(index=index, start=index * 10.0, end=(index + 1) * 10.0)
    window.packets_total = 500
    window.bytes_total = 123456
    window.zoom_packets = 480
    stats = window.media_stats(int(ZoomMediaType.VIDEO))
    stats.packets = 400
    stats.bytes = 100_000
    stats.mean_fps = 24.5
    audio = window.media_stats(int(ZoomMediaType.AUDIO))
    audio.packets = 80
    audio.bytes = 8_000
    # audio mean_fps stays NaN: audio has no frame rate
    return window


class TestPrometheusRendering:
    def test_metric_name_sanitizes_dots(self):
        assert metric_name("capture.frames", suffix="_total") == (
            "repro_capture_frames_total"
        )
        assert metric_name("service.queue-depth") == "repro_service_queue_depth"

    def test_counters_rendered_with_type_lines(self):
        telemetry = Telemetry()
        telemetry.count("capture.frames", 42)
        telemetry.count("service.windows", 7)
        body = render_metrics(telemetry.snapshot())
        assert "# TYPE repro_capture_frames_total counter" in body
        assert "repro_capture_frames_total 42" in body
        assert "repro_service_windows_total 7" in body
        assert body.endswith("\n")

    def test_gauges_and_window_samples(self):
        body = render_metrics(
            Telemetry().snapshot(),
            last_window=_window(),
            gauges={"service.queue_depth": 5.0},
        )
        assert "repro_service_queue_depth 5" in body
        assert "repro_window_packets 500" in body
        assert 'repro_window_media_packets{media="video"} 400' in body
        assert 'repro_window_media_fps{media="video"} 24.5' in body
        # NaN quality values are omitted, not rendered as NaN.
        assert 'repro_window_media_fps{media="audio"}' not in body
        assert "NaN" not in body

    def test_bitrate_uses_window_width(self):
        body = render_metrics(Telemetry().snapshot(), last_window=_window())
        assert 'repro_window_media_bitrate_bps{media="video"} 80000' in body


class TestJsonlWindowLog:
    def test_appends_one_line_per_window(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with JsonlWindowLog(path) as log:
            log.write(_window(0))
            log.write(_window(1))
        lines = path.read_text().splitlines()
        assert [json.loads(line)["window"] for line in lines] == [0, 1]

    def test_rotates_at_size_threshold(self, tmp_path):
        telemetry = Telemetry()
        path = tmp_path / "w.jsonl"
        line_len = len(json.dumps(_window(0).to_dict(), separators=(",", ":"))) + 1
        with JsonlWindowLog(
            path, max_bytes=line_len * 2 + 10, telemetry=telemetry
        ) as log:
            for index in range(5):
                log.write(_window(index))
            assert log.rotations >= 1
        # The rotated predecessor is gzip-compressed; the active file stays
        # plain text.  No half-written temp file may survive.
        rotated = path.with_name(path.name + ".1.gz")
        assert rotated.exists()
        assert not rotated.with_name(rotated.name + ".tmp").exists()
        rotated_lines = gzip.decompress(rotated.read_bytes()).decode().splitlines()
        assert all(json.loads(line)["packets_total"] == 500 for line in rotated_lines)
        total = len(path.read_text().splitlines()) + len(rotated_lines)
        # Rotation keeps only one predecessor; earlier lines may be gone,
        # but the current and previous files hold the newest windows.
        assert total >= 2
        assert telemetry.counter("service.jsonl_windows") == 5
        assert telemetry.counter("service.jsonl_rotations") == log.rotations

    def test_rotated_gzip_is_backfillable(self, tmp_path):
        """The backfill reader must accept both the live plain file and the
        gzip-rotated predecessor — the satellite contract of PR 5."""
        from repro.store.backfill import iter_jsonl_windows

        path = tmp_path / "w.jsonl"
        line_len = len(json.dumps(_window(0).to_dict(), separators=(",", ":"))) + 1
        with JsonlWindowLog(path, max_bytes=line_len + 10) as log:
            for index in range(3):
                log.write(_window(index))
        rotated = path.with_name(path.name + ".1.gz")
        from_gzip = list(iter_jsonl_windows(rotated))
        from_plain = list(iter_jsonl_windows(path))
        assert from_gzip and from_plain
        assert all(w["packets_total"] == 500 for w in from_gzip + from_plain)

    def test_reopens_append_across_instances(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with JsonlWindowLog(path) as log:
            log.write(_window(0))
        with JsonlWindowLog(path) as log:
            log.write(_window(1))
        assert len(path.read_text().splitlines()) == 2


class TestDegradationCountersExported:
    def test_dropped_and_restart_counters_always_present(self, tmp_path):
        """`service.dropped` and `service.ingest_restarts` must appear on
        the Prometheus page from the first scrape — a dashboard alerting on
        increase() needs the zero sample, not a series that materializes at
        the first incident."""
        from repro.core import AnalyzerConfig, ServiceConfig
        from repro.service.runner import ZoomMonitorService

        config = ServiceConfig(analyzer=AnalyzerConfig(telemetry=True))
        service = ZoomMonitorService(tmp_path, config)
        body = service.render_metrics()
        assert "repro_service_dropped_total 0" in body
        assert "repro_service_dropped_batches_total 0" in body
        assert "repro_service_ingest_restarts_total 0" in body


class TestMetricsHTTPServer:
    @pytest.fixture()
    def server(self):
        state = {"healthy": True, "ready": False}
        server = MetricsHTTPServer(
            "127.0.0.1:0",
            render_metrics=lambda: "repro_up 1\n",
            healthy=lambda: state["healthy"],
            ready=lambda: state["ready"],
        )
        server.start()
        yield server, state
        server.stop()

    def _get(self, server, path):
        host, port = server.address
        return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=5)

    def test_metrics_endpoint(self, server):
        server, _ = server
        response = self._get(server, "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in response.headers["Content-Type"]
        assert response.read().decode() == "repro_up 1\n"

    def test_health_and_readiness_probes(self, server):
        server, state = server
        assert self._get(server, "/healthz").status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/readyz")
        assert excinfo.value.code == 503
        state["ready"] = True
        assert self._get(server, "/readyz").status == 200
        state["healthy"] = False
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/healthz")
        assert excinfo.value.code == 503

    def test_unknown_path_404(self, server):
        server, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_rejects_bare_port(self):
        with pytest.raises(ValueError, match="host:port"):
            MetricsHTTPServer(":8000"[1:], render_metrics=lambda: "")
