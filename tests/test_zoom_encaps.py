"""Tests for Zoom's SFU and media encapsulation headers (Table 1, Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.zoom.constants import (
    MEDIA_ENCAP_LEN,
    RTP_OFFSET_P2P,
    RTP_OFFSET_SERVER,
    ZoomMediaType,
)
from repro.zoom.media_encap import MediaEncap
from repro.zoom.sfu_encap import Direction, SfuEncap


class TestSfuEncap:
    def test_length_is_eight(self):
        assert len(SfuEncap().serialize()) == 8

    def test_field_positions(self):
        """Table 1: type at byte 0, sequence at 1-2, direction at 7."""
        wire = SfuEncap(sfu_type=5, sequence=0x1234, direction=Direction.FROM_SFU).serialize()
        assert wire[0] == 5
        assert wire[1:3] == b"\x12\x34"
        assert wire[7] == 0x04

    def test_roundtrip(self):
        header = SfuEncap(sfu_type=5, sequence=999, direction=Direction.TO_SFU, opaque=b"\x01\x02\x03\x04")
        parsed, offset = SfuEncap.parse(header.serialize())
        assert parsed == header
        assert offset == 8

    def test_carries_media_only_for_type_5(self):
        assert SfuEncap(sfu_type=5).carries_media
        assert not SfuEncap(sfu_type=7).carries_media

    def test_direction_values(self):
        assert Direction.TO_SFU == 0x00
        assert Direction.FROM_SFU == 0x04

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            SfuEncap.parse(b"\x05" * 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            SfuEncap(sequence=1 << 16)
        with pytest.raises(ValueError):
            SfuEncap(opaque=b"\x00" * 3)

    @given(
        sfu_type=st.integers(min_value=0, max_value=255),
        sequence=st.integers(min_value=0, max_value=0xFFFF),
        direction=st.integers(min_value=0, max_value=255),
        opaque=st.binary(min_size=4, max_size=4),
    )
    def test_roundtrip_property(self, sfu_type, sequence, direction, opaque):
        header = SfuEncap(sfu_type=sfu_type, sequence=sequence, direction=direction, opaque=opaque)
        parsed, _ = SfuEncap.parse(header.serialize())
        assert parsed == header


class TestMediaEncap:
    def test_header_lengths_match_table2(self):
        """Header lengths derive from Table 2's RTP offsets minus the SFU
        layer: video 24, audio 19, screen share 27, RTCP 8."""
        assert MEDIA_ENCAP_LEN[ZoomMediaType.VIDEO] == 24
        assert MEDIA_ENCAP_LEN[ZoomMediaType.AUDIO] == 19
        assert MEDIA_ENCAP_LEN[ZoomMediaType.SCREEN_SHARE] == 27
        assert MEDIA_ENCAP_LEN[ZoomMediaType.RTCP_SR] == 8
        assert MEDIA_ENCAP_LEN[ZoomMediaType.RTCP_SR_SDES] == 8

    def test_table2_offsets(self):
        assert RTP_OFFSET_SERVER[ZoomMediaType.VIDEO] == 32
        assert RTP_OFFSET_SERVER[ZoomMediaType.AUDIO] == 27
        assert RTP_OFFSET_SERVER[ZoomMediaType.SCREEN_SHARE] == 35
        assert RTP_OFFSET_SERVER[ZoomMediaType.RTCP_SR] == 16
        assert RTP_OFFSET_P2P[ZoomMediaType.VIDEO] == 24

    def test_field_positions_video(self):
        """Table 1: seq at 9-10, timestamp at 11-14, frame seq at 21-22,
        packets-in-frame at 23."""
        header = MediaEncap(
            media_type=16, sequence=0x0102, timestamp=0x0A0B0C0D,
            frame_sequence=0x0E0F, packets_in_frame=7,
        )
        wire = header.serialize()
        assert len(wire) == 24
        assert wire[0] == 16
        assert wire[9:11] == b"\x01\x02"
        assert wire[11:15] == b"\x0a\x0b\x0c\x0d"
        assert wire[21:23] == b"\x0e\x0f"
        assert wire[23] == 7

    def test_audio_has_no_frame_fields(self):
        header = MediaEncap(media_type=15, sequence=5, timestamp=6)
        assert not header.has_frame_fields
        assert len(header.serialize()) == 19

    def test_rtcp_minimal(self):
        header = MediaEncap(media_type=33)
        assert header.is_rtcp and not header.is_rtp
        assert len(header.serialize()) == 8

    def test_roundtrip_all_types(self):
        for media_type in (13, 15, 16, 33, 34):
            header = MediaEncap(
                media_type=media_type,
                sequence=100 if media_type in (13, 15, 16) else 0,
                timestamp=200 if media_type in (13, 15, 16) else 0,
                frame_sequence=3 if media_type in (13, 16) else 0,
                packets_in_frame=2 if media_type in (13, 16) else 0,
            )
            parsed, offset = MediaEncap.parse(header.serialize())
            assert parsed == header, media_type
            assert offset == MEDIA_ENCAP_LEN[media_type]

    def test_wire_roundtrip_preserves_unknown_bytes(self):
        """serialize(parse(x)) == x even for arbitrary filler bytes."""
        for media_type in (13, 15, 16, 33, 34):
            length = MEDIA_ENCAP_LEN[media_type]
            wire = bytes([media_type]) + bytes(range(1, length))
            parsed, parsed_length = MediaEncap.parse(wire + b"trailing")
            assert parsed_length == length
            assert parsed.serialize() == wire

    def test_unknown_type_gets_default_length(self):
        parsed, offset = MediaEncap.parse(bytes([7]) + b"\x00" * 20)
        assert parsed.media_type == 7
        assert offset == 8
        assert not parsed.is_rtp and not parsed.is_rtcp

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            MediaEncap.parse(bytes([16]) + b"\x00" * 10)
        with pytest.raises(ValueError):
            MediaEncap.parse(b"")

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaEncap(media_type=16, packets_in_frame=256)
        with pytest.raises(ValueError):
            MediaEncap(media_type=16, frame_sequence=1 << 16)

    @given(
        media_type=st.sampled_from([13, 15, 16, 33, 34]),
        sequence=st.integers(min_value=0, max_value=0xFFFF),
        timestamp=st.integers(min_value=0, max_value=0xFFFFFFFF),
        frame_sequence=st.integers(min_value=0, max_value=0xFFFF),
        packets_in_frame=st.integers(min_value=0, max_value=255),
    )
    def test_roundtrip_property(
        self, media_type, sequence, timestamp, frame_sequence, packets_in_frame
    ):
        is_rtp = media_type in (13, 15, 16)
        has_frames = media_type in (13, 16)
        header = MediaEncap(
            media_type=media_type,
            sequence=sequence if is_rtp else 0,
            timestamp=timestamp if is_rtp else 0,
            frame_sequence=frame_sequence if has_frames else 0,
            packets_in_frame=packets_in_frame if has_frames else 0,
        )
        parsed, _ = MediaEncap.parse(header.serialize())
        assert parsed == header

    @given(data=st.binary(min_size=27, max_size=60))
    def test_wire_roundtrip_property(self, data):
        """For any buffer, serialize(parse(data)) reproduces the header
        bytes exactly (wire-level idempotence)."""
        parsed, length = MediaEncap.parse(data)
        assert parsed.serialize() == data[:length]
