"""Ground-truth QoE suite: injected impairments vs detected transitions.

Each scenario from :func:`repro.simulation.impairment_suite` carries the
interval where its impairment was injected and the state the machine is
expected to enter.  The suite asserts the closed loop: the state machine
transitions exactly when — and only when — the injected QoS degrades, and
it does so identically through all three consumption paths:

* **batch** — ``AnalysisSession`` over a pcap file (the vectorized
  ``feed_batch`` fast path via ``frame_batches()``);
* **rolling** — the same session with the rolling analyzer;
* **live** — the full ``ZoomMonitorService`` tailing a rotated capture
  directory.

"Exactly when" means: per injected interval, exactly one enter transition
(GOOD -> expected state) within ``detect_slack`` of the impairment start and
exactly one exit transition (back to GOOD) within ``clear_slack`` of its
end — no flaps, no staircases, no misses.
"""

from pathlib import Path

import pytest

from repro.core.config import AnalyzerConfig, QoeConfig, ServiceConfig
from repro.core.session import AnalysisSession
from repro.net.pcap import write_pcap
from repro.net.source import PcapFileSource
from repro.qoe import QoeState
from repro.service.runner import ZoomMonitorService
from repro.simulation import (
    ImpairmentScenario,
    MeetingSimulator,
    congestion_adaptation_scenario,
    impairment_suite,
)

_SUITE = impairment_suite()
_NAMES = [scenario.name for scenario in _SUITE]


@pytest.fixture(scope="module")
def scenario_captures():
    """name -> (scenario, captures), simulated once for the whole module."""
    result = {}
    for scenario in _SUITE:
        sim = MeetingSimulator(scenario.meeting).run()
        result[scenario.name] = (scenario, sim.captures)
    return result


def _assert_ground_truth(scenario: ImpairmentScenario, transitions) -> None:
    intervals = scenario.intervals
    assert len(transitions) == 2 * len(intervals), (
        f"{scenario.name}: expected exactly one enter/exit pair per injected "
        f"interval, got {[(t.time, t.previous.name, t.state.name) for t in transitions]}"
    )
    for i, interval in enumerate(intervals):
        enter, leave = transitions[2 * i], transitions[2 * i + 1]
        assert enter.previous is QoeState.GOOD
        assert enter.state.name == interval.expected_state, (
            f"{scenario.name}: entered {enter.state.name}, "
            f"expected {interval.expected_state}"
        )
        assert (
            interval.start
            <= enter.time
            <= interval.start + interval.detect_slack
        ), f"{scenario.name}: detected at {enter.time}, injected at {interval.start}"
        assert leave.previous is enter.state
        assert leave.state is QoeState.GOOD
        assert interval.end <= leave.time <= interval.end + interval.clear_slack, (
            f"{scenario.name}: cleared at {leave.time}, "
            f"impairment ended at {interval.end}"
        )


def _session_transitions(captures, tmp_path: Path, *, rolling: bool):
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "scenario.pcap"
    write_pcap(path, captures)
    config = AnalyzerConfig(telemetry=True, rolling=rolling, qoe=QoeConfig())
    session = AnalysisSession(config)
    session.run(PcapFileSource(str(path)))
    assert session.qoe is not None
    return [t for _, t in session.qoe.transitions]


def _service_transitions(captures, tmp_path: Path):
    directory = tmp_path / "caps"
    directory.mkdir()
    third = len(captures) // 3
    write_pcap(directory / "zoom-00.pcap", captures[:third])
    write_pcap(directory / "zoom-01.pcap", captures[third : 2 * third])
    write_pcap(directory / "zoom-02.pcap", captures[2 * third :])
    config = ServiceConfig(
        analyzer=AnalyzerConfig(
            rolling=True, rolling_idle_timeout=60.0, telemetry=True
        ),
        window_seconds=5.0,
        watermark_lateness=2.0,
        poll_interval=0.05,
    )
    service = ZoomMonitorService(directory, config)
    report = service.run(stop_after_polls=2)
    assert report.packets_dropped == 0
    assert service.qoe is not None
    return service, report


class TestBatchPath:
    @pytest.mark.parametrize("name", _NAMES)
    def test_scenario(self, name, scenario_captures, tmp_path):
        scenario, captures = scenario_captures[name]
        transitions = _session_transitions(captures, tmp_path, rolling=False)
        _assert_ground_truth(scenario, transitions)


class TestRollingPath:
    @pytest.mark.parametrize("name", _NAMES)
    def test_scenario(self, name, scenario_captures, tmp_path):
        scenario, captures = scenario_captures[name]
        transitions = _session_transitions(captures, tmp_path, rolling=True)
        _assert_ground_truth(scenario, transitions)

    @pytest.mark.parametrize("name", _NAMES)
    def test_rolling_matches_batch(self, name, scenario_captures, tmp_path):
        _, captures = scenario_captures[name]
        batch = _session_transitions(captures, tmp_path / "b", rolling=False)
        roll = _session_transitions(captures, tmp_path / "r", rolling=True)
        key = [(t.time, t.previous, t.state) for t in batch]
        assert [(t.time, t.previous, t.state) for t in roll] == key


class TestLivePath:
    @pytest.mark.parametrize("name", _NAMES)
    def test_scenario(self, name, scenario_captures, tmp_path):
        scenario, captures = scenario_captures[name]
        service, _ = _service_transitions(captures, tmp_path)
        _assert_ground_truth(scenario, [t for _, t in service.qoe.transitions])

    def test_alert_counters_and_report(self, scenario_captures, tmp_path):
        scenario, captures = scenario_captures["bandwidth-cliff"]
        service, report = _service_transitions(captures, tmp_path)
        snapshot = service.telemetry.snapshot()
        assert snapshot.counter("qoe.transitions") == 2
        assert snapshot.counter("qoe.transitions_to.impaired") == 1
        assert snapshot.counter("qoe.transitions_to.good") == 1
        assert snapshot.counter("qoe.alerts") == 1
        assert report.qoe_transitions == 2
        assert report.qoe_alerts == 1
        assert report.qoe_worst_state == "GOOD"  # recovered by end of run

    def test_prometheus_page_exposes_qoe_series(self, scenario_captures, tmp_path):
        _, captures = scenario_captures["loss-burst-degraded"]
        service, _ = _service_transitions(captures, tmp_path)
        page = service.render_metrics()
        assert "repro_qoe_transitions_total 2" in page
        assert "repro_qoe_meetings_good 1" in page
        # Pre-seeded: the alert counter is present even at zero.
        assert "repro_qoe_alerts_total 0" in page

    def test_no_qoe_config_disables_tracking(self, scenario_captures, tmp_path):
        _, captures = scenario_captures["loss-burst-degraded"]
        directory = tmp_path / "caps"
        directory.mkdir()
        write_pcap(directory / "zoom-00.pcap", captures)
        config = ServiceConfig(
            analyzer=AnalyzerConfig(
                rolling=True, rolling_idle_timeout=60.0, telemetry=True
            ),
            window_seconds=5.0,
            watermark_lateness=2.0,
            poll_interval=0.05,
            qoe=QoeConfig(enabled=False),
        )
        service = ZoomMonitorService(directory, config)
        report = service.run(stop_after_polls=2)
        assert service.qoe is None
        assert report.qoe_transitions == 0
        assert "repro_qoe_transitions_total" not in service.render_metrics()


class TestQuietScenarioStaysGood:
    def test_no_impairment_no_transitions(self, sfu_meeting_result, tmp_path):
        # The shared clean-ish fixture meeting (one mild 3% congestion blip,
        # below sustained-degradation territory for only 5s) must not alert.
        transitions = _session_transitions(
            sfu_meeting_result.captures, tmp_path, rolling=False
        )
        for t in transitions:
            assert t.state < QoeState.IMPAIRED


@pytest.mark.slow
class TestCongestionAdaptation:
    """The long rate-adaptation scenario: fps halves with zero loss/jitter
    signal, so detection must come from the delivered-frame-rate ratio."""

    def test_all_paths(self, tmp_path):
        scenario = congestion_adaptation_scenario()
        captures = MeetingSimulator(scenario.meeting).run().captures
        batch = _session_transitions(captures, tmp_path / "b", rolling=False)
        _assert_ground_truth(scenario, batch)
        roll = _session_transitions(captures, tmp_path / "r", rolling=True)
        _assert_ground_truth(scenario, roll)
        service, _ = _service_transitions(captures, tmp_path)
        _assert_ground_truth(scenario, [t for _, t in service.qoe.transitions])
