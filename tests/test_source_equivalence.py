"""Ingestion-path equivalence: every way into the analyzer, same metrics.

The refactor's core promise: analyzing a simulated meeting *directly*
(:class:`SimulationSource`, no pcap round trip) is byte-for-byte
metric-equivalent to writing the pcap and streaming it back, which in turn
matches handing the analyzer an in-memory packet list.  Equality is judged
on the same summary reduction the golden snapshot uses
(:func:`golden_utils.summarize_result`), so stream inventory, meeting
grouping, share tables, jitter/loss estimators, and shard-invariant
telemetry counters must all agree exactly.
"""

import pytest

from tests.golden_utils import golden_config, summarize_result
from repro.core import AnalysisSession, AnalyzerConfig, ZoomAnalyzer
from repro.net.pcap import write_pcap
from repro.net.source import IterableSource, PcapFileSource, SimulationSource
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


@pytest.fixture(scope="module")
def scenario():
    return MeetingConfig(
        meeting_id="equivalence",
        participants=(
            ParticipantConfig(name="alice", on_campus=True),
            ParticipantConfig(name="bob", join_time=0.7),
        ),
        duration=8.0,
        allow_p2p=False,
        seed=4242,
    )


@pytest.fixture(scope="module")
def sim_result(scenario):
    return MeetingSimulator(scenario).run()


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory, sim_result):
    path = tmp_path_factory.mktemp("equiv") / "meeting.pcap"
    write_pcap(path, sim_result.captures)
    return path


def _summary(source):
    session = AnalysisSession(AnalyzerConfig(telemetry=True))
    return summarize_result(session.run(source))


class TestIngestionEquivalence:
    def test_simulation_source_matches_pcap_roundtrip(self, scenario, pcap_path):
        """Direct simulation ingest == write-pcap-then-stream-back."""
        assert _summary(SimulationSource(scenario)) == _summary(
            PcapFileSource(pcap_path)
        )

    def test_in_memory_captures_match_pcap_roundtrip(self, sim_result, pcap_path):
        assert _summary(SimulationSource(sim_result.captures)) == _summary(
            PcapFileSource(pcap_path)
        )

    def test_path_string_matches_explicit_source(self, pcap_path):
        assert _summary(str(pcap_path)) == _summary(PcapFileSource(pcap_path))

    def test_session_matches_legacy_analyze(self, pcap_path):
        """The new front door reproduces the old read_pcap + feed() recipe,
        telemetry counters included."""
        import warnings

        from repro.net.pcap import read_pcap
        from repro.telemetry import Telemetry

        telemetry = Telemetry(enabled=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            packets = read_pcap(pcap_path, telemetry=telemetry)
        legacy = ZoomAnalyzer(AnalyzerConfig(telemetry=telemetry))
        legacy_summary = summarize_result(legacy.analyze(packets))
        assert _summary(PcapFileSource(pcap_path)) == legacy_summary

    def test_unquantized_iterable_differs_only_in_timestamps(self, sim_result):
        """Sanity check on the quantization argument: raw simulator
        timestamps pass through IterableSource unrounded."""
        raw = list(IterableSource(sim_result.captures))
        quantized = list(SimulationSource(sim_result.captures))
        assert len(raw) == len(quantized)
        assert all(
            abs(r.timestamp - q.timestamp) < 1e-8
            for r, q in zip(raw, quantized)
        )

    def test_golden_scenario_sim_vs_roundtrip(self, tmp_path):
        """The golden meeting itself, both ways — the strongest fixture we
        have (congestion, screen share, off-campus participant)."""
        config = golden_config()
        captures = MeetingSimulator(config).run().captures
        path = tmp_path / "golden.pcap"
        write_pcap(path, captures)
        assert _summary(SimulationSource(config)) == _summary(PcapFileSource(path))
