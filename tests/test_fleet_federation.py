"""Federated query plane: bit-identity, degradation, dedup, manifests."""

import json

import pytest

from repro.core import FleetConfig, FleetNodeConfig, StoreConfig
from repro.fleet import (
    FederatedQuery,
    federated_query,
    load_fleet_manifest,
    meeting_fingerprint,
    save_fleet_manifest,
)
from repro.service.exporters import MetricsHTTPServer
from repro.store import MetricsStore, StoreQuery


def _window(index: int, *, media=("video",), packets=100, fps=24.0) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": packets,
        "bytes_total": packets * 100,
        "zoom_packets": packets - 10,
        "meetings_formed": 0,
        "meetings_active": 1,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": name,
                "packets": packets // 2,
                "bytes": packets * 50,
                "bitrate_bps": packets * 40.0,
                "streams": 1,
                "streams_opened": 0,
                "p2p_packets": 0,
                "mean_fps": fps,
                "mean_jitter_ms": 2.0,
                "lost": 1,
                "duplicates": 0,
            }
            for name in media
        ],
    }


def _stream(start: float, *, ssrc=0x10, media: str = "video") -> dict:
    return {
        "kind": "stream",
        "start": start,
        "end": start + 30.0,
        "ssrc": ssrc,
        "media": media,
        "packets": 500,
        "bytes": 50_000,
    }


def _meeting(meeting_id: int, start: float, end: float, *, streams=4) -> dict:
    return {
        "kind": "meeting",
        "start": start,
        "end": end,
        "meeting_id": meeting_id,
        "streams": streams,
        "participants": 3,
    }


def _store(path, records) -> MetricsStore:
    store = MetricsStore(path, StoreConfig(partition_seconds=100.0))
    for record in records:
        store.append(record)
    store.close()
    return store


#: Three nodes' worth of records: interleaved windows, a stream, and a
#: meeting whose record and windows live on DIFFERENT nodes.
def _partitions():
    return [
        [_window(i, packets=100 + i) for i in range(0, 9, 3)]
        + [_meeting(1, 40.0, 70.0)],
        [_window(i, packets=100 + i) for i in range(1, 9, 3)]
        + [_stream(5.0)],
        [_window(i, packets=100 + i) for i in range(2, 9, 3)],
    ]


@pytest.fixture()
def fleet(tmp_path):
    parts = _partitions()
    nodes = []
    for i, records in enumerate(parts):
        _store(tmp_path / f"node-{i}", records)
        nodes.append(
            FleetNodeConfig(name=f"node-{i}", store_dir=str(tmp_path / f"node-{i}"))
        )
    return FleetConfig(nodes=tuple(nodes))


@pytest.fixture()
def union_store(tmp_path):
    return _store(tmp_path / "union", [r for part in _partitions() for r in part])


QUERIES = [
    StoreQuery(),
    StoreQuery(kinds=("window", "stream", "meeting")),
    StoreQuery(start=20.0, end=60.0),
    StoreQuery(reaggregate_seconds=30.0),
    StoreQuery(media="video", metrics=("packets_total", "mean_fps")),
    StoreQuery(meeting_id=1, kinds=("window",)),
    StoreQuery(meeting_id=1, kinds=("window", "stream", "meeting")),
    StoreQuery(use_index=False),
]


class TestBitIdentity:
    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_federated_equals_union_store(self, fleet, union_store, query):
        """The acceptance criterion: a federated query over partitioned
        stores is bit-identical to a single-store query over the union."""
        federated = federated_query(fleet, query)
        single = union_store.query(query)
        assert federated.records == single.records
        assert federated.nodes_missing == []

    def test_meeting_span_resolved_fleet_wide(self, fleet):
        """The meeting record lives on node-0; its windows are spread over
        all three nodes.  A meeting query must still find them."""
        result = federated_query(fleet, StoreQuery(meeting_id=1))
        # Span 40..70 touches windows 3..6 (the [start, end] overlap is
        # closed below, half-open above — same rule as a single store).
        assert [r["window"] for r in result.records] == [3, 4, 5, 6]

    def test_unknown_meeting_returns_empty(self, fleet):
        result = federated_query(fleet, StoreQuery(meeting_id=99))
        assert result.records == []
        assert result.nodes_missing == []


class TestDegradation:
    def _with_dead_node(self, fleet: FleetConfig) -> FleetConfig:
        dead = FleetNodeConfig(
            name="dead", endpoint="http://127.0.0.1:9"  # discard port
        )
        return fleet.replace(
            nodes=fleet.nodes + (dead,), query_timeout=1.0, query_retries=0
        )

    def test_partial_results_with_missing_annotation(self, fleet, union_store):
        config = self._with_dead_node(fleet)
        result = federated_query(config, StoreQuery())
        assert result.nodes_missing == ["dead"]
        assert "dead" in result.node_errors
        assert not result.complete
        # The reachable nodes' records still merge to the full answer.
        assert result.records == union_store.query(StoreQuery()).records

    def test_all_nodes_dead_is_still_a_result(self):
        config = FleetConfig(
            nodes=(
                FleetNodeConfig(name="a", endpoint="http://127.0.0.1:9"),
                FleetNodeConfig(name="b", endpoint="http://127.0.0.1:9"),
            ),
            query_timeout=1.0,
            query_retries=0,
        )
        result = federated_query(config, StoreQuery())
        assert result.records == []
        assert sorted(result.nodes_missing) == ["a", "b"]
        assert result.nodes_queried == []

    def test_missing_store_directory_marks_node_missing(self, tmp_path):
        good = _store(tmp_path / "good", [_window(0)])
        config = FleetConfig(
            nodes=(
                FleetNodeConfig(name="good", store_dir=str(tmp_path / "good")),
                FleetNodeConfig(name="gone", endpoint="http://127.0.0.1:9"),
            ),
            query_timeout=1.0,
            query_retries=0,
        )
        result = federated_query(config, StoreQuery())
        assert result.nodes_queried == ["good"]
        assert result.nodes_missing == ["gone"]
        assert len(result.records) == 1
        del good


class TestMeetingDedup:
    def _two_node_config(self, tmp_path, a_records, b_records) -> FleetConfig:
        _store(tmp_path / "a", a_records)
        _store(tmp_path / "b", b_records)
        return FleetConfig(
            nodes=(
                FleetNodeConfig(name="a", store_dir=str(tmp_path / "a")),
                FleetNodeConfig(name="b", store_dir=str(tmp_path / "b")),
            )
        )

    def test_cross_node_duplicate_collapses_with_sites(self, tmp_path):
        # Same meeting seen by two taps: ids differ (analyzer counters),
        # fingerprint agrees.
        config = self._two_node_config(
            tmp_path, [_meeting(0, 40.0, 70.0)], [_meeting(5, 40.0, 70.0)]
        )
        result = federated_query(config, StoreQuery(kinds=("meeting",)))
        assert result.count == 1
        assert result.meetings_deduped == 1
        assert result.records[0]["sites"] == ["a", "b"]

    def test_same_node_duplicates_survive(self, tmp_path):
        # One store returning two identical records must federate to two
        # identical records (the union store would hold both).
        config = self._two_node_config(
            tmp_path,
            [_meeting(0, 40.0, 70.0), _meeting(0, 40.0, 70.0)],
            [_window(0)],
        )
        result = federated_query(config, StoreQuery(kinds=("meeting",)))
        assert result.count == 2
        assert result.meetings_deduped == 0

    def test_different_meetings_do_not_dedup(self, tmp_path):
        config = self._two_node_config(
            tmp_path,
            [_meeting(0, 40.0, 70.0)],
            [_meeting(0, 40.0, 70.0, streams=9)],  # same span, more streams
        )
        result = federated_query(config, StoreQuery(kinds=("meeting",)))
        assert result.count == 2
        assert result.meetings_deduped == 0

    def test_fingerprint_ignores_meeting_id(self):
        assert meeting_fingerprint(_meeting(0, 1.0, 2.0)) == meeting_fingerprint(
            _meeting(42, 1.0, 2.0)
        )


class TestHttpNodes:
    @pytest.fixture()
    def served(self, tmp_path):
        store = _store(tmp_path / "served", [r for p in _partitions() for r in p])

        def handler(payload: dict) -> dict:
            result = store.query(StoreQuery.from_dict(payload))
            return {
                "records": result.records,
                "segments_scanned": result.segments_scanned,
                "segments_skipped": result.segments_skipped,
                "records_examined": result.records_examined,
            }

        server = MetricsHTTPServer(
            "127.0.0.1:0", render_metrics=lambda: "", store_query=handler
        )
        server.start()
        host, port = server.address
        yield store, f"http://{host}:{port}"
        server.stop()

    def test_endpoint_node_equals_local_query(self, served):
        store, endpoint = served
        config = FleetConfig(
            nodes=(FleetNodeConfig(name="remote", endpoint=endpoint),)
        )
        for query in (StoreQuery(), StoreQuery(meeting_id=1)):
            federated = federated_query(config, query)
            assert federated.records == store.query(query).records
            assert federated.nodes_queried == ["remote"]

    def test_mixed_local_and_endpoint_fleet(self, served, tmp_path):
        _, endpoint = served
        _store(tmp_path / "local", [_window(100)])
        config = FleetConfig(
            nodes=(
                FleetNodeConfig(name="remote", endpoint=endpoint),
                FleetNodeConfig(name="local", store_dir=str(tmp_path / "local")),
            )
        )
        result = federated_query(config, StoreQuery())
        assert sorted(result.nodes_queried) == ["local", "remote"]
        assert {r["window"] for r in result.records} >= {0, 100}


class TestInjectedStores:
    def test_local_stores_bypass_disk(self, tmp_path):
        store = _store(tmp_path / "real", [_window(3)])
        config = FleetConfig(
            nodes=(FleetNodeConfig(name="mem", store_dir="/nonexistent/unused"),)
        )
        result = federated_query(
            config, StoreQuery(), local_stores={"mem": store}
        )
        assert [r["window"] for r in result.records] == [3]


class TestStoreQueryTransport:
    def test_round_trip(self):
        query = StoreQuery(
            start=1.0,
            end=2.0,
            kinds=("window", "meeting"),
            meeting_id=7,
            media="video",
            metrics=("packets_total",),
            reaggregate_seconds=30.0,
            use_index=False,
            meeting_spans=((1.0, 2.0),),
        )
        assert StoreQuery.from_dict(query.to_dict()) == query

    def test_defaults_round_trip_minimal(self):
        payload = StoreQuery().to_dict()
        assert payload == {"kinds": ["window"]}
        assert StoreQuery.from_dict(payload) == StoreQuery()

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown StoreQuery fields"):
            StoreQuery.from_dict({"kinds": ["window"], "surprise": 1})

    def test_payload_is_json_serializable(self):
        query = StoreQuery(meeting_spans=((0.0, 1.5),), metrics=("a",))
        assert json.loads(json.dumps(query.to_dict())) == query.to_dict()


class TestFleetManifest:
    def test_round_trip_with_relative_paths(self, tmp_path):
        config = FleetConfig(
            nodes=(
                FleetNodeConfig(
                    name="tap",
                    store_dir=str(tmp_path / "tap"),
                    campus_subnets=("10.0.0.0/8",),
                ),
                FleetNodeConfig(name="live", endpoint="http://host:9310"),
            ),
            query_timeout=2.5,
        )
        path = save_fleet_manifest(config, tmp_path)
        payload = json.loads(path.read_text())
        # Stores under the manifest dir are written relative: relocatable.
        assert payload["nodes"][0]["store_dir"] == "tap"
        loaded = load_fleet_manifest(tmp_path)
        assert loaded.query_timeout == 2.5
        assert loaded.node("tap").store_dir == str(tmp_path / "tap")
        assert loaded.node("live").endpoint == "http://host:9310"
        assert loaded.node("tap").campus_subnets == ("10.0.0.0/8",)

    def test_unknown_keys_raise(self, tmp_path):
        (tmp_path / "fleet.json").write_text('{"nodes": [], "typo": 1}')
        with pytest.raises(ValueError, match="unknown fleet manifest keys"):
            load_fleet_manifest(tmp_path)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetConfig(
                nodes=(
                    FleetNodeConfig(name="a", store_dir="x"),
                    FleetNodeConfig(name="a", store_dir="y"),
                )
            )
