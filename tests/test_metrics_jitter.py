"""Tests for RFC 3550 frame-level jitter (§5.4, Figure 12)."""

import random

import pytest

from repro.core.metrics.jitter import FrameJitterEstimator, NaiveInterarrivalJitter
from repro.core.streams import RTPPacketRecord

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def packet(seq, rtp_ts, t, *, payload_type=98):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=FT,
        ssrc=0x110,
        payload_type=payload_type,
        sequence=seq,
        rtp_timestamp=rtp_ts,
        marker=False,
        media_type=16,
        payload_len=500,
        udp_payload_len=550,
        packets_in_frame=1,
        to_server=True,
    )


def test_perfect_delivery_zero_jitter():
    estimator = FrameJitterEstimator(90_000)
    for i in range(50):
        estimator.observe(packet(i, i * 3000, 1.0 + i / 30.0))
    assert estimator.jitter == pytest.approx(0.0, abs=1e-9)


def test_constant_delay_shift_zero_jitter():
    """A constant network delay contributes nothing to jitter."""
    estimator = FrameJitterEstimator(90_000)
    for i in range(50):
        estimator.observe(packet(i, i * 3000, 5.0 + i / 30.0))
    assert estimator.jitter == pytest.approx(0.0, abs=1e-9)


def test_delay_variation_creates_jitter():
    rng = random.Random(1)
    estimator = FrameJitterEstimator(90_000)
    for i in range(200):
        noise = rng.uniform(0, 0.010)
        estimator.observe(packet(i, i * 3000, 1.0 + i / 30.0 + noise))
    assert 0.001 < estimator.jitter < 0.010


def test_variable_packetization_corrected():
    """Zoom varies packetization intervals; jitter must correct for the
    media-time gap, not assume a constant frame spacing (§5.4)."""
    estimator = FrameJitterEstimator(90_000)
    rng = random.Random(2)
    t = 1.0
    ts = 0
    for _ in range(100):
        gap = rng.choice([1 / 30.0, 1 / 15.0, 1 / 10.0])  # encoder varies
        t += gap
        ts += int(gap * 90_000)
        estimator.observe(packet(ts // 1000, ts, t))
    # Despite wildly varying frame intervals, transit is constant -> ~0.
    assert estimator.jitter == pytest.approx(0.0, abs=1e-6)


def test_burst_packets_of_same_frame_ignored():
    """Only the first packet of each frame (timestamp) contributes."""
    estimator = FrameJitterEstimator(90_000)
    for i in range(20):
        base = 1.0 + i / 30.0
        estimator.observe(packet(i * 3, i * 3000, base))
        estimator.observe(packet(i * 3 + 1, i * 3000, base + 0.001))
        estimator.observe(packet(i * 3 + 2, i * 3000, base + 0.002))
    assert estimator.jitter == pytest.approx(0.0, abs=1e-9)


def test_fec_ignored():
    estimator = FrameJitterEstimator(90_000)
    estimator.observe(packet(0, 0, 1.0))
    assert estimator.observe(packet(500, 3000, 1.5, payload_type=110)) is None


def test_rtp_unit_conversion():
    estimator = FrameJitterEstimator(90_000)
    estimator.observe(packet(0, 0, 1.0))
    estimator.observe(packet(1, 3000, 1.05))  # 16.7ms late
    assert estimator.jitter_rtp_units == pytest.approx(estimator.jitter * 90_000)


def test_out_of_order_frame_not_sampled():
    estimator = FrameJitterEstimator(90_000)
    estimator.observe(packet(0, 6000, 1.0))
    assert estimator.observe(packet(1, 3000, 1.01)) is None


def test_smoothing_is_one_sixteenth():
    estimator = FrameJitterEstimator(90_000)
    estimator.observe(packet(0, 0, 1.0))
    sample = estimator.observe(packet(1, 3000, 1.0 + 1 / 30.0 + 0.016))
    assert sample.transit_difference == pytest.approx(0.016, abs=1e-9)
    assert sample.jitter == pytest.approx(0.001, abs=1e-6)  # 0.016/16


def test_naive_estimator_overreacts_to_bursts():
    """The ablation case: packet-level interarrival jitter sees frame bursts
    as massive jitter even on a perfect network (§5.4's argument)."""
    naive = NaiveInterarrivalJitter()
    framewise = FrameJitterEstimator(90_000)
    for i in range(50):
        base = 1.0 + i / 30.0
        for j in range(3):  # three back-to-back packets per frame
            p = packet(i * 3 + j, i * 3000, base + j * 0.0002)
            naive.observe(p)
            framewise.observe(p)
    assert framewise.jitter < 1e-6
    assert naive.jitter > 0.003  # orders of magnitude larger, spuriously


def test_sampling_rate_validation():
    with pytest.raises(ValueError):
        FrameJitterEstimator(0)
