"""Tests for the RTP header (RFC 3550)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.rtp import RTP_VERSION, RTPHeader, looks_like_rtp


def _header(**overrides) -> RTPHeader:
    defaults = dict(payload_type=98, sequence=1000, timestamp=90000, ssrc=0x10)
    defaults.update(overrides)
    return RTPHeader(**defaults)


def test_fixed_header_layout():
    wire = _header().serialize()
    assert len(wire) == 12
    assert wire[0] >> 6 == RTP_VERSION
    assert wire[1] & 0x7F == 98
    assert int.from_bytes(wire[2:4], "big") == 1000
    assert int.from_bytes(wire[4:8], "big") == 90000
    assert int.from_bytes(wire[8:12], "big") == 0x10


def test_roundtrip_minimal():
    header = _header()
    parsed, offset = RTPHeader.parse(header.serialize() + b"media")
    assert parsed == header
    assert offset == 12


def test_marker_bit():
    wire = _header(marker=True).serialize()
    assert wire[1] & 0x80
    parsed, _ = RTPHeader.parse(wire)
    assert parsed.marker


def test_extension_roundtrip():
    header = _header(extension_profile=0xBEDE, extension_data=b"\x10\x01\x02\x03")
    parsed, offset = RTPHeader.parse(header.serialize())
    assert parsed == header
    assert offset == 12 + 4 + 4
    assert header.header_len == offset


def test_csrc_roundtrip():
    header = _header(csrcs=(7, 8, 9))
    parsed, offset = RTPHeader.parse(header.serialize())
    assert parsed.csrcs == (7, 8, 9)
    assert offset == 12 + 12


def test_zoom_csrc_count_is_zero():
    """Zoom RTP always has CSRC count 0 (§4.2.3) — the default."""
    wire = _header().serialize()
    assert wire[0] & 0x0F == 0


def test_rejects_wrong_version():
    wire = bytearray(_header().serialize())
    wire[0] = 0x40  # version 1
    with pytest.raises(ValueError):
        RTPHeader.parse(bytes(wire))


def test_rejects_short_buffer():
    with pytest.raises(ValueError):
        RTPHeader.parse(b"\x80" * 11)


def test_rejects_truncated_extension():
    header = _header(extension_profile=0xBEDE, extension_data=b"\x00" * 8)
    wire = header.serialize()[:-4]
    with pytest.raises(ValueError):
        RTPHeader.parse(wire)


def test_field_range_validation():
    with pytest.raises(ValueError):
        _header(payload_type=128)
    with pytest.raises(ValueError):
        _header(sequence=1 << 16)
    with pytest.raises(ValueError):
        _header(timestamp=1 << 32)
    with pytest.raises(ValueError):
        _header(ssrc=1 << 32)
    with pytest.raises(ValueError):
        _header(extension_profile=0xBEDE, extension_data=b"\x00" * 3)


class TestLooksLikeRTP:
    def test_accepts_valid(self):
        assert looks_like_rtp(_header().serialize() + b"xx")

    def test_rejects_wrong_version(self):
        assert not looks_like_rtp(b"\x00" * 16)

    def test_rejects_rtcp_range_payload_types(self):
        """Payload types 72-76 collide with RTCP packet types 200-204."""
        for payload_type in range(72, 77):
            wire = bytearray(_header(payload_type=payload_type).serialize())
            assert not looks_like_rtp(bytes(wire))

    def test_rejects_short(self):
        assert not looks_like_rtp(b"\x80\x62")

    def test_rejects_extension_overflow(self):
        header = _header(extension_profile=0xBEDE, extension_data=b"\x00" * 4)
        assert not looks_like_rtp(header.serialize()[:-2])


@given(
    payload_type=st.integers(min_value=0, max_value=127),
    sequence=st.integers(min_value=0, max_value=0xFFFF),
    timestamp=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ssrc=st.integers(min_value=0, max_value=0xFFFFFFFF),
    marker=st.booleans(),
    padding=st.booleans(),
    extension_words=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
)
def test_roundtrip_property(
    payload_type, sequence, timestamp, ssrc, marker, padding, extension_words
):
    header = RTPHeader(
        payload_type=payload_type,
        sequence=sequence,
        timestamp=timestamp,
        ssrc=ssrc,
        marker=marker,
        padding=padding,
        extension_profile=0xBEDE if extension_words is not None else None,
        extension_data=b"\xab" * (4 * extension_words) if extension_words is not None else b"",
    )
    parsed, offset = RTPHeader.parse(header.serialize())
    assert parsed == header
    assert offset == header.header_len
