"""Tests for mid-meeting media toggles: flows disappear and reappear (§3).

Prior work confirmed Zoom's one-flow-per-media-type layout "by enabling and
disabling audio, video, and screen sharing during a meeting and observing
the respective flows appear or disappear in their network trace" — the
emulator reproduces exactly that observable, and the analyzer handles the
gaps without splitting streams.
"""

from collections import defaultdict

import pytest

from repro.core import ZoomAnalyzer
from repro.net.packet import parse_frame
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.zoom.constants import ZoomMediaType
from repro.zoom.packets import parse_zoom_payload


@pytest.fixture(scope="module")
def toggled_meeting():
    config = MeetingConfig(
        meeting_id="toggles",
        participants=(
            ParticipantConfig(
                name="toggler",
                on_campus=True,
                media=(ZoomMediaType.AUDIO, ZoomMediaType.VIDEO),
                media_schedule=(
                    (6.0, ZoomMediaType.VIDEO, False),   # camera off
                    (12.0, ZoomMediaType.VIDEO, True),   # camera back on
                    (15.0, ZoomMediaType.AUDIO, False),  # mute
                ),
            ),
            ParticipantConfig(name="peer", on_campus=True, join_time=0.5),
        ),
        duration=20.0,
        allow_p2p=False,
        seed=73,
    )
    return MeetingSimulator(config).run()


def _flow_activity(result, media_type):
    """Per-second packet counts on the toggler's egress flow of one type."""
    per_second = defaultdict(int)
    for captured in result.captures:
        packet = parse_frame(captured.data, captured.timestamp)
        if not packet.is_udp or packet.dst_port != 8801:
            continue
        if not packet.src_ip.endswith(".10"):  # the toggler (index 0)
            continue
        zoom = parse_zoom_payload(packet.payload, from_server=True)
        if zoom.is_media and zoom.media.media_type == int(media_type):
            per_second[int(captured.timestamp)] += 1
    return per_second


def test_video_flow_disappears_and_reappears(toggled_meeting):
    video = _flow_activity(toggled_meeting, ZoomMediaType.VIDEO)
    assert video[3] > 20            # active before the toggle
    assert video.get(8, 0) == 0     # silent while camera is off
    assert video.get(10, 0) == 0
    assert video[14] > 20           # active again after re-enable


def test_audio_flow_stops_at_mute(toggled_meeting):
    audio = _flow_activity(toggled_meeting, ZoomMediaType.AUDIO)
    assert audio[10] > 30
    assert audio.get(17, 0) == 0
    assert audio.get(19, 0) == 0


def test_other_media_unaffected(toggled_meeting):
    """Muting video must not interrupt the audio flow (separate flows)."""
    audio = _flow_activity(toggled_meeting, ZoomMediaType.AUDIO)
    for second in range(7, 12):  # while the camera is off
        assert audio[second] > 30


def test_analyzer_does_not_split_toggled_stream(toggled_meeting):
    """A 6-second gap on the same flow stays one stream and one unique id
    (same 5-tuple; step 1 never even runs), and the meeting stays whole."""
    analysis = ZoomAnalyzer().analyze(toggled_meeting.captures)
    truth = {t.ssrc for t in toggled_meeting.stream_truths}
    assert analysis.grouper.unique_stream_count() == len(truth)
    assert len(analysis.meetings) == 1


def test_frame_rate_zero_during_gap(toggled_meeting):
    """Method 1 correctly reports ~0 fps while the camera is off."""
    analysis = ZoomAnalyzer().analyze(toggled_meeting.captures)
    stream = next(
        s for s in analysis.media_streams() if s.ssrc == 0x10 and s.to_server is True
    )
    metrics = analysis.metrics_for(stream.key)
    # No frames complete while the camera is off...
    gap = [s for s in metrics.framerate_delivered.samples if 7.5 < s.time < 11.5]
    assert gap == []
    # ...and the rate recovers after the re-enable.
    active = [s.fps for s in metrics.framerate_delivered.samples if 13.5 < s.time < 15]
    assert active and max(active) > 20
