"""Tests for STUN binding messages (RFC 5389)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.stun import (
    STUN_BINDING_REQUEST,
    STUN_BINDING_RESPONSE,
    STUN_MAGIC_COOKIE,
    StunMessage,
    is_stun,
)

TXN = b"0123456789ab"


def test_binding_request_roundtrip():
    message = StunMessage.binding_request(TXN)
    parsed = StunMessage.parse(message.serialize())
    assert parsed == message
    assert parsed.is_request and not parsed.is_response


def test_binding_response_roundtrip():
    message = StunMessage.binding_response(TXN, "10.8.4.5", 53211)
    parsed = StunMessage.parse(message.serialize())
    assert parsed.is_response
    assert parsed.xor_mapped_address() == ("10.8.4.5", 53211)


def test_magic_cookie_on_wire():
    wire = StunMessage.binding_request(TXN).serialize()
    assert int.from_bytes(wire[4:8], "big") == STUN_MAGIC_COOKIE


def test_xor_mapped_address_is_xored():
    """The mapped address must not appear in cleartext on the wire."""
    message = StunMessage.binding_response(TXN, "192.0.2.1", 4242)
    wire = message.serialize()
    assert bytes([192, 0, 2, 1]) not in wire
    assert (4242).to_bytes(2, "big") not in wire[24:28]


def test_attribute_padding():
    message = StunMessage(STUN_BINDING_REQUEST, TXN, ((0x8022, b"zoom!"),))
    wire = message.serialize()
    assert len(wire) % 4 == 0
    parsed = StunMessage.parse(wire)
    assert parsed.attributes == ((0x8022, b"zoom!"),)


def test_xor_mapped_address_absent():
    assert StunMessage.binding_request(TXN).xor_mapped_address() is None


def test_transaction_id_validation():
    with pytest.raises(ValueError):
        StunMessage(STUN_BINDING_REQUEST, b"short")


def test_parse_rejects_bad_cookie():
    wire = bytearray(StunMessage.binding_request(TXN).serialize())
    wire[4] ^= 0xFF
    with pytest.raises(ValueError):
        StunMessage.parse(bytes(wire))


def test_parse_rejects_leading_bits():
    wire = bytearray(StunMessage.binding_request(TXN).serialize())
    wire[0] |= 0xC0
    with pytest.raises(ValueError):
        StunMessage.parse(bytes(wire))


def test_parse_rejects_truncated_attribute():
    message = StunMessage(STUN_BINDING_REQUEST, TXN, ((0x8022, b"abcd"),))
    wire = message.serialize()[:-2]
    with pytest.raises(ValueError):
        StunMessage.parse(wire)


class TestIsStun:
    def test_accepts_request_and_response(self):
        assert is_stun(StunMessage.binding_request(TXN).serialize())
        assert is_stun(StunMessage.binding_response(TXN, "1.2.3.4", 5).serialize())

    def test_rejects_rtp(self):
        from repro.rtp.rtp import RTPHeader

        rtp = RTPHeader(payload_type=98, sequence=1, timestamp=2, ssrc=3)
        assert not is_stun(rtp.serialize() + b"\x00" * 8)

    def test_rejects_short(self):
        assert not is_stun(b"\x00\x01\x00\x00")

    def test_rejects_zoom_media(self):
        from repro.zoom.media_encap import MediaEncap

        payload = MediaEncap(media_type=16).serialize() + b"\x00" * 20
        assert not is_stun(payload)


@given(
    message_type=st.sampled_from([STUN_BINDING_REQUEST, STUN_BINDING_RESPONSE]),
    transaction_id=st.binary(min_size=12, max_size=12),
    attributes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFF),
            st.binary(min_size=0, max_size=20),
        ),
        max_size=4,
    ),
)
def test_roundtrip_property(message_type, transaction_id, attributes):
    message = StunMessage(message_type, transaction_id, tuple(attributes))
    parsed = StunMessage.parse(message.serialize())
    assert parsed.message_type == message_type
    assert parsed.transaction_id == transaction_id
    assert parsed.attributes == tuple((t, bytes(v)) for t, v in attributes)
