"""Tests for the stream-to-meeting grouping heuristic (§4.3)."""

from repro.core.meetings import Meeting, MeetingGrouper, _rtp_distance
from repro.core.streams import RTPPacketRecord, StreamTable

SFU = "170.114.10.5"


def _record(src_ip, src_port, dst_ip, dst_port, *, ssrc, rtp_ts, t, to_server, media_type=16):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=(src_ip, src_port, dst_ip, dst_port, 17),
        ssrc=ssrc,
        payload_type=98,
        sequence=int(t * 100) & 0xFFFF,
        rtp_timestamp=rtp_ts,
        marker=False,
        media_type=media_type,
        payload_len=500,
        udp_payload_len=550,
        is_p2p=to_server is None,
        to_server=to_server,
    )


def _setup():
    return StreamTable(), MeetingGrouper()


def _feed(table, grouper, records):
    seen = set()
    for rec in sorted(records, key=lambda r: r.timestamp):
        stream = table.observe(rec)
        if rec.stream_key not in seen:
            seen.add(rec.stream_key)
            grouper.observe_new_stream(stream, table)
        else:
            grouper.observe_stream_update(stream)


class TestRtpDistance:
    def test_zero(self):
        assert _rtp_distance(100, 100) == 0

    def test_symmetric(self):
        assert _rtp_distance(100, 400) == _rtp_distance(400, 100) == 300

    def test_wraparound(self):
        assert _rtp_distance(5, (1 << 32) - 5) == 10


class TestStepOneDuplicates:
    def test_sfu_replica_gets_same_uid(self):
        """Egress copy and SFU-forwarded ingress copy share a unique id."""
        table, grouper = _setup()
        records = []
        for i in range(5):
            records.append(_record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110,
                                   rtp_ts=90000 + i * 3000, t=1.0 + i * 0.033, to_server=True))
            records.append(_record(SFU, 8801, "10.8.1.3", 50011, ssrc=0x110,
                                   rtp_ts=90000 + i * 3000, t=1.03 + i * 0.033, to_server=False))
        _feed(table, grouper, records)
        assert grouper.unique_stream_count() == 1
        assert len(grouper.meetings()) == 1

    def test_same_ssrc_distant_timestamp_not_merged(self):
        """SSRC reuse across meetings must not collapse them (§4.3.1 #2)."""
        table, grouper = _setup()
        records = [
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=100_000, t=1.0, to_server=True),
            _record("10.8.9.9", 50002, "170.114.20.7", 8801, ssrc=0x110,
                    rtp_ts=3_000_000_000, t=1.5, to_server=True),
        ]
        _feed(table, grouper, records)
        assert grouper.unique_stream_count() == 2
        assert len(grouper.meetings()) == 2

    def test_same_ssrc_stale_time_not_merged(self):
        table, grouper = _setup()
        records = [
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=100_000, t=1.0, to_server=True),
            _record("10.8.9.9", 50002, SFU, 8801, ssrc=0x110, rtp_ts=101_000, t=500.0, to_server=True),
        ]
        _feed(table, grouper, records)
        assert grouper.unique_stream_count() == 2

    def test_p2p_transition_keeps_uid(self):
        """An SFU→P2P switch changes the 5-tuple but not RTP state, so the
        new flow continues the same unique stream (§4.3.2 step 1)."""
        table, grouper = _setup()
        records = [
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=90_000, t=1.0, to_server=True),
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=180_000, t=2.0, to_server=True),
            # switch: new ports, direct peer, timestamps continue
            _record("10.8.1.2", 52001, "198.18.5.5", 52099, ssrc=0x110,
                    rtp_ts=270_000, t=3.0, to_server=None),
        ]
        _feed(table, grouper, records)
        assert grouper.unique_stream_count() == 1
        assert len(grouper.meetings()) == 1


class TestStepTwoAssignment:
    def test_streams_from_same_client_share_meeting(self):
        """Audio and video of one client (different SSRCs and ports... same
        IP) land in one meeting via the client-IP mapping."""
        table, grouper = _setup()
        records = [
            _record("10.8.1.2", 50000, SFU, 8801, ssrc=0x10F, rtp_ts=1000, t=1.0,
                    to_server=True, media_type=15),
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=5_000_000, t=1.1,
                    to_server=True, media_type=16),
        ]
        _feed(table, grouper, records)
        assert grouper.unique_stream_count() == 2
        assert len(grouper.meetings()) == 1

    def test_separate_meetings_stay_separate(self):
        table, grouper = _setup()
        records = [
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=1000, t=1.0, to_server=True),
            _record("10.8.7.7", 50001, "170.114.44.4", 8801, ssrc=0x210,
                    rtp_ts=900_000, t=1.2, to_server=True),
        ]
        _feed(table, grouper, records)
        assert len(grouper.meetings()) == 2

    def test_merge_via_shared_uid(self):
        """Two meetings created from different clients merge when a stream
        copy links them (the SFU forwards client A's stream to client B)."""
        table, grouper = _setup()
        records = [
            # B's own egress first: creates meeting 1.
            _record("10.8.1.3", 50002, SFU, 8801, ssrc=0x20F, rtp_ts=77_000, t=0.9,
                    to_server=True, media_type=15),
            # A's egress: creates meeting 2.
            _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=90_000, t=1.0, to_server=True),
            # SFU forwards A's stream to B: same uid as A's stream, client B
            # endpoint already known -> merge.
            _record(SFU, 8801, "10.8.1.3", 50012, ssrc=0x110, rtp_ts=90_500, t=1.05, to_server=False),
        ]
        _feed(table, grouper, records)
        assert len(grouper.meetings()) == 1
        assert grouper.merges == 1
        meeting = grouper.meetings()[0]
        assert meeting.client_ips == {"10.8.1.2", "10.8.1.3"}

    def test_meeting_of_lookup(self):
        table, grouper = _setup()
        rec = _record("10.8.1.2", 50001, SFU, 8801, ssrc=0x110, rtp_ts=1, t=1.0, to_server=True)
        _feed(table, grouper, [rec])
        assert grouper.meeting_of(rec.stream_key) is not None
        assert grouper.uid_of(rec.stream_key) == 0
        assert grouper.meeting_of((("9.9.9.9", 1, "8.8.8.8", 2, 17), 5)) is None


class TestParticipantEstimate:
    def test_campus_only(self):
        meeting = Meeting(meeting_id=0)
        meeting.client_ips = {"10.8.1.2", "10.8.1.3"}
        assert meeting.participant_estimate() == 2

    def test_inbound_only_counts_off_campus(self):
        meeting = Meeting(meeting_id=0)
        meeting.client_ips = {"10.8.1.2"}
        meeting.uid_media_types = {1: 16, 2: 15, 3: 16}
        meeting.uid_has_egress = {1: True, 2: False, 3: False}
        # Two inbound-only streams: one audio, one video -> at least one
        # off-campus sender (max per media type = 1).
        assert meeting.participant_estimate() == 2

    def test_two_off_campus_video_senders(self):
        meeting = Meeting(meeting_id=0)
        meeting.client_ips = {"10.8.1.2"}
        meeting.uid_media_types = {1: 16, 2: 16}
        meeting.uid_has_egress = {1: False, 2: False}
        assert meeting.participant_estimate() == 3


class TestOnSimulatedMeetings:
    def test_sfu_meeting_grouped_as_one(self, analyzed_sfu, sfu_meeting_result):
        meetings = analyzed_sfu.meetings
        assert len(meetings) == 1
        truth_ssrcs = {t.ssrc for t in sfu_meeting_result.stream_truths}
        assert len(meetings[0].stream_uids) == len(truth_ssrcs)

    def test_sfu_participant_estimate_matches_truth(self, analyzed_sfu, sfu_meeting_result):
        truth_participants = {t.participant for t in sfu_meeting_result.stream_truths}
        assert analyzed_sfu.meetings[0].participant_estimate() == len(truth_participants)

    def test_p2p_meeting_single_meeting_across_transition(self, analyzed_p2p):
        """The port change at the SFU→P2P switch must not split the meeting."""
        assert len(analyzed_p2p.meetings) == 1
