"""End-to-end integration: emulate → pcap on disk → re-read → analyze →
validate against ground truth.  This is the full paper workflow in one test
module."""

import pytest

from repro.core import ZoomAnalyzer
from repro.capture.p4_model import P4CaptureModel
from repro.net.pcap import read_pcap, write_pcap
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)
from repro.zoom.constants import ZoomMediaType


@pytest.fixture(scope="module")
def pcap_roundtrip(tmp_path_factory):
    config = MeetingConfig(
        meeting_id="integration",
        participants=(
            ParticipantConfig(
                name="alice",
                congestion=(CongestionEvent(start=8.0, end=12.0),),
            ),
            ParticipantConfig(name="bob", join_time=0.5),
        ),
        duration=16.0,
        allow_p2p=False,
        seed=99,
    )
    result = MeetingSimulator(config).run()
    path = tmp_path_factory.mktemp("traces") / "meeting.pcap"
    write_pcap(path, result.captures)
    return result, path


def test_pcap_preserves_everything(pcap_roundtrip):
    result, path = pcap_roundtrip
    restored = read_pcap(path)
    assert len(restored) == len(result.captures)
    assert all(a.data == b.data for a, b in zip(restored, result.captures))


def test_analysis_from_disk_matches_in_memory(pcap_roundtrip):
    result, path = pcap_roundtrip
    from_memory = ZoomAnalyzer().analyze(result.captures)
    from_disk = ZoomAnalyzer().analyze(read_pcap(path))
    assert from_disk.packets_zoom == from_memory.packets_zoom
    assert from_disk.grouper.unique_stream_count() == from_memory.grouper.unique_stream_count()
    assert len(from_disk.meetings) == len(from_memory.meetings)
    assert from_disk.rtcp_sender_reports == from_memory.rtcp_sender_reports


def test_capture_filter_then_analyze(pcap_roundtrip):
    """The deployment topology: switch filter first, analyzer second."""
    result, _path = pcap_roundtrip
    model = P4CaptureModel()
    filtered = list(model.process(result.captures))
    analysis = ZoomAnalyzer().analyze(filtered)
    assert analysis.packets_total == model.counters.passed
    assert len(analysis.meetings) == 1


def test_full_metric_sweep(pcap_roundtrip):
    """Every §5 metric produces sensible output on one pass."""
    result, _path = pcap_roundtrip
    analysis = ZoomAnalyzer().analyze(result.captures)
    video_streams = [
        s for s in analysis.media_streams() if s.media_type == int(ZoomMediaType.VIDEO)
    ]
    assert video_streams
    for stream in video_streams:
        metrics = analysis.metrics_for(stream.key)
        assert metrics.assembler.completed_count > 50
        assert metrics.framerate_delivered.samples
        assert metrics.framerate_encoder.samples
        mid_fps = metrics.framerate_encoder.samples[len(metrics.framerate_encoder.samples) // 4].fps
        assert 5 < mid_fps < 40
        assert metrics.framesize.summary()["median"] > 200
        assert metrics.jitter.samples
        assert 0 <= metrics.jitter.jitter < 0.2
        report = metrics.loss.report()
        assert report.received > 100
        delays = [s.delay for s in metrics.frame_delay.samples]
        assert all(d >= 0 for d in delays)
    assert analysis.rtp_latency.matched > 500
    mean_rtt = sum(s.rtt for s in analysis.rtp_latency.samples) / len(
        analysis.rtp_latency.samples
    )
    assert 0.02 < mean_rtt < 0.2


def test_validation_against_qos_feed(pcap_roundtrip):
    """The Figure 10 validation loop, automated: per-second analyzer
    estimates vs the SDK-style ground truth for alice's video stream."""
    result, _path = pcap_roundtrip
    analysis = ZoomAnalyzer().analyze(result.captures)
    ssrc = 0x10  # alice's video
    qos = result.qos
    ingress = next(
        s for s in analysis.media_streams() if s.ssrc == ssrc and s.to_server is False
    )
    metrics = analysis.metrics_for(ingress.key)
    matched_seconds = 0
    for second in range(3, 15):
        estimate = [x.fps for x in metrics.framerate_delivered.samples
                    if second <= x.time < second + 1]
        truth = [s.delivered_frames for s in qos.for_stream(ssrc)
                 if abs(s.time - (second + 1)) < 0.01]
        if estimate and truth:
            assert sum(estimate) / len(estimate) == pytest.approx(truth[0], abs=7.0)
            matched_seconds += 1
    assert matched_seconds >= 8
