#!/usr/bin/env python
"""Regenerate the golden end-to-end snapshots.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/regen_golden.py

then review the diffs of ``tests/golden/meeting_small.json`` (estimator
outputs on a healthy meeting), ``tests/golden/meeting_impaired.json``
(the QoE transition/alert sequence on the bandwidth-cliff scenario), and
``tests/golden/webrtc_small.json`` (the mixed zoom+rtp protocol-registry
trace) and commit them alongside the change that caused them.  All three
snapshots regenerate in one pass.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from tests.golden_utils import (  # noqa: E402  (path setup must come first)
    GOLDEN_PATH,
    IMPAIRED_GOLDEN_PATH,
    WEBRTC_GOLDEN_PATH,
    compute_golden_summary,
    compute_impaired_summary,
    compute_webrtc_summary,
    write_golden_snapshot,
    write_impaired_snapshot,
    write_webrtc_snapshot,
)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_dir:
        summary = compute_golden_summary(Path(tmp_dir))
    write_golden_snapshot(summary)
    print(f"wrote {GOLDEN_PATH.relative_to(REPO_ROOT)}")
    print(
        "  packets={total} zoom={zoom} streams={streams} meetings={meetings}".format(
            total=summary["packets"]["total"],
            zoom=summary["packets"]["zoom"],
            streams=len(summary["streams"]),
            meetings=len(summary["meetings"]),
        )
    )
    with tempfile.TemporaryDirectory() as tmp_dir:
        impaired = compute_impaired_summary(Path(tmp_dir))
    write_impaired_snapshot(impaired)
    print(f"wrote {IMPAIRED_GOLDEN_PATH.relative_to(REPO_ROOT)}")
    print(
        "  transitions={transitions} alerts={alerts}".format(
            transitions=len(impaired["transitions"]),
            alerts=impaired["qoe_counters"].get("alerts", 0),
        )
    )
    with tempfile.TemporaryDirectory() as tmp_dir:
        webrtc = compute_webrtc_summary(Path(tmp_dir))
    write_webrtc_snapshot(webrtc)
    print(f"wrote {WEBRTC_GOLDEN_PATH.relative_to(REPO_ROOT)}")
    print(
        "  packets={total} claimed={zoom} streams={streams} "
        "rtp_claimed={claimed} conflicts={conflicts}".format(
            total=webrtc["packets"]["total"],
            zoom=webrtc["packets"]["zoom"],
            streams=len(webrtc["streams"]),
            claimed=webrtc["protocol_counters"].get("claimed.rtp", 0),
            conflicts=webrtc["protocol_counters"].get("conflicts", 0),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
