#!/usr/bin/env python
"""Regenerate the golden end-to-end snapshot.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/regen_golden.py

then review the diff of ``tests/golden/meeting_small.json`` and commit it
alongside the change that caused it.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from tests.golden_utils import (  # noqa: E402  (path setup must come first)
    GOLDEN_PATH,
    compute_golden_summary,
    write_golden_snapshot,
)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_dir:
        summary = compute_golden_summary(Path(tmp_dir))
    write_golden_snapshot(summary)
    print(f"wrote {GOLDEN_PATH.relative_to(REPO_ROOT)}")
    print(
        "  packets={total} zoom={zoom} streams={streams} meetings={meetings}".format(
            total=summary["packets"]["total"],
            zoom=summary["packets"]["zoom"],
            streams=len(summary["streams"]),
            meetings=len(summary["meetings"]),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
