"""Tests for Zoom traffic detection and STUN-based P2P detection (§4.1)."""

import pytest

from repro.core.detector import (
    StunTracker,
    ZoomClass,
    ZoomSubnetMatcher,
    ZoomTrafficDetector,
)
from repro.net.packet import build_tcp_frame, build_udp_frame, parse_frame
from repro.rtp.stun import StunMessage

ZOOM = "170.114.10.5"
ZC = "170.114.200.9"
CLIENT = "10.8.1.20"
PEER = "198.18.2.30"


def _udp(src, sport, dst, dport, payload=b"x" * 30, ts=0.0):
    return parse_frame(build_udp_frame(src, sport, dst, dport, payload), ts)


def _stun_request(src, sport, dst=ZC, dport=3478, ts=0.0):
    payload = StunMessage.binding_request(b"abcdefghijkl").serialize()
    return parse_frame(build_udp_frame(src, sport, dst, dport, payload), ts)


class TestSubnetMatcher:
    def test_membership(self):
        matcher = ZoomSubnetMatcher(["170.114.0.0/16"])
        assert "170.114.1.1" in matcher
        assert "170.115.1.1" not in matcher

    def test_multiple_subnets(self):
        matcher = ZoomSubnetMatcher(["170.114.0.0/16", "203.0.113.0/24"])
        assert "203.0.113.200" in matcher
        assert "203.0.114.1" not in matcher

    def test_invalid_ip(self):
        matcher = ZoomSubnetMatcher(["170.114.0.0/16"])
        assert "not-an-ip" not in matcher
        assert not matcher.matches(None)

    def test_ipv6_subnet(self):
        matcher = ZoomSubnetMatcher(["2001:db8::/32"])
        assert "2001:db8::1" in matcher
        assert "2001:db9::1" not in matcher


class TestStunTracker:
    def test_learn_and_lookup(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn(CLIENT, 52001, now=5.0)
        assert tracker.lookup(CLIENT, 52001, now=7.0)
        assert not tracker.lookup(CLIENT, 52002, now=7.0)

    def test_timeout_expiry(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn(CLIENT, 52001, now=5.0)
        assert not tracker.lookup(CLIENT, 52001, now=16.0)

    def test_relearn_refreshes(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn(CLIENT, 52001, now=0.0)
        tracker.learn(CLIENT, 52001, now=9.0)
        assert tracker.lookup(CLIENT, 52001, now=15.0)

    def test_active_bindings(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn(CLIENT, 1, now=0.0)
        tracker.learn(CLIENT, 2, now=8.0)
        active = tracker.active_bindings(now=11.0)
        assert [(b.client_ip, b.client_port) for b in active] == [(CLIENT, 2)]


class TestDetector:
    def test_server_media_by_port(self):
        detector = ZoomTrafficDetector()
        assert detector.classify(_udp(CLIENT, 50000, ZOOM, 8801)) is ZoomClass.SERVER_MEDIA
        assert detector.classify(_udp(ZOOM, 8801, CLIENT, 50000)) is ZoomClass.SERVER_MEDIA

    def test_server_tls(self):
        detector = ZoomTrafficDetector()
        packet = parse_frame(build_tcp_frame(CLIENT, 40000, ZOOM, 443, seq=1))
        assert detector.classify(packet) is ZoomClass.SERVER_TLS

    def test_server_other_udp_port(self):
        detector = ZoomTrafficDetector()
        assert detector.classify(_udp(CLIENT, 1000, ZOOM, 9999)) is ZoomClass.SERVER_OTHER

    def test_non_zoom(self):
        detector = ZoomTrafficDetector()
        assert detector.classify(_udp(CLIENT, 1000, "8.8.8.8", 53)) is ZoomClass.NOT_ZOOM

    def test_stun_classified_and_learned(self):
        detector = ZoomTrafficDetector()
        assert detector.classify(_stun_request(CLIENT, 52001)) is ZoomClass.SERVER_STUN
        assert detector.stun.lookup(CLIENT, 52001, now=1.0)

    def test_stun_response_learns_client(self):
        detector = ZoomTrafficDetector()
        payload = StunMessage.binding_response(b"abcdefghijkl", CLIENT, 52001).serialize()
        packet = parse_frame(build_udp_frame(ZC, 3478, CLIENT, 52001, payload), 0.5)
        assert detector.classify(packet) is ZoomClass.SERVER_STUN
        assert detector.stun.lookup(CLIENT, 52001, now=1.0)

    def test_p2p_detection_after_stun(self):
        """The §4.1 sequence: STUN exchange, then a P2P flow from the same
        client port toward a non-Zoom peer."""
        detector = ZoomTrafficDetector()
        detector.classify(_stun_request(CLIENT, 52001, ts=0.0))
        p2p = _udp(CLIENT, 52001, PEER, 53333, ts=2.0)
        assert detector.classify(p2p) is ZoomClass.P2P_MEDIA
        reverse = _udp(PEER, 53333, CLIENT, 52001, ts=2.1)
        assert detector.classify(reverse) is ZoomClass.P2P_MEDIA

    def test_p2p_not_detected_without_stun(self):
        detector = ZoomTrafficDetector()
        assert detector.classify(_udp(CLIENT, 52001, PEER, 53333)) is ZoomClass.NOT_ZOOM

    def test_p2p_timeout(self):
        detector = ZoomTrafficDetector(stun_timeout=5.0)
        detector.classify(_stun_request(CLIENT, 52001, ts=0.0))
        late = _udp(CLIENT, 52001, PEER, 53333, ts=100.0)
        assert detector.classify(late) is ZoomClass.NOT_ZOOM

    def test_p2p_different_port_not_matched(self):
        detector = ZoomTrafficDetector()
        detector.classify(_stun_request(CLIENT, 52001))
        assert detector.classify(_udp(CLIENT, 52002, PEER, 53333)) is ZoomClass.NOT_ZOOM

    def test_campus_scoping(self):
        """With a campus list, only campus endpoints can be P2P clients."""
        detector = ZoomTrafficDetector(campus_subnets=["10.8.0.0/16"])
        detector.classify(_stun_request(PEER, 53333))  # off-campus STUN learner
        packet = _udp(PEER, 53333, "203.0.114.9", 1000, ts=1.0)
        assert detector.classify(packet) is ZoomClass.NOT_ZOOM

    def test_counters(self):
        detector = ZoomTrafficDetector()
        detector.classify(_udp(CLIENT, 50000, ZOOM, 8801))
        detector.classify(_udp(CLIENT, 1000, "8.8.8.8", 53))
        assert detector.counters.total() == 2
        assert detector.counters.zoom_total() == 1
        assert detector.counters.by_class[ZoomClass.SERVER_MEDIA] == 1

    def test_class_predicates(self):
        assert ZoomClass.SERVER_MEDIA.is_zoom and ZoomClass.SERVER_MEDIA.is_media
        assert ZoomClass.P2P_MEDIA.is_media
        assert ZoomClass.SERVER_TLS.is_zoom and not ZoomClass.SERVER_TLS.is_media
        assert not ZoomClass.NOT_ZOOM.is_zoom


class TestDetectorOnSimulatedTraffic:
    def test_all_meeting_packets_classified_zoom(self, sfu_meeting_result):
        detector = ZoomTrafficDetector()
        for captured in sfu_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            assert detector.classify(packet).is_zoom

    def test_p2p_meeting_flows_detected(self, p2p_meeting_result):
        """Every P2P media packet after the STUN exchange is classified."""
        detector = ZoomTrafficDetector()
        p2p_seen = 0
        for captured in p2p_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            klass = detector.classify(packet)
            assert klass.is_zoom, (packet.five_tuple, klass)
            if klass is ZoomClass.P2P_MEDIA:
                p2p_seen += 1
        assert p2p_seen > 100
        assert p2p_meeting_result.p2p_flows
