"""Tests for the ML feature-matrix export (§8)."""

import csv
import io
import math

from repro.analysis.export import (
    FEATURE_COLUMNS,
    feature_csv_string,
    feature_rows,
    write_feature_csv,
)


def test_rows_cover_streams_and_seconds(analyzed_sfu):
    rows = feature_rows(analyzed_sfu)
    assert rows
    stream_ids = {row["stream_id"] for row in rows}
    assert len(stream_ids) == len(analyzed_sfu.streams.streams())
    # Seconds are ordered per stream.
    for stream_id in stream_ids:
        seconds = [row["second"] for row in rows if row["stream_id"] == stream_id]
        assert seconds == sorted(seconds)


def test_video_rows_have_frame_features(analyzed_sfu):
    rows = [r for r in feature_rows(analyzed_sfu) if r["media_type"] == 16]
    assert rows
    with_frames = [r for r in rows if r["frames_completed"] > 0]
    assert len(with_frames) > len(rows) // 2
    for row in with_frames[:20]:
        assert row["mean_frame_bytes"] > 0
        assert 0 < row["delivered_fps"] < 60
        assert row["media_kbits"] > 0


def test_media_rate_below_flow_rate(analyzed_sfu):
    rows = feature_rows(analyzed_sfu)
    checked = 0
    for row in rows:
        if row["flow_kbits"] > 0 and row["media_kbits"] > 0:
            # Flow bins aggregate all streams of the flow, so flow >= media.
            assert row["flow_kbits"] >= row["media_kbits"] * 0.99
            checked += 1
    assert checked > 50


def test_rtt_column_populated_for_forwarded_streams(analyzed_sfu):
    rows = feature_rows(analyzed_sfu)
    with_rtt = [r for r in rows if r["rtt_ms"] == r["rtt_ms"]]
    assert with_rtt
    for row in with_rtt[:20]:
        assert 1.0 < row["rtt_ms"] < 500.0


def test_csv_round_trips(analyzed_sfu):
    text = feature_csv_string(analyzed_sfu)
    reader = csv.DictReader(io.StringIO(text))
    assert reader.fieldnames == list(FEATURE_COLUMNS)
    parsed = list(reader)
    assert len(parsed) == len(feature_rows(analyzed_sfu))
    # NaNs become empty cells.
    sample_row = parsed[0]
    for column in FEATURE_COLUMNS:
        assert column in sample_row


def test_write_to_path(analyzed_sfu, tmp_path):
    path = tmp_path / "features.csv"
    count = write_feature_csv(analyzed_sfu, path)
    assert count > 0
    content = path.read_text()
    assert content.startswith("stream_id,")
    assert content.count("\n") == count + 1


def test_empty_analysis_exports_header_only():
    from repro.core.pipeline import AnalysisResult

    text = feature_csv_string(AnalysisResult())
    assert text.strip() == ",".join(FEATURE_COLUMNS)


def test_congestion_visible_in_features(analyzed_sfu):
    """The fixture's congestion window (12-17 s) shows up as elevated jitter
    in alice's video feature rows — the label-ready signal the paper's §8
    envisions feeding a QoE model."""
    rows = [
        r
        for r in feature_rows(analyzed_sfu)
        if r["ssrc"] == 0x10 and r["jitter_ms"] == r["jitter_ms"]
    ]
    clean = [r["jitter_ms"] for r in rows if 4 <= r["second"] <= 10]
    congested = [r["jitter_ms"] for r in rows if 13 <= r["second"] <= 16]
    assert clean and congested
    assert max(congested) > 1.5 * (sum(clean) / len(clean))
