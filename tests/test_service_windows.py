"""Window aggregator tests: watermark lifecycle and batch equivalence."""

import json
import math

import pytest

from repro.core import AnalyzerConfig, ZoomAnalyzer
from repro.core.rolling import RollingZoomAnalyzer
from repro.service.windows import WindowAggregator, media_name
from repro.telemetry.registry import Telemetry
from repro.zoom.constants import ZoomMediaType


def _aggregator(**kwargs):
    """Aggregator over a fresh rolling analyzer, plus its closed-window list."""
    rolling = RollingZoomAnalyzer(AnalyzerConfig(rolling=True))
    closed = []
    aggregator = WindowAggregator(rolling, on_window=(closed.append,), **kwargs)
    return aggregator, closed


class TestWindowLifecycle:
    def test_tumbling_boundaries_close_in_order(self):
        aggregator, closed = _aggregator(window_seconds=10.0, lateness=0.0)
        for timestamp in (1.0, 11.0, 21.0):
            aggregator.observe_packet(timestamp, 100)
        assert [w.index for w in closed] == [0, 1]
        assert all(w.packets_total == 1 for w in closed)
        assert closed[0].start == 0.0 and closed[0].end == 10.0
        assert aggregator.open_window_count() == 1  # window 2 still open

    def test_lateness_holds_window_open(self):
        aggregator, closed = _aggregator(window_seconds=10.0, lateness=5.0)
        aggregator.observe_packet(2.0, 100)
        aggregator.observe_packet(12.0, 100)  # watermark 7 < 10: hold
        assert closed == []
        assert aggregator.open_window_count() == 2
        aggregator.observe_packet(16.0, 100)  # watermark 11 >= 10: close
        assert [w.index for w in closed] == [0]
        assert closed[0].packets_total == 1

    def test_late_event_dropped_and_counted(self):
        telemetry = Telemetry()
        rolling = RollingZoomAnalyzer(AnalyzerConfig(rolling=True))
        closed = []
        aggregator = WindowAggregator(
            rolling,
            window_seconds=10.0,
            lateness=5.0,
            on_window=(closed.append,),
            telemetry=telemetry,
        )
        aggregator.observe_packet(1.0, 100)
        aggregator.observe_packet(16.0, 100)  # closes window 0
        assert [w.index for w in closed] == [0]
        aggregator.observe_packet(2.0, 100)  # belongs to the closed window
        assert aggregator.late_events == 1
        assert telemetry.counter("service.late_events") == 1
        assert closed[0].packets_total == 1  # the record did not mutate

    def test_exact_boundary_event_is_not_late(self):
        aggregator, closed = _aggregator(window_seconds=10.0, lateness=0.0)
        aggregator.observe_packet(5.0, 100)
        aggregator.observe_packet(10.0, 100)  # watermark hits 10 exactly
        assert aggregator.late_events == 0
        assert [w.index for w in closed] == [0]
        final = aggregator.flush(final=True)
        assert [w.index for w in final] == [1]
        assert final[0].packets_total == 1

    def test_open_window_cap_forces_oldest_closed(self):
        telemetry = Telemetry()
        rolling = RollingZoomAnalyzer(AnalyzerConfig(rolling=True))
        closed = []
        aggregator = WindowAggregator(
            rolling,
            window_seconds=10.0,
            lateness=1000.0,  # the watermark never closes anything
            max_open_windows=2,
            on_window=(closed.append,),
            telemetry=telemetry,
        )
        for timestamp in (5.0, 15.0, 25.0):
            aggregator.observe_packet(timestamp, 100)
        assert [w.index for w in closed] == [0]
        assert closed[0].forced is True
        assert telemetry.counter("service.windows_forced") == 1
        assert aggregator.open_window_count() == 2

    def test_final_flush_is_idempotent(self):
        aggregator, closed = _aggregator(window_seconds=10.0, lateness=5.0)
        aggregator.observe_packet(3.0, 100)
        aggregator.observe_packet(14.0, 100)
        first = aggregator.flush(final=True)
        assert [w.index for w in first] == [0, 1]
        assert aggregator.flush(final=True) == []
        assert aggregator.windows_emitted == 2
        assert len(closed) == 2

    def test_rejects_nonpositive_window(self):
        rolling = RollingZoomAnalyzer(AnalyzerConfig(rolling=True))
        with pytest.raises(ValueError, match="window_seconds"):
            WindowAggregator(rolling, window_seconds=0.0)


class TestBatchEquivalence:
    """Summed over all windows, counting metrics reproduce the batch run."""

    @pytest.fixture(scope="class")
    def windows_and_batch(self, sfu_meeting_result):
        captures = sfu_meeting_result.captures
        rolling = RollingZoomAnalyzer(
            AnalyzerConfig(rolling=True, rolling_idle_timeout=60.0, telemetry=True)
        )
        closed = []
        aggregator = WindowAggregator(
            rolling,
            window_seconds=5.0,
            lateness=2.0,
            on_window=(closed.append,),
            telemetry=rolling.result.telemetry,
        )
        for capture in captures:
            rolling.feed(capture)
            aggregator.observe_packet(capture.timestamp, len(capture.data))
        rolling.sweep(float("inf"))
        aggregator.flush(final=True)
        batch = ZoomAnalyzer(AnalyzerConfig(telemetry=True)).analyze(captures)
        return closed, batch, rolling

    def test_packet_and_byte_totals_match(self, windows_and_batch, sfu_meeting_result):
        windows, batch, _ = windows_and_batch
        captures = sfu_meeting_result.captures
        assert sum(w.packets_total for w in windows) == len(captures)
        assert sum(w.packets_total for w in windows) == batch.packets_total
        assert sum(w.bytes_total for w in windows) == sum(
            len(c.data) for c in captures
        )

    def test_stream_counts_match(self, windows_and_batch):
        windows, batch, rolling = windows_and_batch
        opened = sum(
            stats.streams_opened for w in windows for stats in w.media.values()
        )
        assert opened == len(batch.media_streams())
        assert sum(w.streams_evicted for w in windows) == rolling.streams_evicted
        assert rolling.streams_evicted == len(batch.media_streams())

    def test_per_media_bytes_match_exactly(self, windows_and_batch):
        windows, batch, _ = windows_and_batch
        window_bytes: dict[int, int] = {}
        for window in windows:
            for media_type, stats in window.media.items():
                window_bytes[media_type] = window_bytes.get(media_type, 0) + stats.bytes
        batch_bytes: dict[int, int] = {}
        for stream in batch.media_streams():
            batch_bytes[stream.media_type] = (
                batch_bytes.get(stream.media_type, 0) + stream.bytes
            )
        assert window_bytes == batch_bytes

    def test_meeting_formations_match_batch_counter(self, windows_and_batch):
        windows, batch, _ = windows_and_batch
        formed = sum(w.meetings_formed for w in windows)
        # The grouper can merge meetings after forming them, so the event
        # count is compared against the batch *event counter*, not the
        # post-merge meeting list.
        assert formed == batch.telemetry.counter("assemble.meetings_formed")
        assert formed >= len(batch.meetings)

    def test_quality_fill_present_for_active_media(self, windows_and_batch):
        windows, _, _ = windows_and_batch
        busy = [
            w for w in windows if int(ZoomMediaType.VIDEO) in w.media and w.zoom_packets
        ]
        assert busy
        middle = busy[len(busy) // 2]
        video = middle.media[int(ZoomMediaType.VIDEO)]
        assert video.bitrate_bps(middle.width) > 0
        assert not math.isnan(video.mean_fps)
        assert not math.isnan(video.mean_jitter_ms)
        assert middle.meetings_active == 1

    def test_records_serialize_to_json(self, windows_and_batch):
        windows, _, _ = windows_and_batch
        for window in windows:
            payload = json.loads(json.dumps(window.to_dict()))
            assert payload["window"] == window.index
            assert payload["end"] - payload["start"] == pytest.approx(5.0)
            for media in payload["media"]:
                assert media["media"] in {"audio", "video", "screen"}

    def test_media_name_labels(self):
        assert media_name(int(ZoomMediaType.AUDIO)) == "audio"
        assert media_name(int(ZoomMediaType.VIDEO)) == "video"
        assert media_name(int(ZoomMediaType.SCREEN_SHARE)) == "screen"
        assert media_name(42) == "type42"
