"""Tests for the emulator's building blocks: clock, paths, media sources."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.clock import EventScheduler
from repro.simulation.media import AudioSource, ScreenShareSource, VideoSource
from repro.simulation.netpath import CongestionEvent, NetworkPath


class TestScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, fired.append, "b")
        scheduler.schedule(1.0, fired.append, "a")
        scheduler.schedule(3.0, fired.append, "c")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for name in "abc":
            scheduler.schedule(1.0, fired.append, name)
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_boundary_inclusive(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, fired.append, 1)
        scheduler.schedule(2.0, fired.append, 2)
        scheduler.run_until(1.0)
        assert fired == [1]
        assert scheduler.now == 1.0
        assert len(scheduler) == 1

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                scheduler.schedule_in(1.0, chain, n + 1)

        scheduler.schedule(0.0, chain, 0)
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == 3.0

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler(start_time=10.0)
        with pytest.raises(ValueError):
            scheduler.schedule(5.0, lambda: None)

    def test_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 1


class TestNetworkPath:
    def test_delay_at_least_base(self):
        path = NetworkPath(base_delay=0.010, jitter_std=0.001, rng=random.Random(1))
        for i in range(100):
            delay = path.transit(i * 0.01)
            assert delay is not None and delay >= 0.010

    def test_fifo_no_reordering(self):
        """Exit times must be monotonic for packets sent in order."""
        path = NetworkPath(base_delay=0.01, jitter_std=0.005, rng=random.Random(2))
        last_exit = 0.0
        for i in range(500):
            now = i * 0.0001
            delay = path.transit(now)
            exit_time = now + delay
            assert exit_time > last_exit
            last_exit = exit_time

    def test_loss_rate_applied(self):
        path = NetworkPath(base_delay=0.01, loss_rate=0.5, rng=random.Random(3))
        losses = sum(1 for i in range(1000) if path.transit(i * 0.01) is None)
        assert 380 < losses < 620
        assert path.packets_lost == losses
        assert path.packets_sent == 1000

    def test_congestion_adds_delay(self):
        event = CongestionEvent(start=10.0, end=20.0, extra_delay=0.050, extra_jitter=0.0, extra_loss=0.0)
        path = NetworkPath(base_delay=0.010, jitter_std=0.0, congestion=[event], rng=random.Random(4))
        clean_delay, _j, _l = path.conditions(5.0)
        peak_delay, _j, _l = path.conditions(15.0)
        assert clean_delay == pytest.approx(0.010)
        assert peak_delay == pytest.approx(0.060)

    def test_congestion_ramp(self):
        event = CongestionEvent(start=0.0, end=10.0)
        assert event.intensity(-1.0) == 0.0
        assert event.intensity(5.0) == pytest.approx(1.0)
        assert event.intensity(2.5) == pytest.approx(0.5)
        assert event.intensity(11.0) == 0.0

    def test_is_congested(self):
        path = NetworkPath(congestion=[CongestionEvent(start=1.0, end=2.0)])
        assert path.is_congested(1.5)
        assert not path.is_congested(3.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            CongestionEvent(start=5.0, end=5.0)
        with pytest.raises(ValueError):
            CongestionEvent(start=0.0, end=1.0, extra_loss=1.5)

    def test_loss_capped_at_one(self):
        event = CongestionEvent(start=0.0, end=10.0, extra_loss=0.9)
        path = NetworkPath(loss_rate=0.5, congestion=[event])
        _d, _j, loss = path.conditions(5.0)
        assert loss == 1.0


class TestVideoSource:
    def test_frame_spacing_matches_fps(self):
        source = VideoSource(fps=30.0, rng=random.Random(1))
        intervals = []
        now = 0.0
        for _ in range(100):
            _frame, next_in = source.next_frame(now)
            intervals.append(next_in)
            now += next_in
        mean = sum(intervals) / len(intervals)
        assert mean == pytest.approx(1 / 30.0, rel=0.05)

    def test_rtp_timestamps_advance_at_sampling_rate(self):
        source = VideoSource(fps=30.0, sampling_rate=90_000, rng=random.Random(2))
        now = 0.0
        frames = []
        for _ in range(50):
            frame, next_in = source.next_frame(now)
            frames.append(frame)
            now += next_in
        increments = [
            (b.rtp_timestamp - a.rtp_timestamp) & 0xFFFFFFFF
            for a, b in zip(frames, frames[1:])
        ]
        mean_increment = sum(increments) / len(increments)
        assert mean_increment == pytest.approx(3000, rel=0.06)

    def test_keyframes_periodic_and_larger(self):
        source = VideoSource(fps=30.0, keyframe_interval=10, rng=random.Random(3))
        now = 0.0
        frames = []
        for _ in range(30):
            frame, next_in = source.next_frame(now)
            frames.append(frame)
            now += next_in
        keys = [f for f in frames if f.is_keyframe]
        deltas = [f for f in frames if not f.is_keyframe]
        assert len(keys) == 3
        assert min(f.size for f in keys) > max(f.size for f in deltas) * 0.8

    def test_set_rate(self):
        source = VideoSource(fps=28.0, rng=random.Random(4))
        source.set_rate(14.0)
        _frame, next_in = source.next_frame(0.0)
        assert next_in == pytest.approx(1 / 14.0, rel=0.05)
        with pytest.raises(ValueError):
            source.set_rate(0)

    def test_motion_scales_size(self):
        low = VideoSource(motion=0.1, rng=random.Random(5))
        high = VideoSource(motion=0.9, rng=random.Random(5))
        low_sizes = [low.next_frame(i / 28)[0].size for i in range(1, 50)]
        high_sizes = [high.next_frame(i / 28)[0].size for i in range(1, 50)]
        assert sum(high_sizes) > 1.3 * sum(low_sizes)


class TestScreenShareSource:
    def test_static_periods_produce_no_frames(self):
        source = ScreenShareSource(static_probability=1.0, rng=random.Random(1))
        frame, delay = source.next_frame(0.0)
        assert frame is None
        assert delay > 0

    def test_some_zero_frame_seconds(self):
        """§6.2: ~15% of screen-share seconds have zero frames."""
        source = ScreenShareSource(rng=random.Random(2))
        now = 0.0
        seconds_with_frames = set()
        while now < 120.0:
            frame, delay = source.next_frame(now)
            if frame is not None:
                seconds_with_frames.add(int(now))
            now += max(delay, 0.001)
        zero_fraction = 1.0 - len(seconds_with_frames) / 120.0
        assert 0.03 < zero_fraction < 0.6

    def test_long_tailed_sizes(self):
        source = ScreenShareSource(static_probability=0.0, rng=random.Random(3))
        sizes = []
        now = 0.0
        for _ in range(400):
            frame, delay = source.next_frame(now)
            now += max(delay, 0.001)
            if frame is not None:
                sizes.append(frame.size)
        sizes.sort()
        median = sizes[len(sizes) // 2]
        assert median < 1000          # over half small (Fig 15c)
        assert sizes[-1] > 4000       # long tail of slide changes


class TestAudioSource:
    def test_packet_every_20ms(self):
        source = AudioSource(rng=random.Random(1))
        _spec, delay = source.next_packet(0.0)
        assert delay == pytest.approx(0.020)

    def test_silent_packets_fixed_40_bytes(self):
        source = AudioSource(mean_talk=0.001, mean_silence=1000.0, rng=random.Random(2))
        now = 0.0
        silent_sizes = set()
        for _ in range(200):
            spec, delay = source.next_packet(now)
            now += delay
            if spec.payload_type == 99:
                silent_sizes.add(spec.payload_len)
        assert silent_sizes == {40}

    def test_talking_uses_pt112(self):
        source = AudioSource(mean_talk=1000.0, mean_silence=0.001, rng=random.Random(3))
        source.next_packet(0.0)  # settle state machine
        specs = [source.next_packet(0.02 * i)[0] for i in range(2, 100)]
        types = {spec.payload_type for spec in specs}
        assert 112 in types

    def test_mobile_mode_uses_pt113_exclusively(self):
        source = AudioSource(mobile_mode=True, rng=random.Random(4))
        specs = [source.next_packet(0.02 * i)[0] for i in range(100)]
        assert {spec.payload_type for spec in specs} == {113}

    def test_timestamps_advance_at_audio_clock(self):
        source = AudioSource(sampling_rate=48_000, rng=random.Random(5))
        first, _d = source.next_packet(0.0)
        second, _d = source.next_packet(0.02)
        assert (second.rtp_timestamp - first.rtp_timestamp) & 0xFFFFFFFF == 960


@given(st.integers(min_value=1, max_value=60))
def test_video_source_any_fps_valid(fps):
    source = VideoSource(fps=float(fps), rng=random.Random(fps))
    frame, next_in = source.next_frame(0.0)
    assert frame.size > 0
    assert 0 < next_in < 2.0 / fps
