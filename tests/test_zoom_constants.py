"""Definitional invariants among the Zoom protocol constants."""

from repro.zoom.constants import (
    CONTROL_MEDIA_TYPES,
    MEDIA_ENCAP_LEN,
    PAYLOAD_TYPES_BY_MEDIA,
    RTP_OFFSET_P2P,
    RTP_OFFSET_SERVER,
    SFU_ENCAP_LEN,
    RTPPayloadType,
    ZoomMediaType,
)


def test_server_offsets_are_p2p_plus_sfu_layer():
    """Figure 7: P2P traffic lacks exactly the 8-byte SFU layer."""
    for media_type, server_offset in RTP_OFFSET_SERVER.items():
        assert server_offset == RTP_OFFSET_P2P[media_type] + SFU_ENCAP_LEN


def test_offsets_cover_every_decodable_type():
    for media_type in ZoomMediaType:
        assert media_type in RTP_OFFSET_SERVER
        assert media_type in MEDIA_ENCAP_LEN


def test_media_encap_long_enough_for_declared_fields():
    """Types carrying seq/timestamp need ≥15 bytes; frame fields need ≥24."""
    for media_type in (ZoomMediaType.VIDEO, ZoomMediaType.AUDIO, ZoomMediaType.SCREEN_SHARE):
        assert MEDIA_ENCAP_LEN[media_type] >= 15
    for media_type in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE):
        assert MEDIA_ENCAP_LEN[media_type] >= 24


def test_control_types_disjoint_from_media_types():
    assert not set(CONTROL_MEDIA_TYPES) & {int(m) for m in ZoomMediaType}


def test_rtp_and_rtcp_predicates_partition():
    for media_type in ZoomMediaType:
        assert media_type.is_rtp != media_type.is_rtcp


def test_payload_type_map_matches_table3():
    assert RTPPayloadType.VIDEO_MAIN in PAYLOAD_TYPES_BY_MEDIA[ZoomMediaType.VIDEO]
    assert RTPPayloadType.FEC in PAYLOAD_TYPES_BY_MEDIA[ZoomMediaType.VIDEO]
    assert RTPPayloadType.AUDIO_SPEAKING in PAYLOAD_TYPES_BY_MEDIA[ZoomMediaType.AUDIO]
    assert RTPPayloadType.MULTIPLEX_99 in PAYLOAD_TYPES_BY_MEDIA[ZoomMediaType.AUDIO]
    # PT 99 is genuinely multiplexed: silent audio AND screen share (§4.2.3).
    assert RTPPayloadType.MULTIPLEX_99 in PAYLOAD_TYPES_BY_MEDIA[ZoomMediaType.SCREEN_SHARE]
    # All payload types are valid 7-bit RTP values.
    for payload_types in PAYLOAD_TYPES_BY_MEDIA.values():
        assert all(0 <= int(pt) <= 127 for pt in payload_types)


def test_payload_types_avoid_rtcp_collision_range():
    """PTs 72-76 collide with RTCP packet types; Zoom's never do."""
    for payload_types in PAYLOAD_TYPES_BY_MEDIA.values():
        assert all(not 72 <= int(pt) <= 76 for pt in payload_types)
