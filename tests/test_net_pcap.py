"""Tests for pcap reading and writing."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import CapturedPacket, build_udp_frame
from repro.net.pcap import (
    MAGIC_MICROS,
    MAGIC_NANOS,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def _sample_packets(n=3):
    return [
        CapturedPacket(1.0 + 0.123456 * i, build_udp_frame("1.2.3.4", i + 1, "5.6.7.8", 80, bytes([i])))
        for i in range(n)
    ]


def test_roundtrip_nanosecond_memory():
    buffer = io.BytesIO()
    packets = _sample_packets()
    PcapWriter(buffer).write_all(packets)
    buffer.seek(0)
    read_back = list(PcapReader(buffer))
    assert [p.data for p in read_back] == [p.data for p in packets]
    for original, restored in zip(packets, read_back):
        assert abs(original.timestamp - restored.timestamp) < 1e-8


def test_roundtrip_microsecond():
    buffer = io.BytesIO()
    PcapWriter(buffer, nanosecond=False).write_all(_sample_packets())
    buffer.seek(0)
    reader = PcapReader(buffer)
    assert not reader.header.nanosecond
    for original, restored in zip(_sample_packets(), reader):
        assert abs(original.timestamp - restored.timestamp) < 1e-5


def test_file_roundtrip(tmp_path):
    path = tmp_path / "trace.pcap"
    packets = _sample_packets(5)
    count = write_pcap(path, packets)
    assert count == 5
    restored = read_pcap(path)
    assert len(restored) == 5
    assert restored[2].data == packets[2].data
    assert abs(restored[4].timestamp - packets[4].timestamp) < 1e-8


def test_global_header_magic():
    buffer = io.BytesIO()
    PcapWriter(buffer, nanosecond=True)
    (magic,) = struct.unpack("<I", buffer.getvalue()[:4])
    assert magic == MAGIC_NANOS
    buffer2 = io.BytesIO()
    PcapWriter(buffer2, nanosecond=False)
    (magic2,) = struct.unpack("<I", buffer2.getvalue()[:4])
    assert magic2 == MAGIC_MICROS


def test_big_endian_read():
    """Reader handles the opposite byte order."""
    frame = b"\xde\xad\xbe\xef"
    header = struct.pack(">IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, 65535, 1)
    record = struct.pack(">IIII", 10, 500000, len(frame), len(frame)) + frame
    reader = PcapReader(io.BytesIO(header + record))
    assert not reader.header.little_endian
    packets = list(reader)
    assert packets == [CapturedPacket(10.5, frame)]


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"\x00" * 24))


def test_short_global_header_rejected():
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"\x00" * 10))


def test_truncated_record_header_rejected():
    buffer = io.BytesIO()
    PcapWriter(buffer).write(_sample_packets(1)[0])
    truncated = buffer.getvalue()[:-len(_sample_packets(1)[0].data) - 8]
    with pytest.raises(ValueError):
        list(PcapReader(io.BytesIO(truncated)))


def test_truncated_packet_data_rejected():
    buffer = io.BytesIO()
    PcapWriter(buffer).write(_sample_packets(1)[0])
    with pytest.raises(ValueError):
        list(PcapReader(io.BytesIO(buffer.getvalue()[:-2])))


def test_fractional_rounding_never_overflows_second():
    """Timestamps just below a second boundary must not emit frac >= 1e9."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write(CapturedPacket(1.9999999999, b"x"))
    buffer.seek(0)
    packets = list(PcapReader(buffer))
    assert abs(packets[0].timestamp - 2.0) < 1e-8


def test_packets_written_counter():
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write_all(_sample_packets(4))
    assert writer.packets_written == 4


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e7, allow_nan=False),
    st.binary(min_size=0, max_size=200),
), max_size=20))
def test_roundtrip_property(items):
    packets = [CapturedPacket(t, d) for t, d in items]
    buffer = io.BytesIO()
    PcapWriter(buffer).write_all(packets)
    buffer.seek(0)
    restored = list(PcapReader(buffer))
    assert [p.data for p in restored] == [p.data for p in packets]
    for original, new in zip(packets, restored):
        assert abs(original.timestamp - new.timestamp) < 1e-8
