"""Impairment-scenario construction: determinism, seeding, intervals.

Satellite of the QoE ground-truth suite: the scenarios are only usable as
ground truth if the same seed always produces the same packets, byte for
byte — otherwise a failure cannot be replayed.
"""

import dataclasses

import pytest

from repro.simulation import (
    CongestionEvent,
    ImpairmentInterval,
    MeetingSimulator,
    bandwidth_cliff_scenario,
    congestion_adaptation_scenario,
    impairment_suite,
    jitter_spike_scenario,
    loss_burst_scenario,
    loss_collapse_scenario,
)

_BUILDERS = [
    loss_burst_scenario,
    loss_collapse_scenario,
    jitter_spike_scenario,
    bandwidth_cliff_scenario,
    congestion_adaptation_scenario,
]


def _capture_bytes(meeting_config) -> list[tuple[float, bytes]]:
    result = MeetingSimulator(meeting_config).run()
    return [(p.timestamp, p.data) for p in result.captures]


class TestDeterminism:
    @pytest.mark.parametrize("builder", _BUILDERS, ids=lambda b: b.__name__)
    def test_scenario_config_is_deterministic(self, builder):
        first, second = builder(), builder()
        assert first.meeting == second.meeting
        assert first.intervals == second.intervals

    def test_same_seed_same_bytes(self):
        # Full byte-level reproducibility through the simulator, not just
        # equal configs: the ground-truth suite depends on replayability.
        scenario = loss_burst_scenario()
        assert _capture_bytes(scenario.meeting) == _capture_bytes(scenario.meeting)

    def test_different_seed_different_bytes(self):
        base = _capture_bytes(loss_burst_scenario().meeting)
        other = _capture_bytes(loss_burst_scenario(seed=99).meeting)
        assert base != other

    def test_suite_is_deterministic_and_distinct(self):
        first = impairment_suite()
        second = impairment_suite()
        assert [s.meeting for s in first] == [s.meeting for s in second]
        names = [s.name for s in first]
        assert len(names) == len(set(names))
        # The suite derives per-scenario seeds from its master seed, so the
        # instances differ from the builders' defaults.
        assert first[0].meeting.seed != loss_burst_scenario().meeting.seed

    def test_suite_master_seed_threads_through(self):
        assert [s.meeting for s in impairment_suite(seed=1)] != [
            s.meeting for s in impairment_suite(seed=2)
        ]


class TestScenarioShape:
    @pytest.mark.parametrize("builder", _BUILDERS, ids=lambda b: b.__name__)
    def test_intervals_inside_meeting(self, builder):
        scenario = builder()
        for interval in scenario.intervals:
            assert 0.0 <= interval.start < interval.end
            assert interval.end <= scenario.meeting.duration
            assert interval.expected_state in ("DEGRADED", "IMPAIRED", "CRITICAL")

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ImpairmentInterval(start=5.0, end=5.0, kind="loss", expected_state="DEGRADED")
        with pytest.raises(ValueError):
            ImpairmentInterval(start=0.0, end=1.0, kind="loss", expected_state="FINE")

    def test_suite_scenarios_are_separable(self):
        # Suite scenarios must be distinguishable when their captures are
        # merged into one trace: unique meeting identities all around.
        suite = impairment_suite()
        meeting_ids = [s.meeting.meeting_id for s in suite]
        assert len(meeting_ids) == len(set(meeting_ids))


class TestCongestionProfiles:
    def test_flat_profile_is_constant_inside_window(self):
        event = CongestionEvent(
            start=10.0, end=20.0, extra_loss=0.1, profile="flat"
        )
        assert event.intensity(10.0) == 1.0
        assert event.intensity(15.0) == 1.0
        assert event.intensity(20.0) == 1.0  # window edges are inclusive
        assert event.intensity(9.999) == 0.0
        assert event.intensity(20.001) == 0.0

    def test_triangular_profile_still_default(self):
        event = CongestionEvent(start=0.0, end=10.0, extra_loss=0.1)
        assert event.profile == "triangular"
        assert event.intensity(5.0) == pytest.approx(1.0)
        assert event.intensity(2.5) == pytest.approx(0.5)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            CongestionEvent(start=0.0, end=1.0, profile="sawtooth")

    def test_replace_shift_preserves_profile(self):
        event = CongestionEvent(
            start=3.0, end=6.0, extra_loss=0.2, profile="flat"
        )
        shifted = dataclasses.replace(event, start=13.0, end=16.0)
        assert shifted.profile == "flat"
        assert shifted.intensity(14.0) == 1.0
