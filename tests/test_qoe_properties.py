"""Property tests for the QoE state machine (Hypothesis).

Two invariants the ISSUE pins:

* **Zero flaps** — whatever the metric series does, two transitions are
  never closer than the configured dwell.  The hysteresis design makes this
  structural (every transition resets the dwell counter), and this suite
  stops a refactor from quietly trading it away.
* **Batch = scalar** — :meth:`observe_batch` over a series yields the exact
  transition sequence of the scalar loop, so the batch, rolling, and live
  paths cannot diverge at the machine layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QoeConfig
from repro.qoe import QoeSample, QoeState, QoeStateMachine

# Metric values deliberately span all severity bands, the exact thresholds
# themselves, NaN (signal absent), and absurd extremes.
_loss = st.one_of(
    st.floats(min_value=0.0, max_value=0.6),
    st.sampled_from([0.0, 0.02, 0.08, 0.20, 0.012, 0.048, 0.12, float("nan")]),
)
_jitter = st.one_of(
    st.floats(min_value=0.0, max_value=200.0),
    st.sampled_from([15.0, 35.0, 80.0, 9.0, 21.0, 48.0, float("nan")]),
)
_fps = st.one_of(
    st.floats(min_value=0.0, max_value=1.5),
    st.sampled_from([0.75, 0.45, 0.20, 1.0, float("nan")]),
)


@st.composite
def _samples(draw, max_windows: int = 60):
    count = draw(st.integers(min_value=0, max_value=max_windows))
    return [
        QoeSample(
            window_index=i,
            window_end=float(i + 1),
            packets=draw(st.integers(min_value=30, max_value=2000)),
            loss_fraction=draw(_loss),
            jitter_ms=draw(_jitter),
            fps_ratio=draw(_fps),
        )
        for i in range(count)
    ]


_configs = st.builds(
    QoeConfig,
    enter_windows=st.integers(min_value=1, max_value=4),
    exit_windows=st.integers(min_value=1, max_value=4),
    min_dwell_windows=st.integers(min_value=1, max_value=6),
    exit_fraction=st.floats(min_value=0.3, max_value=1.0),
)


@settings(max_examples=200, deadline=None)
@given(samples=_samples(), config=_configs)
def test_zero_flap_invariant(samples, config):
    """No two transitions closer than the dwell, for any input series."""
    machine = QoeStateMachine(config)
    transitions = machine.observe_batch(samples)
    observations = [t.observation for t in transitions]
    for earlier, later in zip(observations, observations[1:]):
        assert later - earlier >= config.min_dwell_windows


@settings(max_examples=200, deadline=None)
@given(samples=_samples(), config=_configs)
def test_transitions_always_change_state(samples, config):
    """Every emitted transition moves to a different state, and the chain
    of (previous -> state) hops is consistent from GOOD onward."""
    transitions = QoeStateMachine(config).observe_batch(samples)
    state = QoeState.GOOD
    for t in transitions:
        assert t.previous is state
        assert t.state is not t.previous
        state = t.state


@settings(max_examples=150, deadline=None)
@given(samples=_samples(), config=_configs)
def test_batch_equals_scalar(samples, config):
    """observe_batch and the scalar loop produce identical transitions and
    identical final machine state."""
    scalar_machine = QoeStateMachine(config)
    scalar = []
    for sample in samples:
        t = scalar_machine.observe(sample)
        if t is not None:
            scalar.append(t)
    batch_machine = QoeStateMachine(config)
    batch = batch_machine.observe_batch(samples)
    assert batch == scalar
    assert batch_machine.state is scalar_machine.state
    assert batch_machine.observations == scalar_machine.observations


@settings(max_examples=100, deadline=None)
@given(samples=_samples())
def test_clean_series_never_leaves_good(samples):
    """Series with every metric in the healthy band produce no transitions."""
    machine = QoeStateMachine()
    clean = [
        QoeSample(
            window_index=s.window_index,
            window_end=s.window_end,
            packets=s.packets,
            loss_fraction=0.0,
            jitter_ms=3.0,
            fps_ratio=1.0,
        )
        for s in samples
    ]
    assert machine.observe_batch(clean) == []
    assert machine.state is QoeState.GOOD
