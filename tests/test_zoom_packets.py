"""Tests for complete Zoom UDP payload composition and parsing."""

import pytest

from repro.rtp.rtcp import RTCPSdes, RTCPSenderReport
from repro.rtp.rtp import RTPHeader
from repro.zoom.constants import RTP_OFFSET_P2P, RTP_OFFSET_SERVER, ZoomMediaType
from repro.zoom.media_encap import MediaEncap
from repro.zoom.packets import (
    build_control_payload,
    build_media_payload,
    build_rtcp_payload,
    parse_zoom_payload,
)
from repro.zoom.sfu_encap import Direction, SfuEncap


def _rtp(**overrides) -> RTPHeader:
    defaults = dict(payload_type=98, sequence=42, timestamp=90000, ssrc=0x210)
    defaults.update(overrides)
    return RTPHeader(**defaults)


def _video_media(**overrides) -> MediaEncap:
    defaults = dict(media_type=16, sequence=7, timestamp=90000, frame_sequence=3, packets_in_frame=2)
    defaults.update(overrides)
    return MediaEncap(**defaults)


def _sr() -> RTCPSenderReport:
    return RTCPSenderReport(
        ssrc=0x210, ntp_seconds=1, ntp_fraction=2, rtp_timestamp=3,
        packet_count=4, octet_count=5,
    )


class TestServerPackets:
    def test_video_rtp_offset_matches_table2(self):
        payload = build_media_payload(
            media=_video_media(), rtp=_rtp(), rtp_payload=b"x" * 50, sfu=SfuEncap()
        )
        assert payload.index(_rtp().serialize()) == RTP_OFFSET_SERVER[ZoomMediaType.VIDEO]

    def test_audio_rtp_offset(self):
        media = MediaEncap(media_type=15, sequence=1, timestamp=2)
        rtp = _rtp(payload_type=112, ssrc=0x20F)
        payload = build_media_payload(media=media, rtp=rtp, rtp_payload=b"a" * 40, sfu=SfuEncap())
        assert payload.index(rtp.serialize()) == RTP_OFFSET_SERVER[ZoomMediaType.AUDIO]

    def test_screen_share_rtp_offset(self):
        media = MediaEncap(media_type=13, sequence=1, timestamp=2, frame_sequence=1, packets_in_frame=1)
        rtp = _rtp(payload_type=99, ssrc=0x20D)
        payload = build_media_payload(media=media, rtp=rtp, rtp_payload=b"s" * 40, sfu=SfuEncap())
        assert payload.index(rtp.serialize()) == RTP_OFFSET_SERVER[ZoomMediaType.SCREEN_SHARE]

    def test_rtcp_offset(self):
        payload = build_rtcp_payload(
            media=MediaEncap(media_type=33), reports=[_sr()], sfu=SfuEncap()
        )
        assert payload.index(_sr().serialize()) == RTP_OFFSET_SERVER[ZoomMediaType.RTCP_SR]

    def test_parse_video(self):
        payload = build_media_payload(
            media=_video_media(), rtp=_rtp(marker=True), rtp_payload=b"z" * 99, sfu=SfuEncap()
        )
        packet = parse_zoom_payload(payload, from_server=True)
        assert packet.is_media and not packet.is_p2p
        assert packet.rtp.marker
        assert packet.media.packets_in_frame == 2
        assert len(packet.rtp_payload) == 99

    def test_direction_preserved(self):
        payload = build_media_payload(
            media=_video_media(), rtp=_rtp(), rtp_payload=b"x",
            sfu=SfuEncap(direction=Direction.FROM_SFU),
        )
        packet = parse_zoom_payload(payload, from_server=True)
        assert packet.sfu.direction == Direction.FROM_SFU


class TestP2PPackets:
    def test_p2p_has_no_sfu_layer(self):
        payload = build_media_payload(media=_video_media(), rtp=_rtp(), rtp_payload=b"x" * 10)
        assert payload[0] == 16
        packet = parse_zoom_payload(payload, from_server=False)
        assert packet.is_p2p and packet.sfu is None and packet.is_media

    def test_p2p_rtp_offset(self):
        payload = build_media_payload(media=_video_media(), rtp=_rtp(), rtp_payload=b"x" * 10)
        assert payload.index(_rtp().serialize()) == RTP_OFFSET_P2P[ZoomMediaType.VIDEO]


class TestAutoDetection:
    def test_auto_detects_server(self):
        payload = build_media_payload(
            media=_video_media(), rtp=_rtp(), rtp_payload=b"x" * 10, sfu=SfuEncap()
        )
        packet = parse_zoom_payload(payload)
        assert not packet.is_p2p and packet.is_media

    def test_auto_detects_p2p(self):
        payload = build_media_payload(media=_video_media(), rtp=_rtp(), rtp_payload=b"x" * 10)
        packet = parse_zoom_payload(payload)
        assert packet.is_p2p and packet.is_media


class TestRTCP:
    def test_sr_with_empty_sdes(self):
        payload = build_rtcp_payload(
            media=MediaEncap(media_type=34),
            reports=[_sr(), RTCPSdes(ssrc=0x210)],
            sfu=SfuEncap(),
        )
        packet = parse_zoom_payload(payload, from_server=True)
        assert packet.is_rtcp and len(packet.rtcp) == 2
        assert packet.rtcp[1].is_empty

    def test_rtcp_media_type_required(self):
        with pytest.raises(ValueError):
            build_rtcp_payload(media=_video_media(), reports=[_sr()])


class TestControlPackets:
    def test_control_payload_structure(self):
        payload = build_control_payload(control_type=7, sequence=0x0102, body=b"body")
        assert payload[0] == 7
        assert payload[1:3] == b"\x01\x02"

    def test_control_rejects_media_types(self):
        with pytest.raises(ValueError):
            build_control_payload(control_type=16)

    def test_control_parse_yields_no_media(self):
        payload = build_control_payload(control_type=20, body=b"\x00" * 30, sfu=SfuEncap())
        packet = parse_zoom_payload(payload, from_server=True)
        assert not packet.is_media and not packet.is_rtcp

    def test_sfu_non_media_type(self):
        payload = SfuEncap(sfu_type=2).serialize() + b"\x00" * 10
        packet = parse_zoom_payload(payload, from_server=True)
        assert packet.sfu is not None and packet.media is None


class TestRobustness:
    def test_empty_payload(self):
        packet = parse_zoom_payload(b"", from_server=True)
        assert packet.media is None and packet.rtp is None

    def test_truncated_media_header(self):
        packet = parse_zoom_payload(SfuEncap().serialize() + bytes([16]) + b"\x00" * 5, from_server=True)
        assert packet.media is None

    def test_corrupt_rtp_under_media(self):
        media = _video_media()
        payload = SfuEncap().serialize() + media.serialize() + b"\x00" * 20
        packet = parse_zoom_payload(payload, from_server=True)
        assert packet.media is not None
        assert packet.rtp is None  # version bits wrong

    def test_describe_strings(self):
        media_payload = build_media_payload(
            media=_video_media(), rtp=_rtp(), rtp_payload=b"x", sfu=SfuEncap()
        )
        description = parse_zoom_payload(media_payload).describe()
        assert "VIDEO" in description and "SFU" in description
        p2p_payload = build_media_payload(media=_video_media(), rtp=_rtp(), rtp_payload=b"x")
        assert "P2P" in parse_zoom_payload(p2p_payload).describe()
