"""Tests for in-network control actions: DSCP marking and SVC thinning (§8)."""

from repro.capture.control import (
    BEST_EFFORT_DSCP,
    DEFAULT_DSCP_PLAN,
    DscpAnnotator,
    SvcLayerDropper,
)
from repro.core import ZoomAnalyzer
from repro.net.packet import CapturedPacket, build_udp_frame, parse_frame
from repro.rtp.rtp import RTPHeader
from repro.zoom.constants import ZoomMediaType
from repro.zoom.media_encap import MediaEncap
from repro.zoom.packets import build_control_payload, build_media_payload
from repro.zoom.sfu_encap import SfuEncap


def _media_packet(media_type, payload_type, *, frame_seq=0, t=1.0):
    media = MediaEncap(
        media_type=int(media_type), sequence=1, timestamp=2,
        frame_sequence=frame_seq,
        packets_in_frame=1 if media_type in (13, 16) else 0,
    )
    rtp = RTPHeader(payload_type=payload_type, sequence=frame_seq, timestamp=2, ssrc=0x110)
    payload = build_media_payload(media=media, rtp=rtp, rtp_payload=b"\x7c\x00" + b"m" * 60, sfu=SfuEncap())
    return CapturedPacket(t, build_udp_frame("170.114.1.1", 8801, "10.8.1.2", 50001, payload))


class TestDscpAnnotator:
    def test_audio_marked_ef(self):
        annotator = DscpAnnotator()
        out = annotator.annotate(_media_packet(ZoomMediaType.AUDIO, 112))
        assert parse_frame(out.data).ipv4.dscp == 46

    def test_video_marked_af41(self):
        annotator = DscpAnnotator()
        out = annotator.annotate(_media_packet(ZoomMediaType.VIDEO, 98))
        assert parse_frame(out.data).ipv4.dscp == 34

    def test_screen_share_marked_af31(self):
        annotator = DscpAnnotator()
        out = annotator.annotate(_media_packet(ZoomMediaType.SCREEN_SHARE, 99))
        assert parse_frame(out.data).ipv4.dscp == 26

    def test_control_best_effort(self):
        annotator = DscpAnnotator()
        payload = build_control_payload(control_type=20, body=b"\x00" * 40, sfu=SfuEncap())
        packet = CapturedPacket(1.0, build_udp_frame("170.114.1.1", 8801, "10.8.1.2", 50001, payload))
        out = annotator.annotate(packet)
        assert parse_frame(out.data).ipv4.dscp == BEST_EFFORT_DSCP
        assert annotator.best_effort == 1

    def test_checksum_still_valid_after_rewrite(self):
        annotator = DscpAnnotator()
        out = annotator.annotate(_media_packet(ZoomMediaType.VIDEO, 98))
        parsed = parse_frame(out.data)  # IPv4 parse verifies the checksum
        assert parsed.ipv4 is not None

    def test_payload_untouched(self):
        packet = _media_packet(ZoomMediaType.VIDEO, 98)
        out = DscpAnnotator().annotate(packet)
        assert parse_frame(out.data).payload == parse_frame(packet.data).payload

    def test_custom_plan(self):
        annotator = DscpAnnotator(plan={int(ZoomMediaType.AUDIO): 12})
        out = annotator.annotate(_media_packet(ZoomMediaType.AUDIO, 112))
        assert parse_frame(out.data).ipv4.dscp == 12

    def test_counters(self):
        annotator = DscpAnnotator()
        annotator.annotate(_media_packet(ZoomMediaType.AUDIO, 112))
        annotator.annotate(_media_packet(ZoomMediaType.VIDEO, 98))
        assert annotator.marked == 2

    def test_plan_covers_all_media_types(self):
        assert set(DEFAULT_DSCP_PLAN) == {13, 15, 16}


class TestSvcLayerDropper:
    def test_uncongested_passes_everything(self):
        dropper = SvcLayerDropper(congested=lambda t: False, halve_frame_rate=True)
        packets = [_media_packet(ZoomMediaType.VIDEO, 110, frame_seq=i) for i in range(10)]
        assert len(dropper.process(packets)) == 10

    def test_fec_dropped_under_congestion(self):
        dropper = SvcLayerDropper(congested=lambda t: True)
        fec = _media_packet(ZoomMediaType.VIDEO, 110)
        main = _media_packet(ZoomMediaType.VIDEO, 98)
        assert dropper.admit(fec) is None
        assert dropper.admit(main) is not None
        assert dropper.dropped_fec == 1

    def test_temporal_layer_halving(self):
        dropper = SvcLayerDropper(congested=lambda t: True, halve_frame_rate=True)
        packets = [
            _media_packet(ZoomMediaType.VIDEO, 98, frame_seq=i) for i in range(20)
        ]
        kept = dropper.process(packets)
        assert len(kept) == 10  # odd frames dropped whole
        assert dropper.dropped_frames == 10

    def test_audio_never_thinned(self):
        dropper = SvcLayerDropper(congested=lambda t: True, halve_frame_rate=True)
        audio = _media_packet(ZoomMediaType.AUDIO, 112, frame_seq=1)
        assert dropper.admit(audio) is not None

    def test_time_windowed_congestion(self):
        dropper = SvcLayerDropper(congested=lambda t: 5.0 <= t <= 10.0)
        early = _media_packet(ZoomMediaType.VIDEO, 110, t=1.0)
        during = _media_packet(ZoomMediaType.VIDEO, 110, t=7.0)
        assert dropper.admit(early) is not None
        assert dropper.admit(during) is None


class TestEndToEndThinning:
    def test_halving_visible_in_analyzer(self, sfu_meeting_result):
        """Thinned traffic analyzed downstream shows roughly half the video
        frame rate during the thinning window — the §8 control loop closed."""
        window = (5.0, 10.0)
        dropper = SvcLayerDropper(
            congested=lambda t: window[0] <= t <= window[1], halve_frame_rate=True
        )
        thinned = dropper.process(sfu_meeting_result.captures)
        analysis = ZoomAnalyzer().analyze(thinned)
        stream = next(
            s for s in analysis.media_streams() if s.ssrc == 0x110 and s.to_server is True
        )
        metrics = analysis.metrics_for(stream.key)
        inside = [
            s.fps for s in metrics.framerate_delivered.samples
            if window[0] + 1.2 <= s.time <= window[1] - 0.2
        ]
        outside = [
            s.fps for s in metrics.framerate_delivered.samples if 11.0 <= s.time <= 12.0
        ]
        assert inside and outside
        ratio = (sum(inside) / len(inside)) / (sum(outside) / len(outside))
        assert 0.35 < ratio < 0.75
