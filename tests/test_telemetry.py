"""Unit tests for the telemetry subsystem: registry, report, anomalies,
and the tolerant capture readers that record into it."""

from __future__ import annotations

import io
import logging
import struct

import pytest

from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapReader, PcapWriter, read_pcap
from repro.net.pcapng import PcapngReader, PcapngWriter
from repro.telemetry import (
    Anomaly,
    Telemetry,
    coerce_telemetry,
    detect_anomalies,
    log_anomalies,
    packets_entering,
    render_stats,
    shard_invariant_counters,
    stage_flow_rows,
)
from repro.telemetry.anomalies import LOGGER_NAME
from repro.telemetry.registry import Histogram


class TestRegistry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("a.b")
        tel.count("a.b", 4)
        tel.count("a.c", 2)
        assert tel.counter("a.b") == 5
        assert tel.counter("a.c") == 2
        assert tel.counter("missing") == 0

    def test_disabled_registry_records_nothing(self):
        tel = Telemetry(enabled=False)
        tel.count("a")
        tel.add_time("t", 1.0)
        tel.record_max("m", 9.0)
        tel.observe("h", 3.0)
        snapshot = tel.snapshot()
        assert snapshot.counters == {}
        assert snapshot.timer_seconds == {}
        assert snapshot.maxima == {}
        assert snapshot.histograms == {}

    def test_timer_mean_is_per_sample(self):
        tel = Telemetry()
        tel.add_time("stage.time.decode", 0.004, samples=2)
        snapshot = tel.snapshot()
        assert snapshot.timer_mean_us("stage.time.decode") == pytest.approx(2000.0)
        assert snapshot.timer_mean_us("never.recorded") == 0.0

    def test_record_max_is_high_water(self):
        tel = Telemetry()
        tel.record_max("g", 5.0)
        tel.record_max("g", 3.0)
        tel.record_max("g", 7.0)
        assert tel.snapshot().maxima["g"] == 7.0

    def test_merge_sums_counters_and_maxes_gauges(self):
        a = Telemetry()
        a.count("x", 3)
        a.add_time("t", 0.5, samples=5)
        a.record_max("g", 2.0)
        a.observe("h", 10)
        b = Telemetry()
        b.count("x", 4)
        b.count("y", 1)
        b.add_time("t", 0.25, samples=5)
        b.record_max("g", 9.0)
        b.observe("h", 2)
        merged = Telemetry.merged([a, b])
        snapshot = merged.snapshot()
        assert snapshot.counters == {"x": 7, "y": 1}
        assert snapshot.timer_seconds["t"] == pytest.approx(0.75)
        assert snapshot.timer_samples["t"] == 10
        assert snapshot.maxima["g"] == 9.0
        assert snapshot.histograms["h"]["count"] == 2

    def test_merge_from_disabled_inputs_stays_disabled(self):
        merged = Telemetry.merged([Telemetry(enabled=False)])
        assert merged.enabled is False
        merged2 = Telemetry.merged([Telemetry(enabled=False), Telemetry(enabled=True)])
        assert merged2.enabled is True

    def test_coerce(self):
        registry = Telemetry(enabled=False)
        assert coerce_telemetry(registry) is registry
        assert coerce_telemetry(True).enabled is True
        assert coerce_telemetry(None).enabled is True
        assert coerce_telemetry(False).enabled is False

    def test_snapshot_is_a_copy(self):
        tel = Telemetry()
        tel.count("a")
        snapshot = tel.snapshot()
        tel.count("a")
        assert snapshot.counter("a") == 1
        assert tel.counter("a") == 2

    def test_counters_under_strips_prefix(self):
        tel = Telemetry()
        tel.count("classify.class.media_udp", 7)
        tel.count("classify.class.other", 1)
        tel.count("capture.frames", 9)
        under = tel.snapshot().counters_under("classify.class.")
        assert under == {"media_udp": 7, "other": 1}

    def test_to_dict_round_trips_through_json(self):
        import json

        tel = Telemetry()
        tel.count("a", 2)
        tel.add_time("t", 0.125)
        tel.record_max("m", 4.0)
        tel.observe("h", 3)
        parsed = json.loads(json.dumps(tel.snapshot().to_dict()))
        assert parsed["counters"] == {"a": 2}
        assert parsed["timers"]["t"] == {"seconds": 0.125, "samples": 1}
        assert parsed["maxima"] == {"m": 4.0}
        assert parsed["histograms"]["h"]["count"] == 1

    def test_shard_invariant_filter(self):
        tel = Telemetry()
        tel.count("capture.frames", 10)
        tel.count("assemble.meetings_formed", 2)
        tel.count("assemble.stream_opened", 5)
        tel.count("sharded.shard_packets.0", 6)
        tel.count("rolling.sweeps", 3)
        invariant = shard_invariant_counters(tel.snapshot())
        assert invariant == {"capture.frames": 10, "assemble.stream_opened": 5}


class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value in (0, 0.5, 1, 2, 3, 4, 1000):
            hist.observe(value)
        # 0 and 0.5 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10
        assert hist.buckets == {0: 2, 1: 1, 2: 2, 3: 1, 10: 1}
        assert hist.count == 7
        assert hist.max == 1000
        assert hist.mean == pytest.approx(1010.5 / 7)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        b.observe(1)
        b.observe(64)
        a.merge_from(b)
        assert a.count == 3
        assert a.max == 64
        assert a.buckets[1] == 2

    def test_empty_mean(self):
        assert Histogram().mean == 0.0


class TestReport:
    def _pipeline_snapshot(self) -> Telemetry:
        tel = Telemetry()
        tel.count("capture.frames", 100)
        tel.count("capture.bytes", 64000)
        tel.count("pipeline.stop.decode", 5)
        tel.count("pipeline.stop.classify", 20)
        tel.count("pipeline.stop.zoom-demux", 10)
        tel.count("pipeline.completed", 65)
        tel.add_time("stage.time.decode", 0.001, samples=10)
        tel.count("classify.class.media_udp", 75)
        tel.count("classify.bytes.media_udp", 48000)
        tel.count("demux.undecoded", 10)
        tel.count("assemble.stream_opened", 4)
        tel.count("assemble.meetings_formed", 1)
        return tel

    def test_packets_entering_reconstructs_total(self):
        snapshot = self._pipeline_snapshot().snapshot()
        assert packets_entering(snapshot) == 100

    def test_stage_flow_rows_derive_in_out(self):
        rows = stage_flow_rows(self._pipeline_snapshot().snapshot())
        by_stage = {row[0]: row for row in rows}
        assert by_stage["decode"][1:4] == (100, 5, 95)
        assert by_stage["classify"][1:4] == (95, 20, 75)
        assert by_stage["zoom-demux"][1:4] == (75, 10, 65)
        assert by_stage["metrics"][3] == 65  # everything left completes
        assert by_stage["decode"][4] == pytest.approx(100.0)  # 1ms / 10 samples

    def test_render_stats_sections(self):
        text = render_stats(self._pipeline_snapshot().snapshot())
        assert "capture input:" in text
        assert "pipeline flow (100 packets):" in text
        assert "classification outcomes:" in text
        assert "drops and side channels:" in text
        assert "stream lifecycle:" in text
        # No sharded/rolling counters recorded -> those sections are absent.
        assert "shard balance" not in text
        assert "rolling eviction" not in text

    def test_render_stats_empty_snapshot(self):
        text = render_stats(Telemetry().snapshot())
        assert "no data recorded" in text


class TestAnomalies:
    def test_clean_snapshot_has_no_findings(self):
        tel = Telemetry()
        tel.count("demux.media_class_packets", 1000)
        tel.count("demux.undecoded", 100)  # 10%: the paper's healthy share
        assert detect_anomalies(tel.snapshot()) == []

    def test_undecoded_fraction_threshold(self):
        tel = Telemetry()
        tel.count("demux.media_class_packets", 100)
        tel.count("demux.undecoded", 30)
        findings = detect_anomalies(tel.snapshot())
        assert [a.name for a in findings] == ["undecoded-media"]
        assert detect_anomalies(tel.snapshot(), undecoded_fraction=0.5) == []

    def test_capture_problems_flagged(self):
        tel = Telemetry()
        tel.count("capture.truncated")
        tel.count("decode.parse_failures", 3)
        names = {a.name for a in detect_anomalies(tel.snapshot())}
        assert names == {"truncated-capture", "frame-parse-failures"}

    def test_shard_imbalance(self):
        tel = Telemetry()
        tel.count("sharded.shard_packets.0", 9000)
        tel.count("sharded.shard_packets.1", 100)
        tel.count("sharded.shard_packets.2", 100)
        tel.count("sharded.shard_packets.3", 100)
        findings = detect_anomalies(tel.snapshot())
        assert [a.name for a in findings] == ["shard-imbalance"]
        assert detect_anomalies(tel.snapshot(), shard_imbalance_share=0.99) == []
        balanced = Telemetry()
        for shard in range(4):
            balanced.count(f"sharded.shard_packets.{shard}", 1000)
        assert detect_anomalies(balanced.snapshot()) == []

    def test_receiver_reports_flagged(self):
        tel = Telemetry()
        tel.count("demux.rtcp_receiver_reports", 2)
        findings = detect_anomalies(tel.snapshot())
        assert [a.name for a in findings] == ["rtcp-receiver-reports"]
        assert isinstance(findings[0], Anomaly)

    def test_service_backpressure_drops_flagged(self):
        tel = Telemetry()
        tel.count("service.dropped", 512)
        tel.count("service.dropped_batches", 2)
        findings = detect_anomalies(tel.snapshot())
        assert [a.name for a in findings] == ["service-backpressure-drops"]
        assert "512" in findings[0].message
        assert "re-run the batch analyzer" in findings[0].message

    def test_service_ingest_restarts_flagged(self):
        tel = Telemetry()
        tel.count("service.ingest_restarts", 3)
        findings = detect_anomalies(tel.snapshot())
        assert [a.name for a in findings] == ["service-ingest-restarts"]
        assert findings[0].value == 3

    def test_log_anomalies_warns_with_counter_context(self, caplog):
        tel = Telemetry()
        tel.count("capture.truncated", 2)
        with caplog.at_level(logging.WARNING, logger=LOGGER_NAME):
            findings = log_anomalies(tel.snapshot())
        assert len(findings) == 1
        assert len(caplog.records) == 1
        record = caplog.records[0]
        assert "truncated-capture" in record.getMessage()
        assert record.telemetry_counter == "capture.truncated"

    def test_log_anomalies_silent_when_clean(self, caplog):
        with caplog.at_level(logging.WARNING, logger=LOGGER_NAME):
            assert log_anomalies(Telemetry().snapshot()) == []
        assert caplog.records == []


def _frames(count: int) -> list[CapturedPacket]:
    return [CapturedPacket(float(i), bytes(60)) for i in range(count)]


class TestCaptureReaderTelemetry:
    def test_pcap_reader_counts_frames_and_bytes(self, tmp_path):
        path = tmp_path / "t.pcap"
        with PcapWriter(path) as writer:
            writer.write_all(_frames(5))
        tel = Telemetry()
        packets = read_pcap(path, telemetry=tel)
        assert len(packets) == 5
        assert tel.counter("capture.frames") == 5
        assert tel.counter("capture.bytes") == 300

    def test_pcap_truncated_tail_tolerant(self, tmp_path):
        path = tmp_path / "t.pcap"
        with PcapWriter(path) as writer:
            writer.write_all(_frames(3))
        data = path.read_bytes()[:-10]  # cut into the last record's payload
        tel = Telemetry()
        reader = PcapReader(io.BytesIO(data), telemetry=tel, tolerant=True)
        packets = list(reader)
        assert len(packets) == 2
        assert tel.counter("capture.truncated") == 1
        assert tel.counter("capture.frames") == 2

    def test_pcap_truncated_tail_strict_raises(self, tmp_path):
        path = tmp_path / "t.pcap"
        with PcapWriter(path) as writer:
            writer.write_all(_frames(3))
        data = path.read_bytes()[:-10]
        with pytest.raises(ValueError):
            list(PcapReader(io.BytesIO(data)))

    def test_pcapng_reader_counts_and_skips_unknown_blocks(self, tmp_path):
        path = tmp_path / "t.pcapng"
        with PcapngWriter(path) as writer:
            writer.write_all(_frames(4))
        # Append an unknown block type; spec says skip by length.
        unknown = struct.pack("<II", 0x0BAD0000, 16) + b"\x00" * 4 + struct.pack("<I", 16)
        data = path.read_bytes() + unknown
        tel = Telemetry()
        packets = list(PcapngReader(io.BytesIO(data), telemetry=tel))
        assert len(packets) == 4
        assert tel.counter("capture.frames") == 4
        assert tel.counter("capture.unknown_blocks") == 1

    def test_pcapng_truncated_tail_tolerant(self, tmp_path):
        path = tmp_path / "t.pcapng"
        with PcapngWriter(path) as writer:
            writer.write_all(_frames(3))
        data = path.read_bytes()[:-8]
        tel = Telemetry()
        packets = list(PcapngReader(io.BytesIO(data), telemetry=tel, tolerant=True))
        assert len(packets) == 2
        assert tel.counter("capture.truncated") == 1

    def test_pcapng_truncated_tail_strict_raises(self, tmp_path):
        path = tmp_path / "t.pcapng"
        with PcapngWriter(path) as writer:
            writer.write_all(_frames(3))
        data = path.read_bytes()[:-8]
        with pytest.raises(ValueError):
            list(PcapngReader(io.BytesIO(data)))
