"""Tests for the zoom-analysis command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def meeting_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "meeting.pcap"
    code = main(
        ["simulate", str(path), "--participants", "2", "--duration", "8", "--seed", "3"]
    )
    assert code == 0
    return path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["simulate", "x"],
            ["filter", "in", "out"],
            ["analyze", "x"],
            ["dissect", "x"],
            ["entropy", "x"],
            ["analyze-live", "x"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_filter_needs_two_paths(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["filter", "only-one"])


class TestSimulate:
    def test_meeting_pcap_created(self, meeting_pcap):
        assert meeting_pcap.exists()
        assert meeting_pcap.stat().st_size > 10_000

    def test_campus_kind(self, tmp_path, capsys):
        path = tmp_path / "campus.pcap"
        code = main([
            "simulate", str(path), "--kind", "campus", "--hours", "1",
            "--peak", "1.0", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campus trace" in out
        assert path.exists()


class TestAnalyze:
    def test_summary_output(self, meeting_pcap, capsys):
        assert main(["analyze", str(meeting_pcap)]) == 0
        out = capsys.readouterr().out
        assert "meetings: 1" in out
        assert "Table 2" in out
        assert "per-stream metrics" in out
        assert "VIDEO" in out

    def test_csv_export(self, meeting_pcap, tmp_path, capsys):
        csv_path = tmp_path / "features.csv"
        assert main(["analyze", str(meeting_pcap), "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("stream_id,")


class TestAnalyzeStats:
    def test_stats_report_printed(self, meeting_pcap, capsys):
        assert main(["analyze", str(meeting_pcap), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "=== runtime telemetry (--stats) ===" in out
        assert "capture input:" in out
        assert "pipeline flow" in out
        assert "classification outcomes:" in out
        assert "stream lifecycle:" in out

    def test_stats_json_written(self, meeting_pcap, tmp_path, capsys):
        import json

        json_path = tmp_path / "stats.json"
        assert main(
            ["analyze", str(meeting_pcap), "--stats-json", str(json_path)]
        ) == 0
        payload = json.loads(json_path.read_text())
        assert payload["counters"]["capture.frames"] > 0
        assert payload["counters"]["pipeline.completed"] > 0
        assert any(name.startswith("stage.time.") for name in payload["timers"])

    def test_stats_json_to_stdout(self, meeting_pcap, capsys):
        assert main(["analyze", str(meeting_pcap), "--stats-json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"capture.frames"' in out

    def test_sharded_stats_include_shard_balance(self, meeting_pcap, capsys):
        assert main(
            ["analyze", str(meeting_pcap), "--shards", "2", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "shard balance:" in out
        assert "stun hints replicated" in out

    def test_no_stats_by_default(self, meeting_pcap, capsys):
        assert main(["analyze", str(meeting_pcap)]) == 0
        assert "runtime telemetry" not in capsys.readouterr().out

    def test_tolerant_reads_truncated_capture(self, meeting_pcap, tmp_path, capsys):
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(meeting_pcap.read_bytes()[:-7])
        assert main(["analyze", str(cut), "--tolerant", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out


class TestAnalyzeMultiInput:
    @pytest.fixture(scope="class")
    def two_pcaps(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("multi")
        for name, seed in (("first.pcap", 3), ("second.pcap", 9)):
            assert main([
                "simulate", str(directory / name),
                "--participants", "2", "--duration", "6", "--seed", str(seed),
            ]) == 0
        return directory

    @staticmethod
    def _counters(argv, tmp_path, tag):
        import json

        json_path = tmp_path / f"{tag}.json"
        assert main(argv + ["--stats-json", str(json_path)]) == 0
        return json.loads(json_path.read_text())["counters"]

    def test_parser_accepts_multiple_inputs(self):
        args = build_parser().parse_args(["analyze", "a.pcap", "b.pcap"])
        assert [str(p) for p in args.inputs] == ["a.pcap", "b.pcap"]

    def test_merged_stats_equal_per_file_sums(self, two_pcaps, tmp_path, capsys):
        first = str(two_pcaps / "first.pcap")
        second = str(two_pcaps / "second.pcap")
        merged = self._counters(["analyze", first, second], tmp_path, "merged")
        alone_a = self._counters(["analyze", first], tmp_path, "a")
        alone_b = self._counters(["analyze", second], tmp_path, "b")
        for key in ("capture.frames", "capture.bytes", "pipeline.completed"):
            assert merged[key] == alone_a[key] + alone_b[key], key
        assert merged["ingest.files"] == 2

    def test_directory_input(self, two_pcaps, capsys):
        assert main(["analyze", str(two_pcaps)]) == 0
        out = capsys.readouterr().out
        assert "inputs: 2 capture files" in out
        assert "packets:" in out

    def test_glob_option(self, two_pcaps, tmp_path, capsys):
        counters = self._counters(
            ["analyze", "--glob", str(two_pcaps / "*.pcap"),
             str(two_pcaps / "first.pcap")],
            tmp_path, "globbed",
        )
        assert counters["ingest.files"] == 3  # first.pcap + two glob matches

    def test_stats_report_shows_ingest_counters(self, two_pcaps, capsys):
        first = str(two_pcaps / "first.pcap")
        second = str(two_pcaps / "second.pcap")
        assert main(["analyze", first, second, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "capture input:" in out
        assert "files" in out


class TestFilter:
    def test_filter_roundtrip(self, meeting_pcap, tmp_path, capsys):
        out_path = tmp_path / "filtered.pcap"
        assert main(["filter", str(meeting_pcap), str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "passed" in output
        assert out_path.exists()

    def test_filter_with_anonymization(self, meeting_pcap, tmp_path):
        out_path = tmp_path / "anon.pcap"
        assert main([
            "filter", str(meeting_pcap), str(out_path), "--anonymize", "secret-key",
        ]) == 0
        from repro.net.packet import parse_frame
        from repro.net.pcap import read_pcap

        for packet in read_pcap(out_path)[:20]:
            parsed = parse_frame(packet.data)
            if parsed.src_ip:
                assert not parsed.src_ip.startswith("198.18.")


class TestDissect:
    def test_dissection_printed(self, meeting_pcap, capsys):
        assert main(["dissect", str(meeting_pcap), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "Zoom" in out
        assert "Real-Time Transport Protocol" in out

    def test_server_media_tagged_with_direction(self, meeting_pcap, capsys):
        assert main(["dissect", str(meeting_pcap), "--limit", "2"]) == 0
        assert "[server]" in capsys.readouterr().out

    def test_port_8801_noise_between_non_zoom_hosts_skipped(self, tmp_path, capsys):
        """A flow that merely *uses* port 8801 is not Zoom.  The old
        ``8801 in (src_port, dst_port)`` heuristic dissected it as
        server media; the detector-driven path classifies and skips it."""
        from repro.net.packet import CapturedPacket, build_udp_frame
        from repro.net.pcap import write_pcap

        noise = [
            CapturedPacket(
                float(i),
                build_udp_frame(
                    "192.0.2.10", 8801, "198.51.100.5", 5555, b"\x05\x10" + bytes(40)
                ),
            )
            for i in range(3)
        ]
        path = tmp_path / "noise.pcap"
        write_pcap(path, noise)
        assert main(["dissect", str(path)]) == 1
        assert "no dissectable Zoom UDP packets" in capsys.readouterr().err

    def test_p2p_media_dissected_without_sfu_layer(self, tmp_path, capsys):
        """P2P media (learned via STUN) is dissected from the media layer
        and tagged [p2p] — not misparsed as server-encapsulated."""
        from repro.net.packet import CapturedPacket, build_udp_frame
        from repro.net.pcap import write_pcap
        from repro.rtp.rtp import RTPHeader
        from repro.rtp.stun import StunMessage
        from repro.zoom.constants import ZoomMediaType
        from repro.zoom.media_encap import MediaEncap
        from repro.zoom.packets import build_media_payload

        client, peer = "10.8.1.20", "198.18.2.30"
        stun = StunMessage.binding_request(b"abcdefghijkl").serialize()
        packets = [
            CapturedPacket(
                0.0, build_udp_frame(client, 52001, "170.114.200.9", 3478, stun)
            )
        ]
        for seq in range(3):
            payload = build_media_payload(
                media=MediaEncap(
                    media_type=ZoomMediaType.AUDIO,
                    sequence=seq,
                    timestamp=seq * 640,
                ),
                rtp=RTPHeader(
                    payload_type=112, sequence=seq, timestamp=seq * 640, ssrc=0x42
                ),
                rtp_payload=b"a" * 60,
            )
            packets.append(
                CapturedPacket(
                    1.0 + seq, build_udp_frame(client, 52001, peer, 53000, payload)
                )
            )
        path = tmp_path / "p2p.pcap"
        write_pcap(path, packets)
        assert main(["dissect", str(path), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "[p2p]" in out
        assert "[server]" not in out
        assert "Real-Time Transport Protocol" in out

    def test_empty_pcap_errors(self, tmp_path, capsys):
        from repro.net.pcap import write_pcap

        empty = tmp_path / "empty.pcap"
        write_pcap(empty, [])
        assert main(["dissect", str(empty)]) == 1


class TestEntropy:
    def test_sweep_output(self, meeting_pcap, capsys):
        assert main(["entropy", str(meeting_pcap)]) == 0
        out = capsys.readouterr().out
        assert "busiest flow" in out
        assert "type -> offset map" in out
        assert "counter" in out

    def test_empty_pcap_errors(self, tmp_path, capsys):
        from repro.net.pcap import write_pcap

        empty = tmp_path / "empty.pcap"
        write_pcap(empty, [])
        assert main(["entropy", str(empty)]) == 1


class TestAnalyzeLive:
    def test_runs_over_capture_dir_and_writes_windows(
        self, meeting_pcap, tmp_path, capsys
    ):
        import json
        import shutil

        directory = tmp_path / "caps"
        directory.mkdir()
        shutil.copy(meeting_pcap, directory / "zoom-00.pcap")
        jsonl = tmp_path / "windows.jsonl"
        code = main([
            "analyze-live", str(directory),
            "--window", "4", "--lateness", "1",
            "--poll-interval", "0.05", "--max-polls", "2",
            "--jsonl-out", str(jsonl),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tailing" in out
        assert "processed" in out and "windows" in out
        windows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert windows
        assert sum(w["packets_total"] for w in windows) > 0

    def test_listen_prints_metrics_url(self, meeting_pcap, tmp_path, capsys):
        import shutil

        directory = tmp_path / "caps"
        directory.mkdir()
        shutil.copy(meeting_pcap, directory / "zoom-00.pcap")
        code = main([
            "analyze-live", str(directory),
            "--window", "4", "--poll-interval", "0.05", "--max-polls", "1",
            "--listen", "127.0.0.1:0",
        ])
        assert code == 0
        assert "metrics: http://127.0.0.1:" in capsys.readouterr().out
