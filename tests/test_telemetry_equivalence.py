"""Telemetry totals from sharded and rolling runs must match a single pass.

``analyze --stats`` on a sharded run has to report the same packet-path
accounting as the same capture analyzed in one pass — otherwise the health
report depends on a deployment knob.  Driver-local counters are exempt by
design and carry the ``sharded.`` / ``rolling.`` prefixes (plus
``assemble.meetings_formed``, which counts per-shard grouping work that is
redone at merge); :func:`repro.telemetry.shard_invariant_counters` encodes
exactly that contract.
"""

from __future__ import annotations

import pytest

from repro.core import RollingZoomAnalyzer, ShardedAnalyzer, ZoomAnalyzer
from repro.telemetry import shard_invariant_counters


def _single_pass_counters(captures) -> dict[str, int]:
    result = ZoomAnalyzer().analyze(captures)
    return shard_invariant_counters(result.telemetry_snapshot())


class TestShardedTelemetryEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_serial_backend_matches_single_pass(self, sfu_meeting_result, shards):
        captures = sfu_meeting_result.captures
        sharded = ShardedAnalyzer(shards=shards, backend="serial").analyze(captures)
        assert (
            shard_invariant_counters(sharded.telemetry_snapshot())
            == _single_pass_counters(captures)
        )

    def test_thread_backend_matches_single_pass(self, sfu_meeting_result):
        captures = sfu_meeting_result.captures
        sharded = ShardedAnalyzer(shards=3, backend="thread").analyze(captures)
        assert (
            shard_invariant_counters(sharded.telemetry_snapshot())
            == _single_pass_counters(captures)
        )

    def test_p2p_meeting_matches_single_pass(self, p2p_meeting_result):
        """STUN hints are replicated to every shard; only the home shard may
        count them, or sharded totals would inflate with the shard count."""
        captures = p2p_meeting_result.captures
        sharded = ShardedAnalyzer(shards=4, backend="serial").analyze(captures)
        assert (
            shard_invariant_counters(sharded.telemetry_snapshot())
            == _single_pass_counters(captures)
        )

    def test_shard_local_counters_cover_every_packet(self, sfu_meeting_result):
        captures = sfu_meeting_result.captures
        sharded = ShardedAnalyzer(shards=4, backend="serial").analyze(captures)
        snapshot = sharded.telemetry_snapshot()
        per_shard = snapshot.counters_under("sharded.shard_packets.")
        assert len(per_shard) == 4
        assert sum(per_shard.values()) == len(captures)

    def test_disabled_telemetry_stays_empty(self, sfu_meeting_result):
        sharded = ShardedAnalyzer(shards=2, backend="serial", telemetry=False)
        result = sharded.analyze(sfu_meeting_result.captures)
        assert result.telemetry_snapshot().counters == {}


class TestRollingTelemetryEquivalence:
    def test_eviction_disabled_matches_single_pass_exactly(self, sfu_meeting_result):
        """With eviction effectively off, the rolling wrapper is the same
        pipeline — every counter except its own ``rolling.*`` bookkeeping
        must be identical, including ``assemble.meetings_formed``."""
        captures = sfu_meeting_result.captures
        rolling = RollingZoomAnalyzer(idle_timeout=1e9, sweep_interval=1.0)
        rolling.analyze(captures)
        single = ZoomAnalyzer().analyze(captures).telemetry_snapshot()
        rolling_counters = {
            name: value
            for name, value in rolling.result.telemetry_snapshot().counters.items()
            if not name.startswith("rolling.")
        }
        assert rolling_counters == dict(single.counters)

    def test_eviction_preserves_per_packet_counters(self, sfu_meeting_result):
        """Eviction changes stream lifetimes, never what each packet did:
        per-packet flow and classification counters stay equal, while
        ``assemble.stream_opened`` may only grow (evicted streams that
        resume are opened again)."""
        captures = sfu_meeting_result.captures
        rolling = RollingZoomAnalyzer(idle_timeout=3.0, sweep_interval=0.5)
        rolling.analyze(captures)
        # Flush everything still live so every stream goes through eviction.
        rolling.sweep(captures[-1].timestamp + 10.0)
        assert rolling.streams_evicted > 0, "scenario must actually evict"
        single = ZoomAnalyzer().analyze(captures).telemetry_snapshot()
        snapshot = rolling.result.telemetry_snapshot()

        per_packet_prefixes = ("capture.", "decode.", "classify.", "demux.", "pipeline.stop.")
        for name, value in single.counters.items():
            if name.startswith(per_packet_prefixes) or name == "pipeline.completed":
                assert snapshot.counter(name) == value, name
        assert snapshot.counter("assemble.stream_opened") >= single.counter(
            "assemble.stream_opened"
        )
        evicted = snapshot.counters_under("pipeline.evicted.")
        assert sum(evicted.values()) == rolling.streams_evicted
