"""Tests for the P4 capture model, registers, anonymizer, and resources (§6.1)."""

import pytest

from repro.capture.anonymize import Anonymizer
from repro.capture.p4_model import P4CaptureModel
from repro.capture.registers import HashRegisterArray, endpoint_key
from repro.capture.resources import (
    TOFINO_BUDGET,
    component_usage,
    fits_budget,
    resource_usage_table,
    total_usage,
)
from repro.net.packet import CapturedPacket, build_tcp_frame, build_udp_frame, parse_frame
from repro.rtp.stun import StunMessage

ZOOM = "170.114.10.5"
ZC = "170.114.200.9"
CAMPUS = "10.8.1.20"
EXTERNAL = "93.184.216.34"
PEER = "198.18.2.30"


class TestRegisters:
    def test_insert_and_lookup(self):
        registers = HashRegisterArray(1024, timeout=10.0)
        registers.insert(endpoint_key(CAMPUS, 52001), now=1.0)
        assert registers.contains(endpoint_key(CAMPUS, 52001), now=5.0)
        assert not registers.contains(endpoint_key(CAMPUS, 52002), now=5.0)

    def test_timeout(self):
        registers = HashRegisterArray(1024, timeout=10.0)
        registers.insert(endpoint_key(CAMPUS, 52001), now=1.0)
        assert not registers.contains(endpoint_key(CAMPUS, 52001), now=20.0)

    def test_zero_timeout_disables_expiry(self):
        registers = HashRegisterArray(1024, timeout=0.0)
        registers.insert(endpoint_key(CAMPUS, 52001), now=1.0)
        assert registers.contains(endpoint_key(CAMPUS, 52001), now=1e9)

    def test_collision_overwrites(self):
        """Data-plane register semantics: no chaining, last writer wins."""
        registers = HashRegisterArray(1, timeout=0.0)
        registers.insert(endpoint_key(CAMPUS, 1), now=1.0)
        registers.insert(endpoint_key(CAMPUS, 2), now=2.0)
        assert registers.overwrites == 1
        assert not registers.contains(endpoint_key(CAMPUS, 1), now=3.0)
        assert registers.contains(endpoint_key(CAMPUS, 2), now=3.0)

    def test_fingerprint_guards_index_collisions(self):
        registers = HashRegisterArray(1, timeout=0.0)
        registers.insert(endpoint_key(CAMPUS, 1), now=1.0)
        # Different key hashing to the same (only) slot: fingerprint differs.
        assert not registers.contains(endpoint_key("9.9.9.9", 9), now=2.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            HashRegisterArray(0)

    def test_occupancy(self):
        registers = HashRegisterArray(4096)
        for port in range(10):
            registers.insert(endpoint_key(CAMPUS, port), now=1.0)
        assert registers.occupancy <= 10


class TestP4Pipeline:
    def _stun(self, t=0.0, port=52001):
        payload = StunMessage.binding_request(b"x" * 12).serialize()
        return CapturedPacket(t, build_udp_frame(CAMPUS, port, ZC, 3478, payload))

    def test_server_traffic_passes(self):
        model = P4CaptureModel()
        packet = CapturedPacket(1.0, build_udp_frame(CAMPUS, 50000, ZOOM, 8801, b"x" * 40))
        assert model.process_one(packet) is not None
        assert model.counters.zoom_ip_matched == 1

    def test_tcp_control_passes(self):
        model = P4CaptureModel()
        packet = CapturedPacket(1.0, build_tcp_frame(CAMPUS, 40000, ZOOM, 443, seq=1))
        assert model.process_one(packet) is not None

    def test_background_dropped(self):
        model = P4CaptureModel()
        packet = CapturedPacket(1.0, build_udp_frame(CAMPUS, 1234, EXTERNAL, 443, b"web"))
        assert model.process_one(packet) is None
        assert model.counters.dropped == 1

    def test_non_campus_traffic_dropped(self):
        model = P4CaptureModel()
        packet = CapturedPacket(1.0, build_udp_frame(EXTERNAL, 1, "8.8.8.8", 53, b"q"))
        assert model.process_one(packet) is None
        assert model.counters.no_campus_endpoint == 1

    def test_p2p_flow_after_stun(self):
        """Figure 13's stateful path: STUN learn, then P2P match both ways."""
        model = P4CaptureModel()
        assert model.process_one(self._stun(t=0.0)) is not None
        assert model.counters.stun_learned == 1
        outbound = CapturedPacket(1.0, build_udp_frame(CAMPUS, 52001, PEER, 5333, b"m" * 60))
        inbound = CapturedPacket(1.1, build_udp_frame(PEER, 5333, CAMPUS, 52001, b"m" * 60))
        assert model.process_one(outbound) is not None
        assert model.process_one(inbound) is not None
        assert model.counters.p2p_matched == 2

    def test_p2p_without_stun_dropped(self):
        model = P4CaptureModel()
        packet = CapturedPacket(1.0, build_udp_frame(CAMPUS, 52001, PEER, 5333, b"m"))
        assert model.process_one(packet) is None

    def test_p2p_register_timeout(self):
        model = P4CaptureModel(stun_timeout=5.0)
        model.process_one(self._stun(t=0.0))
        late = CapturedPacket(100.0, build_udp_frame(CAMPUS, 52001, PEER, 5333, b"m"))
        assert model.process_one(late) is None

    def test_rate_series(self):
        model = P4CaptureModel(rate_bin_width=1.0)
        model.process_one(CapturedPacket(0.5, build_udp_frame(CAMPUS, 1, EXTERNAL, 80, b"x")))
        model.process_one(CapturedPacket(0.6, build_udp_frame(CAMPUS, 5, ZOOM, 8801, b"x")))
        all_series, zoom_series = model.rate_series()
        assert all_series[0][1] == 2.0
        assert zoom_series[0][1] == 1.0

    def test_filters_simulated_meeting_exactly(self, sfu_meeting_result):
        model = P4CaptureModel()
        passed = list(model.process(sfu_meeting_result.captures))
        assert len(passed) == len(sfu_meeting_result.captures)

    def test_anonymizer_applied_on_egress(self):
        model = P4CaptureModel(anonymizer=Anonymizer(key=b"k"))
        packet = CapturedPacket(1.0, build_udp_frame(CAMPUS, 50000, ZOOM, 8801, b"x" * 40))
        out = model.process_one(packet)
        parsed = parse_frame(out.data)
        assert parsed.src_ip != CAMPUS
        assert parsed.src_ip.startswith("10.")


class TestAnonymizer:
    def test_deterministic_mapping(self):
        anonymizer = Anonymizer(key=b"secret")
        assert anonymizer.anonymize_ip(CAMPUS) == anonymizer.anonymize_ip(CAMPUS)

    def test_key_changes_mapping(self):
        a = Anonymizer(key=b"one").anonymize_ip(CAMPUS)
        b = Anonymizer(key=b"two").anonymize_ip(CAMPUS)
        assert a != b

    def test_class_preserved(self):
        anonymizer = Anonymizer(key=b"k")
        assert anonymizer.anonymize_ip("10.8.1.2").startswith("10.")
        assert anonymizer.anonymize_ip("170.114.9.9").startswith("170.")
        assert anonymizer.anonymize_ip(EXTERNAL).startswith("240.")

    def test_packet_rewrite_consistency(self):
        """Flows survive anonymization: same real pair -> same pseudo pair."""
        anonymizer = Anonymizer(key=b"k")
        first = anonymizer.anonymize_packet(
            CapturedPacket(1.0, build_udp_frame(CAMPUS, 1, ZOOM, 8801, b"a" * 20))
        )
        second = anonymizer.anonymize_packet(
            CapturedPacket(2.0, build_udp_frame(CAMPUS, 2, ZOOM, 8801, b"b" * 20))
        )
        p1, p2 = parse_frame(first.data), parse_frame(second.data)
        assert p1.src_ip == p2.src_ip
        assert p1.dst_ip == p2.dst_ip

    def test_payload_preserved_by_default(self):
        anonymizer = Anonymizer(key=b"k")
        out = anonymizer.anonymize_packet(
            CapturedPacket(1.0, build_udp_frame(CAMPUS, 1, ZOOM, 8801, b"zoompayload"))
        )
        assert parse_frame(out.data).payload == b"zoompayload"

    def test_strip_payload(self):
        anonymizer = Anonymizer(key=b"k", strip_payload=True)
        out = anonymizer.anonymize_packet(
            CapturedPacket(1.0, build_udp_frame(CAMPUS, 1, ZOOM, 8801, b"secret-media"))
        )
        parsed = parse_frame(out.data)
        assert parsed.ipv4 is not None
        assert b"secret-media" not in out.data

    def test_macs_anonymized(self):
        anonymizer = Anonymizer(key=b"k")
        out = anonymizer.anonymize_packet(
            CapturedPacket(1.0, build_udp_frame(CAMPUS, 1, ZOOM, 8801, b"x"))
        )
        assert out.data[0] == 0x02  # locally administered pseudo MAC
        assert out.data[0:6] != b"\x02\x00\x00\x00\x00\x02"

    def test_non_ipv4_passes_through(self):
        anonymizer = Anonymizer(key=b"k")
        packet = CapturedPacket(1.0, b"\x02" * 14 + b"junk")
        assert anonymizer.anonymize_packet(packet).data[14:] == b"junk"

    def test_analysis_works_on_anonymized_trace(self, sfu_meeting_result):
        """The full §6 flow: filter + anonymize in the 'switch', then run
        the analyzer over the anonymized capture with the pseudo prefixes."""
        from repro.core import ZoomAnalyzer

        model = P4CaptureModel(anonymizer=Anonymizer(key=b"k"))
        anonymized = list(model.process(sfu_meeting_result.captures))
        result = ZoomAnalyzer(zoom_subnets=("170.0.0.0/8",)).analyze(anonymized)
        assert result.packets_zoom == result.packets_total
        truth = {t.ssrc for t in sfu_meeting_result.stream_truths}
        assert result.grouper.unique_stream_count() == len(truth)
        assert len(result.meetings) == 1


class TestResources:
    def test_table5_reproduced(self):
        """Per-component usage matches Table 5 within tolerance."""
        paper = {
            "Zoom IP Match": dict(stages=2, tcam=0.7, sram=0.1, instructions=1.3, hash_units=0.0),
            "P2P Detection": dict(stages=7, tcam=1.0, sram=10.9, instructions=3.4, hash_units=16.7),
            "Anonymization": dict(stages=11, tcam=1.4, sram=1.1, instructions=5.2, hash_units=8.3),
        }
        for component in resource_usage_table():
            expected = paper[component.name]
            got = component.percentages()
            assert got["stages"] == expected["stages"], component.name
            for resource in ("tcam", "sram", "instructions", "hash_units"):
                assert got[resource] == pytest.approx(expected[resource], abs=1.5), (
                    component.name,
                    resource,
                )

    def test_program_fits_budget(self):
        assert fits_budget()

    def test_lightweight_claim(self):
        """The paper's conclusion: <15% of most resource types."""
        usage = total_usage()
        percentages = {
            "tcam": 100.0 * usage.tcam_blocks / TOFINO_BUDGET["tcam_blocks"],
            "sram": 100.0 * usage.sram_blocks / TOFINO_BUDGET["sram_blocks"],
            "instructions": 100.0 * usage.instruction_slots / TOFINO_BUDGET["instruction_slots"],
        }
        assert all(value < 15.0 for value in percentages.values())

    def test_component_usage_custom_tables(self):
        from repro.capture.resources import TableSpec

        usage = component_usage(
            "custom", (TableSpec("t", "exact", key_bits=32, entries=1024),)
        )
        assert usage.sram_blocks > 0
        assert usage.hash_units >= 1

    def test_unknown_match_kind_rejected(self):
        from repro.capture.resources import TableSpec, cost

        with pytest.raises(ValueError):
            cost(TableSpec("bad", "lpm", key_bits=32, entries=1))
