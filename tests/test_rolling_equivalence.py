"""Rolling (eviction-enabled) analysis must measure what one pass measures."""

from __future__ import annotations

from collections import defaultdict

from repro.core import RollingZoomAnalyzer, ZoomAnalyzer


def _one_pass_totals(result):
    totals = {}
    for stream in result.streams:
        metrics = result.metrics_for(stream.key)
        loss = metrics.loss.report(finalize=True)
        totals[stream.key] = (
            stream.packets,
            stream.bytes,
            metrics.assembler.completed_count,
            loss.duplicates,
            loss.lost,
        )
    return totals


def _rolling_totals(rolling):
    """Finalized + still-live streams, summed per key (a stream that went
    idle and resumed appears as several finalized segments)."""
    totals: dict = defaultdict(lambda: [0, 0, 0, 0, 0])
    for done in rolling.finalized:
        entry = totals[done.key]
        entry[0] += done.packets
        entry[1] += done.bytes
        entry[2] += done.frames_completed
        entry[3] += done.duplicates
        entry[4] += done.lost
    for stream in rolling.result.streams:
        metrics = rolling.result.metrics_for(stream.key)
        loss = metrics.loss.report(finalize=True)
        entry = totals[stream.key]
        entry[0] += stream.packets
        entry[1] += stream.bytes
        entry[2] += metrics.assembler.completed_count
        entry[3] += loss.duplicates
        entry[4] += loss.lost
    return {key: tuple(value) for key, value in totals.items()}


class TestRollingEquivalence:
    def test_eviction_disabled_is_identical(self, sfu_meeting_result, analyzed_sfu):
        rolling = RollingZoomAnalyzer(idle_timeout=1e9, sweep_interval=1.0)
        rolling.analyze(sfu_meeting_result.captures)
        assert not rolling.finalized
        assert rolling.streams_evicted == 0
        assert _rolling_totals(rolling) == _one_pass_totals(analyzed_sfu)
        assert rolling.result.packets_zoom == analyzed_sfu.packets_zoom

    def test_eviction_enabled_preserves_totals(self, sfu_meeting_result, analyzed_sfu):
        rolling = RollingZoomAnalyzer(idle_timeout=3.0, sweep_interval=0.5)
        rolling.analyze(sfu_meeting_result.captures)
        # flush everything still live so only finalized streams remain
        last = sfu_meeting_result.captures[-1].timestamp
        rolling.sweep(last + 10.0)
        assert rolling.live_stream_count() == 0
        assert rolling.streams_evicted == len(rolling.finalized) > 0
        assert _rolling_totals(rolling) == _one_pass_totals(analyzed_sfu)

    def test_eviction_enabled_p2p(self, p2p_meeting_result, analyzed_p2p):
        rolling = RollingZoomAnalyzer(idle_timeout=3.0, sweep_interval=0.5)
        rolling.analyze(p2p_meeting_result.captures)
        rolling.sweep(p2p_meeting_result.captures[-1].timestamp + 10.0)
        assert _rolling_totals(rolling) == _one_pass_totals(analyzed_p2p)


class TestRollingOptions:
    def test_constructor_options_reach_wrapped_analyzer(self):
        rolling = RollingZoomAnalyzer(
            zoom_subnets=("203.0.113.0/24",),
            campus_subnets=("10.8.0.0/16",),
            stun_timeout=7.5,
            keep_records=True,
        )
        detector = rolling.result.detector
        assert detector.campus_matcher is not None
        assert detector.stun.timeout == 7.5
        assert rolling.result.streams.keep_records is True

    def test_defaults_leave_options_off(self):
        rolling = RollingZoomAnalyzer()
        assert rolling.result.detector.campus_matcher is None
        assert rolling.result.streams.keep_records is False

    def test_keep_records_retains_records(self, sfu_meeting_result):
        rolling = RollingZoomAnalyzer(idle_timeout=1e9, keep_records=True)
        rolling.analyze(sfu_meeting_result.captures)
        assert all(s.records for s in rolling.result.streams)
