"""Unit tests for the shared merge helper (:mod:`repro.store.merge`).

This is the one code path both single-store re-aggregation and the fleet's
federated merge run through, so its arithmetic is pinned down here record
by record.
"""

from repro.store import StoreQuery
from repro.store.merge import (
    IDENTITY_KEYS,
    canonical_key,
    merge_media_entries,
    project_record,
    reaggregate_windows,
    shape_records,
)


def _window(index: int, *, packets=100, fps=24.0, media_packets=45) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": packets,
        "bytes_total": packets * 100,
        "zoom_packets": packets - 10,
        "meetings_formed": 1,
        "meetings_active": index % 3,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": "video",
                "packets": media_packets,
                "bytes": media_packets * 100,
                "bitrate_bps": media_packets * 80.0,
                "streams": 1,
                "streams_opened": 0,
                "p2p_packets": 0,
                "mean_fps": fps,
                "mean_jitter_ms": 2.0,
                "lost": 1,
                "duplicates": 0,
            }
        ],
    }


class TestCanonicalKey:
    def test_orders_by_start_then_kind(self):
        records = [
            {"kind": "window", "start": 10.0},
            {"kind": "meeting", "start": 10.0},
            {"kind": "window", "start": 0.0},
        ]
        ordered = sorted(records, key=canonical_key)
        assert [r["start"] for r in ordered] == [0.0, 10.0, 10.0]
        assert [r["kind"] for r in ordered][1:] == ["meeting", "window"]

    def test_content_breaks_ties_deterministically(self):
        a = {"kind": "window", "start": 5.0, "packets_total": 1}
        b = {"kind": "window", "start": 5.0, "packets_total": 2}
        assert sorted([a, b], key=canonical_key) == sorted(
            [b, a], key=canonical_key
        )


class TestReaggregateWindows:
    def test_counting_fields_sum_exactly(self):
        windows = [_window(i) for i in range(6)]  # 0..60 s
        merged = reaggregate_windows(windows, 30.0)
        assert [w["window"] for w in merged] == [0, 1]
        assert all(w["windows_merged"] == 3 for w in merged)
        total = sum(w["packets_total"] for w in merged)
        assert total == sum(w["packets_total"] for w in windows)

    def test_meetings_active_takes_bucket_max(self):
        merged = reaggregate_windows([_window(i) for i in range(3)], 30.0)
        assert merged[0]["meetings_active"] == 2  # max(0, 1, 2)

    def test_bucket_boundaries_are_tumbling(self):
        merged = reaggregate_windows([_window(2), _window(3)], 30.0)
        assert [(w["start"], w["end"]) for w in merged] == [
            (0.0, 30.0),
            (30.0, 60.0),
        ]

    def test_forced_propagates(self):
        windows = [_window(0), _window(1)]
        windows[1]["forced"] = True
        assert reaggregate_windows(windows, 30.0)[0]["forced"] is True

    def test_input_order_does_not_matter(self):
        windows = [_window(i, packets=100 + i, fps=20.0 + i) for i in range(9)]
        forward = reaggregate_windows(list(windows), 30.0)
        backward = reaggregate_windows(list(reversed(windows)), 30.0)
        assert forward == backward


class TestMergeMediaEntries:
    def test_packet_weighted_mean(self):
        group = [
            _window(0, fps=30.0, media_packets=90),
            _window(1, fps=10.0, media_packets=10),
        ]
        [entry] = merge_media_entries(group, 20.0)
        assert entry["packets"] == 100
        assert entry["mean_fps"] == 28.0  # (30*90 + 10*10) / 100

    def test_weight_floor_keeps_packetless_samples(self):
        group = [_window(0, fps=30.0, media_packets=0)]
        [entry] = merge_media_entries(group, 10.0)
        assert entry["mean_fps"] == 30.0

    def test_absent_quality_values_stay_none(self):
        window = _window(0)
        window["media"][0]["mean_fps"] = None
        [entry] = merge_media_entries([window], 10.0)
        assert entry["mean_fps"] is None

    def test_streams_is_census_not_sum(self):
        a, b = _window(0), _window(1)
        a["media"][0]["streams"] = 3
        b["media"][0]["streams"] = 2
        [entry] = merge_media_entries([a, b], 20.0)
        assert entry["streams"] == 3

    def test_media_types_sorted_by_name(self):
        a = _window(0)
        a["media"].append(dict(a["media"][0], media="audio"))
        [first, second] = merge_media_entries([a], 10.0)
        assert (first["media"], second["media"]) == ("audio", "video")


class TestShapeRecords:
    def test_sorts_canonically_without_reaggregation(self):
        records = [_window(2), _window(0), _window(1)]
        shaped = shape_records(records, StoreQuery())
        assert [r["window"] for r in shaped] == [0, 1, 2]

    def test_reaggregates_only_windows(self):
        meeting = {
            "kind": "meeting",
            "start": 5.0,
            "end": 25.0,
            "meeting_id": 1,
            "streams": 2,
            "participants": 2,
        }
        shaped = shape_records(
            [_window(0), _window(1), meeting],
            StoreQuery(kinds=("window", "meeting"), reaggregate_seconds=30.0),
        )
        kinds = [r["kind"] for r in shaped]
        assert kinds == ["window", "meeting"]
        assert shaped[0]["windows_merged"] == 2

    def test_input_not_mutated(self):
        records = [_window(1), _window(0)]
        snapshot = [dict(r) for r in records]
        shape_records(records, StoreQuery(reaggregate_seconds=30.0))
        assert records == snapshot


class TestProjectRecord:
    def test_identity_keys_always_survive(self):
        projected = project_record(_window(0), ("packets_total",))
        for key in IDENTITY_KEYS:
            assert key in projected
        assert projected["packets_total"] == 100
        assert "zoom_packets" not in projected

    def test_media_entries_kept_only_for_per_media_metrics(self):
        with_media = project_record(_window(0), ("mean_fps",))
        assert with_media["media"] == [{"media": "video", "mean_fps": 24.0}]
        without = project_record(_window(0), ("packets_total",))
        assert "media" not in without
