"""Tests for RTP/RTCP offset and type-field discovery (§4.2.2)."""

import random

from repro.core.offset_finder import candidate_rtp_offsets, discover_offsets
from repro.net.packet import parse_frame
from repro.rtp.rtp import RTPHeader
from repro.zoom.packets import parse_zoom_payload


def _collect_payloads(result, *, direction_port=8801, limit=8000):
    payloads = []
    for captured in result.captures[:limit]:
        packet = parse_frame(captured.data, captured.timestamp)
        if packet.is_udp and direction_port in (packet.src_port, packet.dst_port):
            payloads.append(packet.payload)
    return payloads


class TestCandidates:
    def test_finds_true_offset(self):
        rtp = RTPHeader(payload_type=98, sequence=1, timestamp=2, ssrc=3)
        payload = b"\x00" * 10 + rtp.serialize() + b"\x00" * 4
        assert 10 in candidate_rtp_offsets(payload)

    def test_no_candidates_in_low_bytes(self):
        assert candidate_rtp_offsets(b"\x00" * 40) == []

    def test_respects_max_offset(self):
        rtp = RTPHeader(payload_type=98, sequence=1, timestamp=2, ssrc=3)
        payload = b"\x00" * 30 + rtp.serialize()
        assert 30 not in candidate_rtp_offsets(payload, max_offset=20)


class TestDiscovery:
    def test_discovers_server_offsets_and_type_field(self, sfu_meeting_result):
        """The full §4.2.2 result on emulated server traffic: RTP offsets
        {27, 32, 35}, the type byte at position 8, the Table 2 mapping, and
        RTCP at offset 16."""
        payloads = _collect_payloads(sfu_meeting_result)
        discovery = discover_offsets(payloads)
        top_offsets = {
            offset for offset, count in discovery.rtp_offsets.items() if count > 50
        }
        assert {27, 32} <= top_offsets
        assert discovery.type_field_positions[0] == 8
        assert discovery.offset_by_type_value.get(15) == 27
        assert discovery.offset_by_type_value.get(16) == 32
        assert 16 in discovery.rtcp_offsets

    def test_discovers_p2p_offsets(self, p2p_meeting_result):
        """P2P payloads have no SFU layer: the type byte is position 0 and
        RTP offsets are 8 lower (Figure 7)."""
        payloads = []
        for captured in p2p_meeting_result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if not packet.is_udp:
                continue
            if 8801 in (packet.src_port, packet.dst_port):
                continue
            if packet.dst_port == 3478 or packet.src_port == 3478:
                continue
            payloads.append(packet.payload)
        assert payloads
        discovery = discover_offsets(payloads)
        top_offsets = {
            offset for offset, count in discovery.rtp_offsets.items() if count > 50
        }
        assert {19, 24} & top_offsets  # audio 19 and/or video 24
        if discovery.type_field_positions:
            assert discovery.type_field_positions[0] == 0

    def test_true_ssrcs_recovered(self, sfu_meeting_result):
        """Every SSRC with enough packets to clear the vote threshold is
        recovered; sparse streams (e.g. a mostly-static screen share) may
        legitimately stay below it."""
        from collections import Counter

        payloads = _collect_payloads(sfu_meeting_result, limit=10**9)
        per_ssrc = Counter()
        for payload in payloads:
            zoom = parse_zoom_payload(payload, from_server=True)
            if zoom.is_media:
                per_ssrc[zoom.rtp.ssrc] += 1
        discovery = discover_offsets(payloads)
        truth = {t.ssrc for t in sfu_meeting_result.stream_truths}
        recoverable = {ssrc for ssrc in truth if per_ssrc[ssrc] >= 8}
        assert recoverable
        assert recoverable <= discovery.ssrcs

    def test_random_noise_yields_nothing(self):
        rng = random.Random(9)
        payloads = [rng.randbytes(60) for _ in range(500)]
        discovery = discover_offsets(payloads)
        assert sum(discovery.rtp_offsets.values()) < 25
        assert not discovery.rtcp_offsets

    def test_empty_input(self):
        discovery = discover_offsets([])
        assert not discovery.rtp_offsets
        assert not discovery.ssrcs
        assert not discovery.type_field_positions
