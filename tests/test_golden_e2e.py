"""Golden end-to-end regression test.

Simulates the fixed scenario from :mod:`tests.golden_utils`, runs the full
pipeline (simulate → pcap on disk → read back → analyze), and compares a
stable summary against the checked-in snapshot.  Any drift in detection,
stream assembly, meeting grouping, the Table 2/3 share tables, or the
§5 metric estimators fails this test.

If the change is intentional, regenerate the snapshot and commit the diff::

    PYTHONPATH=src python tests/regen_golden.py
"""

from __future__ import annotations

import pytest

from tests.golden_utils import (
    GOLDEN_PATH,
    IMPAIRED_GOLDEN_PATH,
    WEBRTC_GOLDEN_PATH,
    compute_golden_summary,
    compute_impaired_summary,
    compute_webrtc_summary,
    load_golden_snapshot,
    load_impaired_snapshot,
    load_webrtc_snapshot,
)

REGEN_HINT = (
    "golden snapshot drift — if intentional, regenerate with "
    "`PYTHONPATH=src python tests/regen_golden.py` and commit the diff"
)


@pytest.fixture(scope="module")
def actual_summary(tmp_path_factory) -> dict:
    return compute_golden_summary(tmp_path_factory.mktemp("golden"))


class TestGoldenEndToEnd:
    def test_snapshot_exists(self):
        assert GOLDEN_PATH.is_file(), (
            "missing snapshot; run `PYTHONPATH=src python tests/regen_golden.py`"
        )

    def test_matches_snapshot(self, actual_summary):
        expected = load_golden_snapshot()
        if actual_summary == expected:
            return
        # Point at the drifted sections before failing on the full dict.
        drifted = sorted(
            key
            for key in set(expected) | set(actual_summary)
            if expected.get(key) != actual_summary.get(key)
        )
        assert actual_summary == expected, f"{REGEN_HINT}; drifted keys: {drifted}"

    def test_key_outputs_sane(self, actual_summary):
        """Guard the snapshot itself: a regen that produces a degenerate
        run (empty capture, no meetings) must not be committable silently."""
        assert actual_summary["packets"]["total"] > 5000
        assert actual_summary["packets"]["zoom"] > 0
        assert len(actual_summary["streams"]) >= 7
        assert actual_summary["meetings"], "expected at least one meeting"
        assert actual_summary["meetings"][0]["participant_estimate"] == 3
        # Table 2 analogue: media encapsulation shares must sum to ~100%.
        pkt_share = sum(row[1] for row in actual_summary["encap_share_table"])
        assert pkt_share == pytest.approx(100.0, abs=0.01)
        # The congested sender must surface retransmission evidence: Zoom
        # retries fill the sequence gaps, so upstream loss shows up as
        # duplicates (the §5.5 lower bound), not as unfilled gaps.
        assert any(s.get("duplicates", 0) > 0 for s in actual_summary["streams"])
        assert any(s.get("frames_completed", 0) > 0 for s in actual_summary["streams"])

    def test_telemetry_consistent_with_results(self, actual_summary):
        """The telemetry counters and the analysis outputs describe the
        same run: capture frames == packets fed == pipeline accounting."""
        tel = actual_summary["telemetry"]
        total = actual_summary["packets"]["total"]
        assert tel["capture.frames"] == total
        stops = sum(v for k, v in tel.items() if k.startswith("pipeline.stop."))
        assert stops + tel.get("pipeline.completed", 0) == total
        assert tel.get("demux.undecoded", 0) == actual_summary["packets"]["undecoded"]
        assert tel.get("assemble.stream_opened", 0) == len(actual_summary["streams"])


@pytest.fixture(scope="module")
def impaired_summary(tmp_path_factory) -> dict:
    return compute_impaired_summary(tmp_path_factory.mktemp("impaired"))


class TestImpairedGolden:
    """Pin the full QoE transition/alert sequence of the bandwidth-cliff
    scenario — times, states, reason strings, and ``qoe.*`` counters."""

    def test_snapshot_exists(self):
        assert IMPAIRED_GOLDEN_PATH.is_file(), (
            "missing snapshot; run `PYTHONPATH=src python tests/regen_golden.py`"
        )

    def test_matches_snapshot(self, impaired_summary):
        expected = load_impaired_snapshot()
        if impaired_summary == expected:
            return
        drifted = sorted(
            key
            for key in set(expected) | set(impaired_summary)
            if expected.get(key) != impaired_summary.get(key)
        )
        assert impaired_summary == expected, f"{REGEN_HINT}; drifted keys: {drifted}"

    def test_alert_sequence_sane(self, impaired_summary):
        """Guard the snapshot itself: a regen where the machine misses the
        impairment (or flaps) must not be committable silently."""
        transitions = impaired_summary["transitions"]
        (interval,) = impaired_summary["intervals"]
        assert len(transitions) == 2, transitions
        enter, leave = transitions
        assert enter["previous"] == "GOOD"
        assert enter["state"] == interval["expected_state"] == "IMPAIRED"
        assert interval["start"] <= enter["time"] <= interval["end"]
        assert leave["state"] == "GOOD"
        assert leave["time"] >= interval["end"]
        counters = impaired_summary["qoe_counters"]
        assert counters["transitions"] == 2
        assert counters["transitions_to.impaired"] == 1
        assert counters["alerts"] == 1


@pytest.fixture(scope="module")
def webrtc_summary(tmp_path_factory) -> dict:
    return compute_webrtc_summary(tmp_path_factory.mktemp("webrtc"))


class TestWebRTCGolden:
    """Pin the mixed-protocol (zoom+rtp) trace: the golden Zoom meeting
    plus one concurrent generic WebRTC call, analyzed with both registry
    plugins enabled."""

    def test_snapshot_exists(self):
        assert WEBRTC_GOLDEN_PATH.is_file(), (
            "missing snapshot; run `PYTHONPATH=src python tests/regen_golden.py`"
        )

    def test_matches_snapshot(self, webrtc_summary):
        expected = load_webrtc_snapshot()
        if webrtc_summary == expected:
            return
        drifted = sorted(
            key
            for key in set(expected) | set(webrtc_summary)
            if expected.get(key) != webrtc_summary.get(key)
        )
        assert webrtc_summary == expected, f"{REGEN_HINT}; drifted keys: {drifted}"

    def test_both_protocols_claimed(self, webrtc_summary):
        """Guard the snapshot itself: both plugins must contribute streams
        and every packet of either protocol must be claimed."""
        counters = webrtc_summary["protocol_counters"]
        assert counters["claimed.zoom"] > 0
        assert counters["claimed.rtp"] > 0
        protocols = {s.get("protocol", "zoom") for s in webrtc_summary["streams"]}
        assert protocols == {"zoom", "rtp"}
        rtp_rows = [
            s for s in webrtc_summary["streams"] if s.get("protocol") == "rtp"
        ]
        # The 1:1 call contributes exactly four streams: audio+video both ways.
        assert len(rtp_rows) == 4
        assert all(row["is_p2p"] for row in rtp_rows)
        assert any(row.get("frames_completed", 0) > 0 for row in rtp_rows)
        # SFU-only Zoom meeting has no STUN flows, so nothing is claimable
        # by both plugins on this trace.
        assert counters.get("conflicts", 0) == 0

    def test_zoom_half_matches_single_protocol_golden(self, webrtc_summary):
        """The Zoom meeting's streams come out identical whether or not
        the generic RTP plugin rides along — claim precedence isolates
        the plugins on disjoint flows."""
        zoom_rows = [
            {k: v for k, v in s.items()}
            for s in webrtc_summary["streams"]
            if s.get("protocol", "zoom") == "zoom"
        ]
        expected = load_golden_snapshot()["streams"]
        assert zoom_rows == expected
