"""Shared machinery for the golden end-to-end regression test.

One deterministic simulated meeting (fixed seed) is written to a pcap,
read back, and run through the full :class:`~repro.core.pipeline.ZoomAnalyzer`
exactly as ``zoom-analysis analyze`` would.  :func:`compute_golden_summary`
reduces the analysis to a stable, JSON-serialisable summary — stream
inventory, meeting grouping, encapsulation/payload-type share tables,
frame/jitter/loss statistics, and the shard-invariant telemetry counters.

The checked-in snapshot lives at ``tests/golden/meeting_small.json``.
When an *intentional* behaviour change shifts the numbers, regenerate it
with::

    PYTHONPATH=src python tests/regen_golden.py

and review the snapshot diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.config import AnalyzerConfig, ProtocolConfig, QoeConfig
from repro.core.pipeline import AnalysisResult
from repro.core.session import AnalysisSession
from repro.net.packet import CapturedPacket
from repro.net.pcap import write_pcap
from repro.net.source import PcapFileSource
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
    WebRTCCallConfig,
    impairment_suite,
    simulate_webrtc_call,
)
from repro.telemetry import shard_invariant_counters
from repro.zoom.constants import ZoomMediaType

GOLDEN_PATH = Path(__file__).parent / "golden" / "meeting_small.json"
IMPAIRED_GOLDEN_PATH = Path(__file__).parent / "golden" / "meeting_impaired.json"
WEBRTC_GOLDEN_PATH = Path(__file__).parent / "golden" / "webrtc_small.json"

#: Float fields are rounded before comparison so the snapshot is robust to
#: formatting, yet still catches any real drift in the estimators.
FLOAT_DIGITS = 6


def golden_config() -> MeetingConfig:
    """The fixed scenario behind the snapshot: a 3-party SFU meeting with
    one screen share and one congestion episode, fully seeded."""
    return MeetingConfig(
        meeting_id="golden-e2e",
        participants=(
            ParticipantConfig(
                name="alice",
                on_campus=True,
                congestion=(CongestionEvent(start=6.0, end=10.0, extra_loss=0.05),),
            ),
            ParticipantConfig(name="bob", on_campus=True, join_time=0.5),
            ParticipantConfig(
                name="carol",
                on_campus=False,
                join_time=1.5,
                media=(
                    ZoomMediaType.AUDIO,
                    ZoomMediaType.VIDEO,
                    ZoomMediaType.SCREEN_SHARE,
                ),
            ),
        ),
        duration=15.0,
        allow_p2p=False,
        seed=20221025,  # the paper's IMC '22 publication date
    )


def _round(value: float) -> float:
    return round(float(value), FLOAT_DIGITS)


def compute_golden_summary(tmp_dir: Path) -> dict[str, Any]:
    """Simulate, write pcap, stream back through the session; summarize.

    Exercises the production ingestion path end to end:
    ``AnalysisSession(config).run(PcapFileSource(path))``.
    """
    sim = MeetingSimulator(golden_config()).run()
    pcap_path = Path(tmp_dir) / "golden_meeting.pcap"
    write_pcap(pcap_path, sim.captures)

    session = AnalysisSession(AnalyzerConfig(telemetry=True))
    result = session.run(PcapFileSource(pcap_path))
    return summarize_result(result)


def summarize_result(result: AnalysisResult) -> dict[str, Any]:
    """Reduce an analysis result to the stable, JSON-serialisable summary.

    Shared by the golden snapshot test and the ingestion-equivalence tests:
    two runs are considered metric-identical iff their summaries compare
    equal.
    """
    streams = []
    for stream in sorted(result.media_streams(), key=lambda s: (s.first_time, s.ssrc)):
        metrics = result.metrics_for(stream.key)
        row: dict[str, Any] = {
            "ssrc": stream.ssrc,
            "media_type": stream.media_type_name,
            "is_p2p": stream.is_p2p,
            "to_server": stream.to_server,
            "packets": stream.packets,
            "bytes": stream.bytes,
            "duration": _round(stream.duration),
            "substreams": sorted(stream.substreams),
        }
        # Only non-Zoom plugins label their streams, so the pre-registry
        # snapshots (all-Zoom traces) stay byte-identical.
        if stream.protocol != "zoom":
            row["protocol"] = stream.protocol
        if metrics is not None:
            loss = metrics.loss.report(finalize=True)
            fps_samples = metrics.framerate_delivered.samples
            row.update(
                {
                    "frames_completed": metrics.assembler.completed_count,
                    "mean_fps": _round(
                        sum(s.fps for s in fps_samples) / len(fps_samples)
                    )
                    if fps_samples
                    else 0.0,
                    "jitter_ms": _round(metrics.jitter.jitter * 1000.0),
                    "received": loss.received,
                    "lost": loss.lost,
                    "duplicates": loss.duplicates,
                    "reordered": loss.reordered,
                    "loss_rate": _round(loss.loss_rate),
                }
            )
        streams.append(row)

    meetings = [
        {
            "streams": len(meeting.stream_uids),
            "participant_estimate": meeting.participant_estimate(),
            "duration": _round(meeting.duration),
        }
        for meeting in sorted(
            result.meetings, key=lambda m: -len(m.stream_uids)
        )
    ]

    encap_table = [
        [str(value), _round(pkt_share), _round(byte_share)]
        for value, pkt_share, byte_share in result.encap_share_table()
    ]
    payload_table = [
        [media_type, payload_type, _round(pkt_share), _round(byte_share)]
        for media_type, payload_type, pkt_share, byte_share in result.payload_type_table()
    ]

    return {
        "scenario": "golden-e2e seed=20221025 (3-party SFU, 15s)",
        "packets": {
            "total": result.packets_total,
            "zoom": result.packets_zoom,
            "bytes": result.bytes_total,
            "undecoded": result.undecoded_packets,
            "rtcp_sender_reports": result.rtcp_sender_reports,
            "rtcp_receiver_reports": result.rtcp_receiver_reports,
        },
        "streams": streams,
        "meetings": meetings,
        "encap_share_table": encap_table,
        "payload_type_table": payload_table,
        "telemetry": shard_invariant_counters(result.telemetry_snapshot()),
    }


def impaired_scenario():
    """The fixed impairment scenario behind the QoE snapshot: the suite's
    bandwidth cliff (seeded via the suite's master seed, so the snapshot and
    the ground-truth tests exercise the identical capture)."""
    for scenario in impairment_suite():
        if scenario.name == "bandwidth-cliff":
            return scenario
    raise LookupError("bandwidth-cliff missing from impairment_suite()")


def compute_impaired_summary(tmp_dir: Path) -> dict[str, Any]:
    """Simulate the impaired meeting and pin its full QoE alert sequence.

    Complements :func:`compute_golden_summary` (which pins the estimator
    outputs on a healthy meeting): this snapshot freezes every state-machine
    transition — times, states, reason strings — plus the ``qoe.*`` counters
    the alerting layer keys on.
    """
    scenario = impaired_scenario()
    sim = MeetingSimulator(scenario.meeting).run()
    pcap_path = Path(tmp_dir) / "impaired_meeting.pcap"
    write_pcap(pcap_path, sim.captures)

    session = AnalysisSession(AnalyzerConfig(telemetry=True, qoe=QoeConfig()))
    result = session.run(PcapFileSource(pcap_path))
    assert session.qoe is not None

    transitions = [
        {
            "meeting": meeting_id,
            "window_index": t.window_index,
            "time": _round(t.time),
            "previous": t.previous.name,
            "state": t.state.name,
            "windows_in_previous": t.windows_in_previous,
            "observation": t.observation,
            "reason": t.reason,
            "loss_fraction": _round(t.sample.loss_fraction),
            "jitter_ms": _round(t.sample.jitter_ms),
            "fps_ratio": _round(t.sample.fps_ratio),
        }
        for meeting_id, t in session.qoe.transitions
    ]
    snapshot = result.telemetry_snapshot()
    return {
        "scenario": f"{scenario.name} via impairment_suite() — {scenario.description}",
        "intervals": [
            {
                "start": interval.start,
                "end": interval.end,
                "kind": interval.kind,
                "expected_state": interval.expected_state,
            }
            for interval in scenario.intervals
        ],
        "packets": {
            "total": result.packets_total,
            "zoom": result.packets_zoom,
        },
        "transitions": transitions,
        "qoe_counters": snapshot.counters_under("qoe."),
    }


def webrtc_call_config() -> WebRTCCallConfig:
    """The fixed 1:1 WebRTC call behind the mixed-protocol snapshot."""
    return WebRTCCallConfig()  # every default is pinned by the golden


def mixed_protocol_config(**overrides: Any) -> AnalyzerConfig:
    """Analyzer configuration for the mixed zoom+rtp trace."""
    return AnalyzerConfig(
        campus_subnets=("10.8.0.0/16",),
        protocols=ProtocolConfig(protocols=("zoom", "rtp")),
        telemetry=True,
        **overrides,
    )


def mixed_trace_captures() -> list[CapturedPacket]:
    """The golden Zoom meeting plus one concurrent WebRTC call, merged in
    timestamp order — the trace every mixed-protocol equivalence test and
    the webrtc snapshot run over."""
    zoom = MeetingSimulator(golden_config()).run().captures
    webrtc = simulate_webrtc_call(webrtc_call_config()).captures
    return sorted([*zoom, *webrtc], key=lambda packet: packet.timestamp)


def compute_webrtc_summary(tmp_dir: Path) -> dict[str, Any]:
    """Analyze the mixed trace with both plugins enabled; summarize.

    The same end-to-end path as :func:`compute_golden_summary`, plus the
    ``protocols.*`` claim/media/conflict counters (shard-variant, so not
    part of the invariant telemetry block).
    """
    pcap_path = Path(tmp_dir) / "mixed_webrtc.pcap"
    write_pcap(pcap_path, mixed_trace_captures())

    session = AnalysisSession(mixed_protocol_config())
    result = session.run(PcapFileSource(pcap_path))
    summary = summarize_result(result)
    summary["scenario"] = (
        "mixed zoom+webrtc: golden-e2e meeting + 1:1 WebRTC call "
        "seed=20260808, protocols=zoom,rtp"
    )
    summary["protocol_counters"] = result.telemetry_snapshot().counters_under(
        "protocols."
    )
    return summary


def load_golden_snapshot() -> dict[str, Any]:
    return json.loads(GOLDEN_PATH.read_text())


def write_golden_snapshot(summary: dict[str, Any]) -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


def load_impaired_snapshot() -> dict[str, Any]:
    return json.loads(IMPAIRED_GOLDEN_PATH.read_text())


def write_impaired_snapshot(summary: dict[str, Any]) -> None:
    IMPAIRED_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    IMPAIRED_GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


def load_webrtc_snapshot() -> dict[str, Any]:
    return json.loads(WEBRTC_GOLDEN_PATH.read_text())


def write_webrtc_snapshot(summary: dict[str, Any]) -> None:
    WEBRTC_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    WEBRTC_GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
