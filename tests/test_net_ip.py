"""Tests for IPv4/IPv6 header handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum
from repro.net.ip import IPProtocol, IPv4Header, IPv6Header, ip_from_str, ip_to_str

SRC4 = ip_from_str("10.8.1.2")
DST4 = ip_from_str("170.114.10.5")


def _v4(**overrides) -> IPv4Header:
    defaults = dict(src=SRC4, dst=DST4, protocol=IPProtocol.UDP, total_length=120)
    defaults.update(overrides)
    return IPv4Header(**defaults)


def test_serialize_length_and_version():
    wire = _v4().serialize()
    assert len(wire) == 20
    assert wire[0] == 0x45  # version 4, IHL 5


def test_checksum_valid_on_serialize():
    assert internet_checksum(_v4().serialize()) == 0


def test_roundtrip():
    header = _v4(ttl=17, identification=4242, dscp=46, ecn=1)
    parsed, offset = IPv4Header.parse(header.serialize() + b"x" * 100)
    assert parsed == header
    assert offset == 20


def test_payload_length():
    assert _v4(total_length=120).payload_length == 100


def test_address_strings():
    header = _v4()
    assert header.src_str == "10.8.1.2"
    assert header.dst_str == "170.114.10.5"


def test_parse_rejects_corrupted_checksum():
    wire = bytearray(_v4().serialize())
    wire[10] ^= 0xFF
    with pytest.raises(ValueError):
        IPv4Header.parse(bytes(wire))


def test_parse_rejects_wrong_version():
    wire = bytearray(_v4().serialize())
    wire[0] = 0x65
    with pytest.raises(ValueError):
        IPv4Header.parse(bytes(wire))


def test_parse_rejects_short_buffer():
    with pytest.raises(ValueError):
        IPv4Header.parse(b"\x45" + b"\x00" * 10)


def test_parse_rejects_bad_ihl():
    wire = bytearray(_v4().serialize())
    wire[0] = 0x44  # IHL 4 < 5
    with pytest.raises(ValueError):
        IPv4Header.parse(bytes(wire))


def test_rejects_bad_address_length():
    with pytest.raises(ValueError):
        IPv4Header(src=b"\x00" * 3, dst=DST4, protocol=17, total_length=40)


def test_rejects_total_length_out_of_range():
    with pytest.raises(ValueError):
        _v4(total_length=10)
    with pytest.raises(ValueError):
        _v4(total_length=70000)


@given(
    ttl=st.integers(min_value=1, max_value=255),
    identification=st.integers(min_value=0, max_value=0xFFFF),
    total_length=st.integers(min_value=20, max_value=0xFFFF),
    dscp=st.integers(min_value=0, max_value=63),
    ecn=st.integers(min_value=0, max_value=3),
    protocol=st.integers(min_value=0, max_value=255),
)
def test_v4_roundtrip_property(ttl, identification, total_length, dscp, ecn, protocol):
    header = IPv4Header(
        src=SRC4,
        dst=DST4,
        protocol=protocol,
        total_length=total_length,
        ttl=ttl,
        identification=identification,
        dscp=dscp,
        ecn=ecn,
    )
    parsed, _offset = IPv4Header.parse(header.serialize())
    assert parsed == header


SRC6 = ip_from_str("2001:db8::1")
DST6 = ip_from_str("2001:db8::2")


def test_v6_roundtrip():
    header = IPv6Header(
        src=SRC6,
        dst=DST6,
        next_header=IPProtocol.UDP,
        payload_length=512,
        hop_limit=33,
        traffic_class=12,
        flow_label=0xABCDE,
    )
    parsed, offset = IPv6Header.parse(header.serialize())
    assert parsed == header
    assert offset == 40


def test_v6_rejects_wrong_version():
    wire = bytearray(
        IPv6Header(src=SRC6, dst=DST6, next_header=17, payload_length=0).serialize()
    )
    wire[0] = 0x45
    with pytest.raises(ValueError):
        IPv6Header.parse(bytes(wire))


def test_v6_rejects_short_buffer():
    with pytest.raises(ValueError):
        IPv6Header.parse(b"\x60" + b"\x00" * 20)


def test_v6_flow_label_range():
    with pytest.raises(ValueError):
        IPv6Header(src=SRC6, dst=DST6, next_header=17, payload_length=0, flow_label=1 << 20)


def test_ip_string_roundtrip():
    assert ip_to_str(ip_from_str("192.0.2.7")) == "192.0.2.7"
    assert ip_to_str(ip_from_str("2001:db8::5")) == "2001:db8::5"
