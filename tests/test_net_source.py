"""Tests for the unified ingestion layer (:mod:`repro.net.source`).

Covers the :class:`PacketSource` contract properties ISSUE'd for this
layer: streaming readers yield long before EOF (bounded memory),
directory sources order files by first capture timestamp rather than by
name, interleaved sources merge strictly by timestamp, and dispatch is
by magic bytes only.
"""

import itertools
import struct

import pytest

from repro.net.packet import CapturedPacket, ParsedPacket
from repro.net.pcap import write_pcap
from repro.net.source import (
    CaptureDirectorySource,
    InterleavedSource,
    IterableSource,
    PacketSource,
    PcapFileSource,
    PcapNgFileSource,
    SimulationSource,
    coerce_source,
    open_capture_source,
    read_capture,
    sniff_capture_format,
)
from repro.net.pcapng import PcapngWriter
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.telemetry import Telemetry


def _meeting_packets(seed=7, duration=4.0, participants=2):
    config = MeetingConfig(
        meeting_id=f"src-test-{seed}",
        participants=tuple(
            ParticipantConfig(name=f"p{i}", join_time=0.2 * i)
            for i in range(participants)
        ),
        duration=duration,
        allow_p2p=False,
        seed=seed,
    )
    return MeetingSimulator(config).run().captures


@pytest.fixture(scope="module")
def captures():
    return _meeting_packets()


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory, captures):
    path = tmp_path_factory.mktemp("src") / "meeting.pcap"
    write_pcap(path, captures)
    return path


class TestPcapFileSource:
    def test_satisfies_protocol(self, pcap_path):
        source = PcapFileSource(pcap_path)
        assert isinstance(source, PacketSource)
        source.close()

    def test_yields_parsed_packets_in_order(self, pcap_path, captures):
        with PcapFileSource(pcap_path) as source:
            parsed = list(source)
        assert len(parsed) == len(captures)
        assert all(isinstance(p, ParsedPacket) for p in parsed)
        timestamps = [p.timestamp for p in parsed]
        assert timestamps == sorted(timestamps)

    def test_counters_track_emission(self, pcap_path, captures):
        with PcapFileSource(pcap_path) as source:
            list(source)
            assert source.packets_emitted == len(captures)
            assert source.bytes_emitted == sum(len(c.data) for c in captures)

    def test_streaming_yields_before_eof(self, pcap_path):
        """The reader must hand over the first batch with most of the file
        still unread — the memory-boundedness contract."""
        size = pcap_path.stat().st_size
        with PcapFileSource(pcap_path, batch_size=4) as source:
            first = next(source.batches())
            assert len(first) == 4
            assert source.packets_emitted == 4
            consumed = source._reader._file.tell()
        assert consumed < size / 2

    def test_batch_size_validated(self, pcap_path):
        with pytest.raises(ValueError):
            PcapFileSource(pcap_path, batch_size=0)

    def test_telemetry_records_capture_counters(self, pcap_path, captures):
        telemetry = Telemetry(enabled=True)
        with PcapFileSource(pcap_path, telemetry=telemetry) as source:
            list(source)
        counters = telemetry.snapshot().counters
        assert counters["capture.frames"] == len(captures)
        assert counters["capture.bytes"] == sum(len(c.data) for c in captures)

    def test_attach_telemetry_adopts_when_bare(self, pcap_path):
        source = PcapFileSource(pcap_path)
        registry = Telemetry(enabled=True)
        source.attach_telemetry(registry)
        with source:
            list(source)
        assert registry.snapshot().counters["capture.frames"] > 0

    def test_attach_telemetry_keeps_explicit_registry(self, pcap_path):
        mine = Telemetry(enabled=True)
        source = PcapFileSource(pcap_path, telemetry=mine)
        other = Telemetry(enabled=True)
        source.attach_telemetry(other)
        with source:
            list(source)
        assert mine.snapshot().counters["capture.frames"] > 0
        assert "capture.frames" not in other.snapshot().counters


class TestIterableSource:
    def test_accepts_captured_and_parsed(self, captures):
        from repro.net.packet import parse_frame

        mixed = [
            parse_frame(c.data, c.timestamp) if i % 2 else c
            for i, c in enumerate(captures[:10])
        ]
        parsed = list(IterableSource(mixed))
        assert [p.timestamp for p in parsed] == [c.timestamp for c in captures[:10]]

    def test_never_materializes_the_iterator(self, captures):
        """Batching an endless generator must still return promptly."""
        frame = captures[0]
        endless = (
            CapturedPacket(float(i), frame.data) for i in itertools.count()
        )
        source = IterableSource(endless, batch_size=16)
        first = next(source.batches())
        assert len(first) == 16
        assert source.packets_emitted == 16


class TestSimulationSource:
    def test_emits_quantized_stream(self, captures):
        source = SimulationSource(captures)
        parsed = list(source)
        assert len(parsed) == len(captures)
        assert source.packets_emitted == len(captures)

    def test_matches_pcap_roundtrip_timestamps(self, pcap_path, captures):
        with PcapFileSource(pcap_path) as file_source:
            file_ts = [p.timestamp for p in file_source]
        sim_ts = [p.timestamp for p in SimulationSource(captures)]
        assert sim_ts == file_ts


class TestCaptureDirectorySource:
    @pytest.fixture()
    def rotated_dir(self, tmp_path):
        """Two capture files whose name order contradicts time order."""
        early = _meeting_packets(seed=11, duration=2.0)
        late = [CapturedPacket(c.timestamp + 1000.0, c.data) for c in early]
        # 'aa' sorts first by name but holds the *later* packets.
        write_pcap(tmp_path / "aa.pcap", late)
        write_pcap(tmp_path / "zz.pcap", early)
        return tmp_path, len(early)

    def test_orders_files_by_first_timestamp(self, rotated_dir):
        directory, per_file = rotated_dir
        source = CaptureDirectorySource(directory)
        assert [p.name for p in source.files] == ["zz.pcap", "aa.pcap"]
        timestamps = [p.timestamp for p in source]
        assert timestamps == sorted(timestamps)
        assert source.packets_emitted == 2 * per_file

    def test_equal_first_timestamps_tie_break_by_name(self, tmp_path):
        """Rotated capture files sharing a boundary timestamp must replay
        in a deterministic (name) order, whatever order the inputs or the
        directory listing presented them in."""
        packets = _meeting_packets(seed=13, duration=1.0)
        for name in ("cap-02.pcap", "cap-00.pcap", "cap-01.pcap"):
            write_pcap(tmp_path / name, packets)
        expected = ["cap-00.pcap", "cap-01.pcap", "cap-02.pcap"]
        source = CaptureDirectorySource(tmp_path)
        assert [p.name for p in source.files] == expected
        # Explicit path lists in any order resolve to the same plan.
        shuffled = [
            tmp_path / "cap-01.pcap",
            tmp_path / "cap-02.pcap",
            tmp_path / "cap-00.pcap",
        ]
        assert [
            p.name for p in CaptureDirectorySource(shuffled).files
        ] == expected

    def test_glob_pattern(self, rotated_dir):
        directory, per_file = rotated_dir
        source = CaptureDirectorySource(str(directory / "*.pcap"))
        assert len(source.files) == 2

    def test_counts_ingest_files(self, rotated_dir):
        directory, _ = rotated_dir
        telemetry = Telemetry(enabled=True)
        list(CaptureDirectorySource(directory, telemetry=telemetry))
        assert telemetry.snapshot().counters["ingest.files"] == 2

    def test_empty_glob_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CaptureDirectorySource(str(tmp_path / "*.pcap"))

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CaptureDirectorySource(tmp_path)


class TestInterleavedSource:
    def test_merges_by_timestamp(self, captures):
        evens = IterableSource(captures[0::2])
        odds = IterableSource(captures[1::2])
        merged = list(InterleavedSource(evens, odds))
        assert len(merged) == len(captures)
        timestamps = [p.timestamp for p in merged]
        assert timestamps == sorted(timestamps)

    def test_counts_sources(self, captures):
        telemetry = Telemetry(enabled=True)
        source = InterleavedSource(
            IterableSource(captures[:5]),
            IterableSource(captures[5:10]),
            telemetry=telemetry,
        )
        list(source)
        assert telemetry.snapshot().counters["ingest.sources"] == 2

    def test_requires_at_least_one_source(self):
        with pytest.raises(ValueError):
            InterleavedSource()


class TestFormatSniffing:
    def test_pcap_detected(self, pcap_path):
        assert sniff_capture_format(pcap_path) == "pcap"
        assert isinstance(open_capture_source(pcap_path), PcapFileSource)

    def test_pcapng_detected(self, tmp_path, captures):
        path = tmp_path / "capture.pcap"  # lying extension on purpose
        with PcapngWriter(path) as writer:
            for packet in captures[:20]:
                writer.write(packet)
        assert sniff_capture_format(path) == "pcapng"
        source = open_capture_source(path)
        assert isinstance(source, PcapNgFileSource)
        assert len(list(source)) == 20

    def test_nanosecond_magic_detected(self, tmp_path):
        path = tmp_path / "nanos.pcap"
        path.write_bytes(
            struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 1)
        )
        assert sniff_capture_format(path) == "pcap"

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02\x03rubbish")
        with pytest.raises(ValueError):
            sniff_capture_format(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "tiny.pcap"
        path.write_bytes(b"\xd4")
        with pytest.raises(ValueError):
            sniff_capture_format(path)


class TestCoerceSource:
    def test_path_opens_file_source(self, pcap_path):
        assert isinstance(coerce_source(str(pcap_path)), PcapFileSource)
        assert isinstance(coerce_source(pcap_path), PcapFileSource)

    def test_iterable_wrapped(self, captures):
        source = coerce_source(captures[:5])
        assert isinstance(source, IterableSource)
        assert len(list(source)) == 5

    def test_source_passes_through(self, pcap_path):
        original = PcapFileSource(pcap_path)
        assert coerce_source(original) is original
        original.close()

    def test_passthrough_adopts_telemetry(self, pcap_path):
        registry = Telemetry(enabled=True)
        source = coerce_source(PcapFileSource(pcap_path), telemetry=registry)
        with source:
            list(source)
        assert registry.snapshot().counters["capture.frames"] > 0

    def test_rejects_non_source(self):
        with pytest.raises(TypeError):
            coerce_source(42)


class TestReadCaptureCompat:
    def test_returns_captured_packets_with_warning(self, pcap_path, captures):
        with pytest.deprecated_call():
            packets = read_capture(pcap_path)
        assert len(packets) == len(captures)
        assert all(isinstance(p, CapturedPacket) for p in packets)
        assert [p.timestamp for p in packets] == [
            p.timestamp for p in PcapFileSource(pcap_path)
        ]
