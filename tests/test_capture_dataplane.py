"""Tests for the switch-feasible approximate metric estimators (§8)."""

import pytest

from repro.capture.dataplane import (
    DataplaneBitrateCounter,
    DataplaneFrameRateCounter,
    DataplaneJitterEstimator,
    DataplaneMetrics,
    reciprocal_fixed,
    stream_key_bytes,
)
from repro.core.streams import RTPPacketRecord

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def packet(seq, rtp_ts, t, *, ssrc=0x110, payload_type=98, size=900):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=FT,
        ssrc=ssrc,
        payload_type=payload_type,
        sequence=seq & 0xFFFF,
        rtp_timestamp=rtp_ts & 0xFFFFFFFF,
        marker=False,
        media_type=16,
        payload_len=size,
        udp_payload_len=size + 50,
        packets_in_frame=1,
        to_server=True,
    )


def test_reciprocal_fixed_point_accuracy():
    reciprocal = reciprocal_fixed(90_000)
    # One frame at 30 fps = 3000 ticks ≈ 33333 µs.
    assert (3000 * reciprocal) >> 16 == pytest.approx(33333, abs=2)
    # One 20 ms audio frame at 48 kHz.
    assert (960 * reciprocal_fixed(48_000)) >> 16 == pytest.approx(20_000, abs=2)


class TestJitter:
    def test_clean_stream_near_zero(self):
        estimator = DataplaneJitterEstimator()
        reference = None
        for i in range(100):
            p = packet(i, i * 3000, 1.0 + i / 30.0)
            estimator.observe(p)
            reference = p
        assert estimator.jitter_seconds(reference) < 0.0005

    def test_matches_exact_estimator_under_noise(self):
        """The integer/shift version tracks the float RFC 3550 estimator
        within a fraction of a millisecond."""
        import random

        from repro.core.metrics.jitter import FrameJitterEstimator

        rng = random.Random(3)
        approximate = DataplaneJitterEstimator()
        exact = FrameJitterEstimator(90_000)
        reference = None
        for i in range(400):
            noise = rng.uniform(0, 0.012)
            p = packet(i, i * 3000, 1.0 + i / 30.0 + noise)
            approximate.observe(p)
            exact.observe(p)
            reference = p
        assert approximate.jitter_seconds(reference) == pytest.approx(
            exact.jitter, abs=0.0008
        )

    def test_fec_excluded(self):
        estimator = DataplaneJitterEstimator()
        estimator.observe(packet(0, 0, 1.0))
        estimator.observe(packet(500, 90_000, 5.0, payload_type=110))
        assert estimator.updates == 0

    def test_bucket_collision_shares_state(self):
        """One-bucket array: two streams corrupt each other's jitter — the
        documented accuracy limit of hash-indexed registers."""
        estimator = DataplaneJitterEstimator(buckets=1)
        a = packet(0, 0, 1.0, ssrc=1)
        b = packet(0, 500_000, 1.005, ssrc=2)
        estimator.observe(a)
        estimator.observe(b)  # lands in the same slot
        estimator.observe(packet(1, 3000, 1.033, ssrc=1))
        assert estimator.jitter_seconds(a) > 0.001  # polluted

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            DataplaneJitterEstimator(buckets=0)


class TestFrameRate:
    def test_steady_rate_counted(self):
        counter = DataplaneFrameRateCounter()
        reference = None
        for i in range(95):
            p = packet(i, i * 3000, 1.0 + i / 30.0)
            counter.observe(p)
            reference = p
        assert counter.rate(reference) == pytest.approx(30, abs=2)

    def test_multi_packet_frames_counted_once(self):
        counter = DataplaneFrameRateCounter()
        reference = None
        seq = 0
        for i in range(60):
            for j in range(3):  # 3 packets per frame, consecutive
                p = packet(seq, i * 3000, 1.0 + i / 20.0 + j * 0.0005)
                counter.observe(p)
                reference = p
                seq += 1
        assert counter.rate(reference) == pytest.approx(20, abs=2)

    def test_rate_change_reflected_next_window(self):
        counter = DataplaneFrameRateCounter()
        reference = None
        t, ts = 1.0, 0
        for i in range(30):
            counter.observe(packet(i, ts, t)); t += 1 / 30.0; ts += 3000
        for i in range(40):
            p = packet(100 + i, ts, t); counter.observe(p); t += 1 / 15.0; ts += 6000
            reference = p
        assert counter.rate(reference) == pytest.approx(15, abs=3)


class TestBitrate:
    def test_window_bytes(self):
        counter = DataplaneBitrateCounter()
        reference = None
        for i in range(60):
            p = packet(i, i * 3000, 1.0 + i / 30.0, size=1000)
            counter.observe(p)
            reference = p
        # 30 packets x 1000 B x 8 = 240 kbit in the completed window.
        assert counter.bits_per_second(reference) == pytest.approx(240_000, rel=0.15)


class TestCombined:
    def test_resource_estimate_within_budget(self):
        metrics = DataplaneMetrics(buckets=4096)
        estimate = metrics.resource_estimate()
        assert estimate["sram_percent"] < 5.0

    def test_processes_real_stream(self, analyzed_sfu, sfu_meeting_result):
        """Drive the data-plane estimators with the fixture's records and
        compare against the exact per-stream results."""
        metrics = DataplaneMetrics(buckets=8192)
        stream = next(
            s for s in analyzed_sfu.media_streams()
            if s.ssrc == 0x110 and s.to_server is True
        )
        # Re-derive the records by re-analyzing with record retention.
        from repro.core import ZoomAnalyzer

        result = ZoomAnalyzer(keep_records=True).analyze(sfu_meeting_result.captures)
        retained = result.streams.get(stream.key)
        reference = None
        for record in retained.records:
            metrics.observe(record)
            reference = record
        exact = result.metrics_for(stream.key)
        assert metrics.jitter.jitter_seconds(reference) == pytest.approx(
            exact.jitter.jitter, abs=0.002
        )
        fps_samples = [s.fps for s in exact.framerate_delivered.samples if s.time > stream.last_time - 2]
        if fps_samples:
            assert metrics.framerate.rate(reference) == pytest.approx(
                sum(fps_samples) / len(fps_samples), abs=8
            )

    def test_key_stability(self):
        p = packet(1, 2, 3.0)
        assert stream_key_bytes(p) == stream_key_bytes(p)
