"""Regression tests: idle-stream eviction treats P2P streams consistently.

P2P streams never see a server packet, so their classification rests on the
STUN-learned endpoint table.  Two historical inconsistencies versus
server-relayed streams:

* an *active* P2P flow outliving ``stun_timeout`` stopped being classified
  mid-stream (media never refreshed the binding), so the rolling sweep later
  finalized a stream that was in fact still running, with a truncated packet
  count;
* STUN bindings for endpoints that never sent media were only expired lazily
  (on a lookup of that exact endpoint), so detector state grew without bound
  in continuous operation — the exact failure mode the sweep exists to
  prevent.
"""

from repro.core import AnalyzerConfig, ZoomAnalyzer
from repro.core.rolling import RollingZoomAnalyzer
from repro.net.packet import CapturedPacket, build_udp_frame
from repro.rtp.rtp import RTPHeader
from repro.rtp.stun import StunMessage
from repro.zoom.constants import ZoomMediaType
from repro.zoom.media_encap import MediaEncap
from repro.zoom.packets import build_media_payload

ZC = "170.114.200.9"  # Zoom zone controller (inside the published subnets)
CLIENT = "10.8.1.20"
IDLE_CLIENT = "10.8.1.21"  # STUNs but never sends media
PEER = "198.18.2.30"
P2P_PORT = 52001


def _stun_frame(ts: float, client: str = CLIENT, port: int = P2P_PORT) -> CapturedPacket:
    payload = StunMessage.binding_request(b"abcdefghijkl").serialize()
    return CapturedPacket(ts, build_udp_frame(client, port, ZC, 3478, payload))


def _p2p_media_frame(ts: float, seq: int) -> CapturedPacket:
    payload = build_media_payload(
        media=MediaEncap(
            media_type=ZoomMediaType.AUDIO,
            sequence=seq & 0xFFFF,
            timestamp=(seq * 640) & 0xFFFFFFFF,
        ),
        rtp=RTPHeader(
            payload_type=112,
            sequence=seq & 0xFFFF,
            timestamp=(seq * 640) & 0xFFFFFFFF,
            ssrc=0x99,
        ),
        rtp_payload=b"a" * 60,
    )
    return CapturedPacket(ts, build_udp_frame(CLIENT, P2P_PORT, PEER, 53000, payload))


def _long_p2p_capture(duration: float = 400.0) -> list[CapturedPacket]:
    """One STUN exchange, then one P2P audio packet per second — a flow that
    outlives the default 120 s STUN timeout more than threefold."""
    packets = [_stun_frame(0.0)]
    packets.extend(
        _p2p_media_frame(1.0 + second, seq=second) for second in range(int(duration))
    )
    return packets


class TestActiveP2PFlowOutlivesStunTimeout:
    def test_offline_stream_not_cut_mid_flow(self):
        captures = _long_p2p_capture()
        result = ZoomAnalyzer(AnalyzerConfig(stun_timeout=120.0)).analyze(captures)
        streams = result.media_streams()
        assert len(streams) == 1
        (stream,) = streams
        assert stream.is_p2p
        # Every media packet lands on the one stream; before the binding
        # refresh the count froze around the 120 s mark.
        assert stream.packets == 400
        assert stream.last_time > 390.0

    def test_rolling_finalizes_full_stream_once_idle(self):
        captures = _long_p2p_capture()
        config = AnalyzerConfig(
            stun_timeout=120.0, rolling_idle_timeout=60.0, rolling_sweep_interval=10.0
        )
        rolling = RollingZoomAnalyzer(config)
        for packet in captures:
            rolling.feed(packet)
        # Active throughout the capture: nothing may be evicted mid-flow.
        assert rolling.streams_evicted == 0
        assert rolling.live_stream_count() == 1
        # Idle for longer than the idle timeout: the sweep finalizes it with
        # the complete packet count, same as a server stream would be.
        rolling.sweep(captures[-1].timestamp + 61.0)
        assert rolling.live_stream_count() == 0
        assert len(rolling.finalized) == 1
        assert rolling.finalized[0].packets == 400


class TestSweepPurgesStunState:
    def test_expired_bindings_dropped_by_sweep(self):
        captures = [_stun_frame(0.0, IDLE_CLIENT, 60001), *_long_p2p_capture(30.0)]
        config = AnalyzerConfig(stun_timeout=120.0, rolling_idle_timeout=60.0)
        rolling = RollingZoomAnalyzer(config)
        rolling.analyze(captures)
        tracker = rolling.analyzer.result.detector.stun
        # Both the media-carrying endpoint and the idle one are remembered.
        assert len(tracker) == 2
        rolling.sweep(1000.0)
        # Well past the STUN timeout: the sweep purges both (the idle
        # endpoint would otherwise linger forever — it is never looked up).
        assert len(tracker) == 0

    def test_purge_keeps_fresh_bindings(self):
        captures = _long_p2p_capture(30.0)
        config = AnalyzerConfig(stun_timeout=120.0, rolling_idle_timeout=200.0)
        rolling = RollingZoomAnalyzer(config)
        rolling.analyze(captures)
        tracker = rolling.analyzer.result.detector.stun
        assert len(tracker) == 1
        # Media refreshed the binding until ~t=30, so at t=100 it is alive.
        rolling.sweep(100.0)
        assert len(tracker) == 1

    def test_purge_counted_in_telemetry(self):
        captures = [_stun_frame(0.0, IDLE_CLIENT, 60001)]
        config = AnalyzerConfig(stun_timeout=10.0, telemetry=True)
        rolling = RollingZoomAnalyzer(config)
        rolling.analyze(captures)
        rolling.sweep(100.0)
        snapshot = rolling.result.telemetry_snapshot()
        assert snapshot.counter("rolling.stun_purged") == 1
