"""Tests for the ground-truth QoS feed (the Zoom-SDK stand-in)."""

import math

import pytest

from repro.simulation.qos import QoSCollector, QoSReport, QoSSample


def sample(time, ssrc=0x10, **overrides):
    defaults = dict(
        time=time,
        meeting_id="m",
        participant="a",
        media_type=16,
        ssrc=ssrc,
        sent_frames=28,
        sent_packets=60,
        sent_bytes=80_000,
        delivered_frames=28,
        latency_ms=32.0,
        true_latency_ms=32.0,
        jitter_ms=0.5,
        true_jitter_ms=1.0,
        encoder_fps=28.0,
    )
    defaults.update(overrides)
    return QoSSample(**defaults)


class TestReport:
    def test_for_stream_sorted(self):
        report = QoSReport()
        report.add(sample(3.0))
        report.add(sample(1.0))
        report.add(sample(2.0, ssrc=0x99))
        rows = report.for_stream(0x10)
        assert [s.time for s in rows] == [1.0, 3.0]

    def test_series_extraction(self):
        report = QoSReport()
        report.add(sample(1.0, encoder_fps=28.0))
        report.add(sample(2.0, encoder_fps=14.0))
        times, values = report.series(0x10, "encoder_fps")
        assert times == [1.0, 2.0]
        assert values == [28.0, 14.0]

    def test_value_at_latest_before(self):
        report = QoSReport()
        report.add(sample(1.0, encoder_fps=28.0))
        report.add(sample(5.0, encoder_fps=14.0))
        assert report.value_at(0x10, "encoder_fps", 3.0) == 28.0
        assert report.value_at(0x10, "encoder_fps", 6.0) == 14.0
        assert report.value_at(0x10, "encoder_fps", 0.5) is None

    def test_streams_listing(self):
        report = QoSReport()
        report.add(sample(1.0, ssrc=1))
        report.add(sample(1.0, ssrc=2))
        assert report.streams() == [("m", 1), ("m", 2)]

    def test_meeting_filter(self):
        report = QoSReport()
        report.add(sample(1.0))
        report.add(sample(2.0, meeting_id="other"))
        assert len(report.for_stream(0x10, meeting_id="m")) == 1


class TestCollector:
    def test_counters_reset_each_window(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        collector.record_frame_sent(1)
        collector.record_frame_sent(1)
        collector.flush(1.0)
        collector.record_frame_sent(1)
        collector.flush(2.0)
        rows = collector.report.for_stream(1)
        assert [s.sent_frames for s in rows] == [2, 1]

    def test_latency_display_refresh_cadence(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        for second in range(1, 13):
            collector.record_latency(1, 0.010 * second)
            collector.flush(float(second))
        rows = collector.report.for_stream(1)
        displayed = [s.latency_ms for s in rows]
        # First window displays; then holds for 5 s before refreshing.
        assert displayed[0] == pytest.approx(10.0)
        assert displayed[1] == displayed[0]
        assert len(set(displayed)) <= 4

    def test_true_latency_always_fresh(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        for second in range(1, 5):
            collector.record_latency(1, 0.010 * second)
            collector.flush(float(second))
        trues = [s.true_latency_ms for s in collector.report.for_stream(1)]
        assert trues == pytest.approx([10.0, 20.0, 30.0, 40.0])

    def test_no_latency_samples_nan(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        collector.flush(1.0)
        row = collector.report.for_stream(1)[0]
        assert math.isnan(row.true_latency_ms)

    def test_jitter_smoothing_difference(self):
        """The true jitter estimator converges much faster than the
        Zoom-style over-smoothed one."""
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        arrival = 0.0
        media = 0.0
        for i in range(300):
            arrival += 1 / 30.0 + (0.010 if i % 2 else 0.0)  # alternating delay
            media += 1 / 30.0
            collector.record_frame_arrival(1, arrival, media)
        collector.flush(10.0)
        row = collector.report.for_stream(1)[0]
        assert row.true_jitter_ms > 3 * row.jitter_ms

    def test_frame_delivery_counted(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        for _ in range(5):
            collector.record_frame_delivered(1)
        collector.flush(1.0)
        assert collector.report.for_stream(1)[0].delivered_frames == 5

    def test_encoder_rate_updates(self):
        collector = QoSCollector("m")
        collector.register_stream(1, "a", 16, 28.0)
        collector.flush(1.0)
        collector.record_encoder_rate(1, 14.0)
        collector.flush(2.0)
        rows = collector.report.for_stream(1)
        assert [s.encoder_fps for s in rows] == [28.0, 14.0]
