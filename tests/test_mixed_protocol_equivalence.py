"""Ingestion-path equivalence on the mixed zoom+rtp protocol trace.

The registry refactor must hold the same invariants the Zoom-only pipeline
already proves for itself: the batch-vectorized fast path (whose prefilter
now compiles the **union** of the enabled plugins' match-action rules) and
the flow-sharded driver must produce metric-identical results to the
scalar one-packet-at-a-time path, on a trace where both plugins claim
traffic concurrently.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ZoomAnalyzer
from repro.core.sharded import ShardedAnalyzer
from repro.net.batch import FrameBatchBuilder
from repro.telemetry import shard_invariant_counters

from tests.golden_utils import (
    mixed_protocol_config,
    mixed_trace_captures,
    summarize_result,
)

BATCH_FRAMES = 256


@pytest.fixture(scope="module")
def mixed_captures():
    return mixed_trace_captures()


@pytest.fixture(scope="module")
def scalar_result(mixed_captures):
    analyzer = ZoomAnalyzer(mixed_protocol_config())
    for packet in mixed_captures:
        analyzer.feed(packet)
    return analyzer.result


def _batches(captures):
    builder = FrameBatchBuilder()
    for packet in captures:
        builder.append(packet.data, packet.timestamp)
        if len(builder) >= BATCH_FRAMES:
            yield builder.build()
            builder = FrameBatchBuilder()
    if len(builder):
        yield builder.build()


class TestMixedBatchEquivalence:
    def test_batch_path_metric_identical(self, mixed_captures, scalar_result):
        batched = ZoomAnalyzer(mixed_protocol_config())
        for batch in _batches(mixed_captures):
            batched.feed_batch(batch)
        assert summarize_result(batched.result) == summarize_result(scalar_result)

    def test_batch_path_counter_identical(self, mixed_captures, scalar_result):
        batched = ZoomAnalyzer(mixed_protocol_config())
        for batch in _batches(mixed_captures):
            batched.feed_batch(batch)
        assert shard_invariant_counters(
            batched.result.telemetry_snapshot()
        ) == shard_invariant_counters(scalar_result.telemetry_snapshot())

    def test_prefilter_drops_nothing_claimable(self, mixed_captures, scalar_result):
        """Every packet either plugin claims on the scalar path survives
        the compiled union prefilter: claimed counts match exactly."""
        batched = ZoomAnalyzer(mixed_protocol_config())
        for batch in _batches(mixed_captures):
            batched.feed_batch(batch)
        scalar = scalar_result.telemetry_snapshot().counters
        vector = batched.result.telemetry_snapshot().counters
        for name in ("protocols.claimed.zoom", "protocols.claimed.rtp"):
            assert vector[name] == scalar[name]
        assert batched.result.packets_zoom == scalar_result.packets_zoom


class TestMixedShardedEquivalence:
    def test_two_shards_metric_identical(self, mixed_captures, scalar_result):
        sharded = ShardedAnalyzer(
            mixed_protocol_config(shards=2, shard_backend="serial")
        ).analyze(mixed_captures)
        assert summarize_result(sharded) == summarize_result(scalar_result)

    def test_two_shards_counter_identical(self, mixed_captures, scalar_result):
        sharded = ShardedAnalyzer(
            mixed_protocol_config(shards=2, shard_backend="serial")
        ).analyze(mixed_captures)
        assert shard_invariant_counters(
            sharded.telemetry_snapshot()
        ) == shard_invariant_counters(scalar_result.telemetry_snapshot())

    def test_rtp_streams_survive_sharding(self, mixed_captures):
        sharded = ShardedAnalyzer(
            mixed_protocol_config(shards=2, shard_backend="serial")
        ).analyze(mixed_captures)
        rtp_streams = [
            stream
            for stream in sharded.media_streams()
            if stream.protocol == "rtp"
        ]
        assert len(rtp_streams) == 4  # audio+video, both directions
