"""Segment-layer tests: frame codec, active recovery, sealing, footers."""

import gzip
import io
import json
import struct

import pytest

from repro.store.segment import (
    SEGMENT_MAGIC,
    ActiveSegment,
    SegmentMeta,
    encode_frame,
    iter_frames,
    read_sealed_segment,
    read_segment_footer,
    recover_active,
    seal_segment,
    write_sealed_segment,
)


def _window(index: int, *, media: str = "video") -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": 100 + index,
        "media": [{"media": media, "packets": 90, "bytes": 9000}],
    }


class TestFrameCodec:
    def test_round_trip(self):
        records = [_window(i) for i in range(5)]
        blob = b"".join(encode_frame(r) for r in records)
        assert list(iter_frames(io.BytesIO(blob))) == records

    def test_stops_at_torn_header(self):
        blob = encode_frame(_window(0)) + b"\x00\x00"
        assert len(list(iter_frames(io.BytesIO(blob)))) == 1

    def test_stops_at_corrupt_crc(self):
        good = encode_frame(_window(0))
        bad = bytearray(encode_frame(_window(1)))
        bad[-1] ^= 0xFF  # flip one payload byte; CRC no longer matches
        frames = list(iter_frames(io.BytesIO(good + bytes(bad))))
        assert frames == [_window(0)]

    def test_stops_at_absurd_length(self):
        huge = struct.pack(">II", 1 << 30, 0)
        assert list(iter_frames(io.BytesIO(huge))) == []

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_frame({"kind": "stream", "mean_fps": float("nan")})


class TestSegmentMeta:
    def test_observe_accumulates_index_fields(self):
        meta = SegmentMeta(partition=3)
        meta.observe(_window(1))
        meta.observe(_window(2, media="audio"))
        meta.observe(
            {"kind": "meeting", "start": 5.0, "end": 25.0, "meeting_id": 42}
        )
        meta.observe(
            {"kind": "stream", "start": 6.0, "end": 20.0, "media": "video"}
        )
        assert meta.records == 4
        assert meta.kinds == {"window": 2, "meeting": 1, "stream": 1}
        assert meta.meetings == {42}
        assert meta.media == {"video", "audio"}
        assert meta.start == 5.0 and meta.end == 30.0

    def test_footer_round_trip(self):
        meta = SegmentMeta(partition=1)
        for i in range(3):
            meta.observe(_window(i))
        rebuilt = SegmentMeta.from_footer(meta.footer_record())
        assert rebuilt.records == meta.records
        assert rebuilt.kinds == meta.kinds
        assert (rebuilt.start, rebuilt.end) == (meta.start, meta.end)


class TestActiveSegment:
    def test_append_and_read_back(self, tmp_path):
        active = ActiveSegment(tmp_path / "active-p0.seg", 0)
        for i in range(4):
            active.append(_window(i))
        assert active.records_on_disk() == [_window(i) for i in range(4)]
        assert active.meta.records == 4
        active.close()

    def test_reopen_resumes_appending(self, tmp_path):
        path = tmp_path / "active-p0.seg"
        first = ActiveSegment(path, 0)
        first.append(_window(0))
        first.close()
        second = ActiveSegment(path, 0)
        assert second.meta.records == 1
        assert not second.recovered_truncated
        second.append(_window(1))
        assert second.records_on_disk() == [_window(0), _window(1)]
        second.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "active-p0.seg"
        active = ActiveSegment(path, 0)
        for i in range(3):
            active.append(_window(i))
        active.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:  # simulate a kill mid-append
            handle.write(encode_frame(_window(3))[:11])
        recovered = ActiveSegment(path, 0)
        assert recovered.recovered_truncated
        assert recovered.meta.records == 3
        assert path.stat().st_size == intact
        recovered.close()

    def test_garbage_file_reset(self, tmp_path):
        path = tmp_path / "active-p0.seg"
        path.write_bytes(b"not a segment at all")
        recovered = recover_active(path, 0)
        assert recovered.truncated
        assert recovered.meta.records == 0
        assert path.read_bytes() == SEGMENT_MAGIC


class TestSealing:
    def test_seal_is_atomic_and_removes_active(self, tmp_path):
        active = ActiveSegment(tmp_path / "active-p0.seg", 0)
        records = [_window(i) for i in range(3)]
        for record in records:
            active.append(record)
        sealed_path = tmp_path / "seg-p0-0000.segz"
        meta = seal_segment(active, sealed_path)
        assert meta.records == 3
        assert not active.path.exists()
        assert not sealed_path.with_name(sealed_path.name + ".tmp").exists()
        read, footer = read_sealed_segment(sealed_path)
        assert read == records
        assert footer is not None and footer.records == 3

    def test_sealing_is_deterministic(self, tmp_path):
        """Same records → byte-identical segments (gzip mtime pinned)."""
        records = [_window(i) for i in range(4)]
        write_sealed_segment(tmp_path / "a.segz", records, 0)
        write_sealed_segment(tmp_path / "b.segz", records, 0)
        assert (tmp_path / "a.segz").read_bytes() == (
            tmp_path / "b.segz"
        ).read_bytes()

    def test_footer_readable_without_trusting_manifest(self, tmp_path):
        records = [_window(i) for i in range(2)]
        write_sealed_segment(tmp_path / "seg.segz", records, 7)
        footer = read_segment_footer(tmp_path / "seg.segz")
        assert footer is not None
        assert footer.partition == 7
        assert footer.records == 2

    def test_non_segment_gzip_rejected(self, tmp_path):
        path = tmp_path / "bogus.segz"
        path.write_bytes(gzip.compress(json.dumps({"x": 1}).encode()))
        with pytest.raises(ValueError, match="not a store segment"):
            read_sealed_segment(path)
