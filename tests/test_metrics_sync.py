"""Tests for RTCP-based clock mapping and stream synchronization."""

import pytest

from repro.core.metrics.sync import SenderReportCollector
from repro.rtp.rtcp import RTCPSenderReport, ntp_from_unix


def _sr(ssrc, rtp_ts, wall):
    seconds, fraction = ntp_from_unix(wall)
    return RTCPSenderReport(
        ssrc=ssrc, ntp_seconds=seconds, ntp_fraction=fraction,
        rtp_timestamp=rtp_ts & 0xFFFFFFFF, packet_count=0, octet_count=0,
    )


def _feed_linear(collector, ssrc, *, rate, start_rtp=1000, start_wall=100.0, count=30):
    for i in range(count):
        collector.observe(_sr(ssrc, start_rtp + i * rate, start_wall + i))


class TestClockMapping:
    def test_rate_recovered(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 0x110, rate=90_000)
        mapping = collector.mapping(0x110)
        assert mapping is not None
        assert mapping.rate == pytest.approx(90_000, rel=1e-6)
        assert mapping.reports == 30

    def test_wall_time_projection(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 0x110, rate=90_000, start_rtp=0, start_wall=50.0)
        mapping = collector.mapping(0x110)
        # RTP 45000 = 0.5 s after the first report's media instant.
        assert mapping.wall_time_of(45_000) == pytest.approx(50.5, abs=1e-6)

    def test_wraparound_timestamps(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 0x110, rate=90_000, start_rtp=(1 << 32) - 200_000)
        mapping = collector.mapping(0x110)
        assert mapping.rate == pytest.approx(90_000, rel=1e-5)

    def test_needs_two_reports(self):
        collector = SenderReportCollector()
        collector.observe(_sr(1, 0, 100.0))
        assert collector.mapping(1) is None
        assert collector.mapping(2) is None

    def test_nominal_rate_snapping(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 1, rate=90_011)  # slightly drifted clock
        assert collector.nominal_rate(1) == 90_000
        _feed_linear(collector, 2, rate=48_005)
        assert collector.nominal_rate(2) == 48_000

    def test_degenerate_same_wall_times(self):
        collector = SenderReportCollector()
        collector.observe(_sr(1, 0, 100.0))
        collector.observe(_sr(1, 3000, 100.0))
        assert collector.mapping(1) is None

    def test_memory_bounded(self):
        collector = SenderReportCollector(max_reports_per_stream=10)
        _feed_linear(collector, 1, rate=90_000, count=100)
        assert collector.report_count(1) == 10
        assert collector.mapping(1).rate == pytest.approx(90_000, rel=1e-6)


class TestSkew:
    def test_synced_streams_zero_skew(self):
        """Audio at 48 kHz and video at 90 kHz sampling the same media
        timeline: simultaneous timestamps map to the same wall instant."""
        collector = SenderReportCollector()
        _feed_linear(collector, 0x10F, rate=48_000, start_rtp=500, start_wall=100.0)
        _feed_linear(collector, 0x110, rate=90_000, start_rtp=9_000, start_wall=100.0)
        # Both at media instant = 5 s after the first reports.
        skew = collector.skew(0x10F, 500 + 5 * 48_000, 0x110, 9_000 + 5 * 90_000)
        assert skew == pytest.approx(0.0, abs=1e-6)

    def test_lipsync_offset_detected(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 0x10F, rate=48_000, start_rtp=0, start_wall=100.0)
        _feed_linear(collector, 0x110, rate=90_000, start_rtp=0, start_wall=100.0)
        # Audio is 120 ms ahead of video in media time.
        audio_rtp = int(5.12 * 48_000)
        video_rtp = int(5.00 * 90_000)
        skew = collector.skew(0x10F, audio_rtp, 0x110, video_rtp)
        assert skew == pytest.approx(0.120, abs=1e-6)

    def test_skew_requires_both_mappings(self):
        collector = SenderReportCollector()
        _feed_linear(collector, 1, rate=90_000)
        assert collector.skew(1, 0, 2, 0) is None


class TestOnPipeline:
    def test_sync_collector_populated_by_analyzer(self, analyzed_sfu):
        collector = analyzed_sfu.sync
        assert collector.ssrcs()
        # Every stream with enough reports yields a plausible clock.
        for ssrc in collector.ssrcs():
            if collector.report_count(ssrc) >= 5:
                mapping = collector.mapping(ssrc)
                assert mapping is not None
                assert 20_000 < mapping.rate < 200_000

    def test_video_clock_identified_as_90khz(self, analyzed_sfu):
        video_ssrcs = [s for s in analyzed_sfu.sync.ssrcs() if s & 0xFF == 16]
        checked = 0
        for ssrc in video_ssrcs:
            if analyzed_sfu.sync.report_count(ssrc) >= 5:
                assert analyzed_sfu.sync.nominal_rate(ssrc) == 90_000
                checked += 1
        assert checked >= 1

    def test_av_sync_within_tolerance(self, analyzed_sfu):
        """A participant's audio and video streams are mutually synchronized
        (the SFU forwards SRs precisely so receivers can do this)."""
        collector = analyzed_sfu.sync
        audio, video = 0x10F, 0x110  # bob's streams
        if collector.report_count(audio) < 3 or collector.report_count(video) < 3:
            import pytest as _pytest

            _pytest.skip("not enough sender reports in fixture")
        map_audio = collector.mapping(audio)
        map_video = collector.mapping(video)
        # Pick timestamps 5 s into each stream and compare wall instants.
        skew = collector.skew(
            audio,
            (map_audio.reference_rtp + 5 * 48_000) & 0xFFFFFFFF,
            video,
            (map_video.reference_rtp + 5 * 90_000) & 0xFFFFFFFF,
        )
        assert skew is not None
        # The emulator starts the streams within ~2 s of each other.
        assert abs(skew) < 3.0
