"""Tests for the rolling analyzer and the meeting report generator."""

import math

import pytest

from repro.analysis.reportgen import full_report, meeting_report
from repro.core.rolling import RollingZoomAnalyzer
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)


@pytest.fixture(scope="module")
def two_sequential_meetings():
    """Two short meetings 90 s apart on the same timeline — only a rolling
    analyzer keeps memory flat across them."""
    captures = []
    for index, start in enumerate((0.0, 100.0)):
        config = MeetingConfig(
            meeting_id=f"seq-{index}",
            participants=(
                ParticipantConfig(name=f"a{index}", on_campus=True),
                ParticipantConfig(name=f"b{index}", on_campus=True, join_time=0.5),
            ),
            duration=10.0,
            start_time=start,
            allow_p2p=False,
            seed=50 + index,
        )
        captures.extend(MeetingSimulator(config).run().captures)
    captures.sort(key=lambda c: c.timestamp)
    return captures


class TestRollingAnalyzer:
    def test_eviction_bounds_memory(self, two_sequential_meetings):
        rolling = RollingZoomAnalyzer(idle_timeout=30.0, sweep_interval=5.0)
        peak_live = 0
        for packet in two_sequential_meetings:
            rolling.feed(packet)
            peak_live = max(peak_live, rolling.live_stream_count())
        # After the second meeting, the first meeting's streams are gone.
        rolling.sweep(200.0)
        assert rolling.live_stream_count() == 0
        assert rolling.streams_evicted == len(rolling.finalized)
        # Each meeting holds 8 streams (4 egress + 4 ingress copies); at no
        # point did we hold both meetings' streams simultaneously.
        assert peak_live <= 8

    def test_finalized_records_complete(self, two_sequential_meetings):
        rolling = RollingZoomAnalyzer(idle_timeout=30.0, sweep_interval=5.0)
        rolling.analyze(two_sequential_meetings)
        rolling.sweep(500.0)
        assert len(rolling.finalized) == 16  # 2 meetings x (4 egress + 4 ingress)
        for record in rolling.finalized:
            assert record.packets > 0
            assert record.last_time >= record.first_time
            if record.media_type == 16 and record.frames_completed > 10:
                assert 5 < record.mean_fps < 40

    def test_callback_invoked(self, two_sequential_meetings):
        seen = []
        rolling = RollingZoomAnalyzer(
            idle_timeout=30.0, sweep_interval=5.0, on_stream_finalized=seen.append
        )
        rolling.analyze(two_sequential_meetings)
        rolling.sweep(500.0)
        assert seen == rolling.finalized

    def test_results_match_offline_analyzer(self, two_sequential_meetings):
        """Eviction must not change what was measured, only when state is
        released."""
        from repro.core import ZoomAnalyzer

        offline = ZoomAnalyzer().analyze(two_sequential_meetings)
        rolling = RollingZoomAnalyzer(idle_timeout=30.0, sweep_interval=5.0)
        rolling.analyze(two_sequential_meetings)
        rolling.sweep(500.0)
        offline_packets = {
            stream.key: stream.packets for stream in offline.media_streams()
        }
        rolling_packets = {record.key: record.packets for record in rolling.finalized}
        assert rolling_packets == offline_packets

    def test_no_eviction_for_active_streams(self, sfu_meeting_result):
        rolling = RollingZoomAnalyzer(idle_timeout=60.0, sweep_interval=5.0)
        rolling.analyze(sfu_meeting_result.captures)
        # Meeting lasted 25 s; nothing idle for 60 s.
        assert rolling.streams_evicted == 0
        assert rolling.live_stream_count() > 0


class TestMeetingReports:
    def test_report_structure(self, analyzed_sfu):
        meeting = analyzed_sfu.meetings[0]
        report = meeting_report(analyzed_sfu, meeting)
        assert report.participant_estimate == 3
        assert len(report.streams) == len(meeting.stream_uids)
        for stream in report.streams:
            assert stream.packets > 0
            assert stream.copies >= 1

    def test_copies_counted(self, analyzed_sfu):
        report = meeting_report(analyzed_sfu, analyzed_sfu.meetings[0])
        # Streams from on-campus senders have egress + ingress copies.
        assert max(stream.copies for stream in report.streams) >= 2

    def test_render_contains_key_facts(self, analyzed_sfu):
        text = meeting_report(analyzed_sfu, analyzed_sfu.meetings[0]).render()
        assert "participants" in text
        assert "VIDEO" in text and "AUDIO" in text
        assert "findings" in text

    def test_full_report_covers_all_meetings(self, analyzed_sfu):
        text = full_report(analyzed_sfu)
        assert "Meeting 0" in text

    def test_empty_analysis(self):
        from repro.core.pipeline import AnalysisResult

        assert "(no meetings found)" in full_report(AnalysisResult())

    def test_network_cause_diagnosed(self):
        """A severely congested meeting yields a network-cause warning."""
        config = MeetingConfig(
            meeting_id="diag",
            participants=(
                ParticipantConfig(
                    name="victim",
                    congestion=(
                        CongestionEvent(
                            start=3.0, end=18.0, extra_delay=0.08,
                            extra_jitter=0.05, extra_loss=0.10,
                        ),
                    ),
                ),
                ParticipantConfig(name="peer", join_time=0.5),
            ),
            duration=20.0,
            allow_p2p=False,
            seed=61,
        )
        from repro.core import ZoomAnalyzer

        result = ZoomAnalyzer().analyze(MeetingSimulator(config).run().captures)
        report = meeting_report(result, result.meetings[0])
        network_findings = [d for d in report.diagnoses if d.cause == "network"]
        assert network_findings

    def test_content_cause_diagnosed(self):
        """A thumbnail-mode (14 fps) sender on a clean network is flagged as
        content-driven, not network-driven — the §6.2 distinction."""
        config = MeetingConfig(
            meeting_id="thumb",
            participants=(
                ParticipantConfig(name="thumb", thumbnail=True),
                ParticipantConfig(name="peer", join_time=0.5),
            ),
            duration=15.0,
            allow_p2p=False,
            seed=62,
        )
        from repro.core import ZoomAnalyzer

        result = ZoomAnalyzer().analyze(MeetingSimulator(config).run().captures)
        report = meeting_report(result, result.meetings[0])
        thumb_findings = [
            d for d in report.diagnoses if d.ssrc == 0x10 and d.cause == "content"
        ]
        assert thumb_findings
        assert all(d.severity == "info" for d in thumb_findings)
