"""Tests for stall detection from frame delays (§5.5 future work)."""

import pytest

from repro.core.metrics.frame_delay import FrameDelayAnalyzer, FrameDelaySample
from repro.core.metrics.frames import CompletedFrame
from repro.core.metrics.stalls import StallDetector, detect_stalls


def sample(time, delay, packetization=1 / 30.0, debt=0.0):
    return FrameDelaySample(
        time=time,
        delay=delay,
        packetization_time=packetization,
        retransmission_suspected=False,
        buffer_debt=debt,
    )


def healthy_stream(n=100, start=1.0):
    return [sample(start + i / 30.0, 0.004) for i in range(n)]


def starving_stream(n=40, start=1.0):
    """Each frame takes 80 ms to deliver but covers 33 ms of media."""
    return [sample(start + i * 0.080, 0.080) for i in range(n)]


class TestStallDetector:
    def test_healthy_stream_no_stalls(self):
        assert detect_stalls(healthy_stream()) == []

    def test_persistent_starvation_stalls(self):
        events = detect_stalls(starving_stream())
        assert len(events) == 1
        event = events[0]
        assert event.duration > 0
        assert event.max_debt > 0.2

    def test_stall_start_time_plausible(self):
        # Debt grows 47 ms per frame; the 200 ms buffer drains after ~5 frames.
        events = detect_stalls(starving_stream())
        assert 1.0 < events[0].start < 1.6

    def test_recovery_closes_event(self):
        stream = starving_stream(n=10) + [
            sample(2.0 + i / 30.0, 0.001, packetization=1 / 30.0) for i in range(60)
        ]
        detector = StallDetector()
        closed = []
        for s in stream:
            event = detector.observe(s)
            if event is not None:
                closed.append(event)
        assert len(closed) == 1
        assert not detector.currently_stalled
        assert closed[0].frames_late > 0

    def test_finalize_closes_open_stall(self):
        detector = StallDetector()
        for s in starving_stream(n=20):
            detector.observe(s)
        assert detector.currently_stalled
        event = detector.finalize(10.0)
        assert event is not None
        assert not detector.currently_stalled
        assert detector.total_stall_time == pytest.approx(event.duration)

    def test_nan_packetization_skipped(self):
        detector = StallDetector()
        assert detector.observe(sample(1.0, 0.5, packetization=float("nan"))) is None
        assert not detector.currently_stalled

    def test_buffer_depth_configurable(self):
        deep = detect_stalls(starving_stream(n=8), buffer_depth=10.0)
        shallow = detect_stalls(starving_stream(n=8), buffer_depth=0.05)
        assert deep == []
        assert shallow

    def test_multiple_stalls(self):
        stream = []
        t = 1.0
        for _round in range(2):
            for i in range(12):        # starve
                stream.append(sample(t, 0.080))
                t += 0.080
            for i in range(90):        # recover
                stream.append(sample(t, 0.001))
                t += 1 / 30.0
        events = detect_stalls(stream)
        assert len(events) == 2


class TestEndToEnd:
    def test_congested_stream_from_analyzer(self, analyzed_sfu):
        """The congested fixture stream exposes frame-delay samples that the
        detector consumes without error (stalls may or may not occur at the
        fixture's congestion level)."""
        for stream in analyzed_sfu.media_streams():
            metrics = analyzed_sfu.metrics_for(stream.key)
            events = metrics.stall_events()
            for event in events:
                assert event.duration >= 0
                assert event.start >= stream.first_time

    def test_retransmission_heavy_frames_trigger_stall(self):
        """Frames repeatedly delayed by the retransmission timeout exceed
        any reasonable jitter buffer."""
        analyzer = FrameDelayAnalyzer(90_000)
        t = 1.0
        ts = 0
        samples = []
        for i in range(30):
            delay = 0.130 if 5 <= i <= 25 else 0.004  # RTO-delayed frames
            samples.append(
                analyzer.observe(
                    CompletedFrame(
                        rtp_timestamp=ts,
                        frame_sequence=i,
                        expected_packets=2,
                        first_time=t,
                        completed_time=t + delay,
                        payload_bytes=1000,
                    )
                )
            )
            ts += 3000
            t += 1 / 30.0
        events = detect_stalls(samples)
        assert events
