"""Tests for the campus workload generator and server directory."""

import random

import pytest

from repro.simulation.campus import (
    DIURNAL_PROFILE,
    CampusTraceConfig,
    _meeting_start_offset,
    _poisson,
    generate_campus_trace,
)
from repro.simulation.infrastructure import TABLE7_LOCATIONS, ServerDirectory


@pytest.fixture(scope="module")
def small_trace():
    return generate_campus_trace(
        CampusTraceConfig(
            hours=4,
            meetings_per_hour_peak=1.5,
            meeting_duration=(6.0, 10.0),
            background_pps=0.02,
            seed=21,
        )
    )


class TestDirectory:
    def test_mmr_zc_split(self):
        directory = ServerDirectory(scale=0.02)
        assert directory.mmrs and directory.zcs
        assert len(directory.mmrs) > len(directory.zcs)

    def test_naming_scheme(self):
        """Appendix B: zoom<location><id><type>.<location>.zoom.us."""
        directory = ServerDirectory(scale=0.02)
        server = directory.mmrs[0]
        assert server.hostname.endswith(".zoom.us")
        assert "mmr" in server.hostname
        zc = directory.zcs[0]
        assert "zc" in zc.hostname

    def test_all_in_subnet(self):
        import ipaddress

        directory = ServerDirectory(scale=0.02, subnet="170.114.0.0/16")
        network = ipaddress.ip_network("170.114.0.0/16")
        assert all(
            ipaddress.ip_address(server.ip) in network for server in directory.servers
        )

    def test_lookup(self):
        directory = ServerDirectory(scale=0.02)
        server = directory.servers[0]
        assert directory.lookup(server.ip) == server
        assert directory.lookup("8.8.8.8") is None

    def test_location_table_shape(self):
        """Table 7's shape: US sites dominate; every location has both."""
        directory = ServerDirectory(scale=0.05)
        table = directory.location_table()
        assert len(table) == len(TABLE7_LOCATIONS)
        assert table[0][0].startswith("United States")
        assert all(mmr >= 1 and zc >= 1 for _loc, mmr, zc in table)

    def test_scaling_proportional(self):
        small = ServerDirectory(scale=0.02)
        large = ServerDirectory(scale=0.10)
        assert len(large.servers) > 3 * len(small.servers)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ServerDirectory(scale=0.0)

    def test_pick_deterministic_with_seeded_rng(self):
        directory = ServerDirectory(scale=0.02)
        assert directory.pick_mmr(random.Random(5)) == directory.pick_mmr(random.Random(5))


class TestHelpers:
    def test_poisson_mean(self):
        rng = random.Random(1)
        draws = [_poisson(3.0, rng) for _ in range(2000)]
        assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.1)

    def test_poisson_zero_mean(self):
        assert _poisson(0.0, random.Random(1)) == 0

    def test_meeting_starts_cluster_on_the_hour(self):
        """Figure 14's spikes: most meetings start near :00 or :30."""
        rng = random.Random(2)
        offsets = [_meeting_start_offset(rng) for _ in range(2000)]
        near_hour = sum(1 for o in offsets if o < 120)
        near_half = sum(1 for o in offsets if 1800 <= o < 1920)
        assert near_hour / len(offsets) > 0.4
        assert near_half / len(offsets) > 0.1

    def test_diurnal_profile_shape(self):
        assert max(DIURNAL_PROFILE) == 1.0
        assert DIURNAL_PROFILE[3] < DIURNAL_PROFILE[2]  # lunch dip
        assert DIURNAL_PROFILE[-1] < 0.5  # evening decline


class TestCampusTrace:
    def test_trace_generated(self, small_trace):
        assert small_trace.result.captures
        assert small_trace.meeting_configs
        assert small_trace.result.packets_captured == len(small_trace.result.captures)

    def test_captures_sorted(self, small_trace):
        times = [c.timestamp for c in small_trace.result.captures]
        assert times == sorted(times)

    def test_meetings_within_their_hour_bins(self, small_trace):
        for config in small_trace.meeting_configs:
            assert 0 <= config.start_time < small_trace.duration()

    def test_background_traffic_present_and_non_zoom(self, small_trace):
        from repro.core.detector import ZoomTrafficDetector
        from repro.net.packet import parse_frame

        assert small_trace.background
        detector = ZoomTrafficDetector()
        for packet in small_trace.background[:100]:
            parsed = parse_frame(packet.data, packet.timestamp)
            assert not detector.classify(parsed).is_zoom

    def test_all_packets_merged_sorted(self, small_trace):
        merged = small_trace.all_packets()
        assert len(merged) == len(small_trace.result.captures) + len(small_trace.background)
        times = [p.timestamp for p in merged]
        assert times == sorted(times)

    def test_every_meeting_has_campus_participant(self, small_trace):
        for config in small_trace.meeting_configs:
            assert any(p.on_campus for p in config.participants)

    def test_hour_labels(self, small_trace):
        labels = small_trace.hour_labels()
        assert labels[0] == "09:00"
        assert len(labels) == 4

    def test_deterministic(self):
        config = CampusTraceConfig(hours=2, meetings_per_hour_peak=1.0,
                                   meeting_duration=(5.0, 8.0), seed=33)
        first = generate_campus_trace(config)
        second = generate_campus_trace(config)
        assert len(first.result.captures) == len(second.result.captures)
        assert [c.data for c in first.result.captures[:50]] == [
            c.data for c in second.result.captures[:50]
        ]

    def test_analyzer_consumes_campus_trace(self, small_trace):
        """End-to-end: the whole campus trace flows through the analyzer and
        meeting count lands near the ground truth."""
        from repro.core import ZoomAnalyzer

        result = ZoomAnalyzer().analyze(small_trace.result.captures)
        assert result.packets_zoom == result.packets_total
        truth_meetings = len(small_trace.meeting_configs)
        found = len(result.meetings)
        assert truth_meetings * 0.5 <= found <= truth_meetings * 1.5
