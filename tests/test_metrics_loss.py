"""Tests for loss/retransmission/reordering inference (§5.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics.loss import SequenceTracker, StreamLossTracker
from repro.core.streams import RTPPacketRecord

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def packet(seq, *, t=1.0, payload_type=98):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=FT,
        ssrc=0x110,
        payload_type=payload_type,
        sequence=seq & 0xFFFF,
        rtp_timestamp=seq * 100,
        marker=False,
        media_type=16,
        payload_len=100,
        udp_payload_len=150,
        to_server=True,
    )


class TestSequenceTracker:
    def test_in_order_clean(self):
        tracker = SequenceTracker()
        for i in range(100):
            assert tracker.observe(packet(i)) == "in_order"
        stats = tracker.finalize()
        assert stats.received == 100
        assert stats.duplicates == 0
        assert stats.unfilled_gaps == 0
        assert stats.late_fills == 0

    def test_duplicate_detected(self):
        tracker = SequenceTracker()
        tracker.observe(packet(1))
        tracker.observe(packet(2))
        assert tracker.observe(packet(2)) == "duplicate"
        assert tracker.stats.duplicates == 1

    def test_gap_filled_later_is_late_fill(self):
        """Reordering or upstream-loss retransmission (§5.5's ambiguity)."""
        tracker = SequenceTracker()
        tracker.observe(packet(1))
        assert tracker.observe(packet(3)) == "future_gap"
        assert tracker.observe(packet(2)) == "late_fill"
        stats = tracker.finalize()
        assert stats.late_fills == 1
        assert stats.unfilled_gaps == 0

    def test_gap_never_filled_is_loss(self):
        tracker = SequenceTracker()
        tracker.observe(packet(1))
        tracker.observe(packet(4))
        stats = tracker.finalize()
        assert stats.unfilled_gaps == 2  # 2 and 3

    def test_wraparound_not_a_gap(self):
        tracker = SequenceTracker()
        tracker.observe(packet(0xFFFE))
        tracker.observe(packet(0xFFFF))
        assert tracker.observe(packet(0x0000)) == "in_order"
        assert tracker.finalize().unfilled_gaps == 0

    def test_wild_jump_resets_instead_of_mass_loss(self):
        """A mode switch can skip thousands of sequence numbers; that must
        not be reported as thousands of losses."""
        tracker = SequenceTracker(window=512)
        tracker.observe(packet(1))
        tracker.observe(packet(2))
        tracker.observe(packet(5000))
        stats = tracker.finalize()
        assert stats.unfilled_gaps == 0

    def test_gap_expires_out_of_window(self):
        tracker = SequenceTracker(window=16)
        tracker.observe(packet(1))
        tracker.observe(packet(3))  # 2 missing
        for i in range(4, 40):
            tracker.observe(packet(i))
        assert tracker.stats.unfilled_gaps == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SequenceTracker(window=0)
        with pytest.raises(ValueError):
            SequenceTracker(window=40000)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_counters_never_negative_and_bounded(self, seqs):
        tracker = SequenceTracker(window=64)
        for seq in seqs:
            tracker.observe(packet(seq))
        stats = tracker.finalize()
        assert stats.received == len(seqs)
        assert stats.duplicates >= 0
        assert stats.late_fills >= 0
        assert stats.unfilled_gaps >= 0
        # Cannot detect more events than packets plus open gap space.
        assert stats.duplicates + stats.late_fills <= stats.received


class TestStreamLossTracker:
    def test_substreams_tracked_separately(self):
        """Sequence spaces are per payload type; interleaving substreams
        must not fabricate gaps (§5.4)."""
        tracker = StreamLossTracker()
        for i in range(10):
            tracker.observe(packet(i, payload_type=98))
            tracker.observe(packet(5000 + i * 3, payload_type=110))
        report = tracker.report(finalize=False)
        assert report.per_substream[98].duplicates == 0
        assert report.duplicates == 0

    def test_report_aggregates(self):
        tracker = StreamLossTracker()
        tracker.observe(packet(1))
        tracker.observe(packet(1))  # duplicate
        tracker.observe(packet(3))  # gap: 2 missing
        report = tracker.report(finalize=True)
        assert report.received == 3
        assert report.duplicates == 1
        assert report.lost == 1
        assert 0 < report.loss_rate < 1

    def test_loss_rate_zero_when_empty(self):
        assert StreamLossTracker().report().loss_rate == 0.0
