"""Hypothesis equivalence properties across the three dataplane tiers.

The software dataplane's core claim is *decision equivalence*: for any
frame, the compiled cBPF program (run through the reference interpreter),
the raw-bytes :class:`RawFrameFilter`, and the columnar
:class:`BatchPrefilter` must agree on accept vs drop — and in campus
mode, the cBPF program must agree with the stateful
:class:`P4CaptureModel` decision tree it was snapshotted from.

cBPF is stateless while the Python tiers learn STUN endpoints mid-stream,
so the properties recompile the program from the current rule state
*before every frame* — exactly what :class:`DataplaneFilter` does at poll
boundaries — which also exercises the fold-in path under arbitrary
interleavings of learning and matching frames.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture.p4_model import P4CaptureModel
from repro.dataplane.compiler import CaptureRules, compile_cbpf
from repro.dataplane.cbpf import run_cbpf
from repro.dataplane.rawfilter import RawFrameFilter
from repro.net.batch import BatchPrefilter, FrameBatchBuilder, decode_columns
from repro.net.packet import CapturedPacket, build_tcp_frame, build_udp_frame
from repro.rtp.stun import StunMessage

ZOOM_NET = "170.114.0.0/16"
CAMPUS_NET = "10.8.0.0/16"

STUN_PAYLOAD = StunMessage.binding_request(b"abcdefghijkl").serialize()

# Address pools spanning every rule bucket: Zoom range, campus range,
# learnable peers, plain background.
ZOOM_IPS = ["170.114.1.1", "170.114.200.9"]
CAMPUS_IPS = ["10.8.1.20", "10.8.2.30"]
PEER_IPS = ["198.18.2.30", "198.18.2.31"]
BACKGROUND_IPS = ["93.184.216.34", "8.8.8.8"]
ALL_IPS = ZOOM_IPS + CAMPUS_IPS + PEER_IPS + BACKGROUND_IPS

PORTS = [3478, 8801, 443, 50001, 50002]


ip_strategy = st.sampled_from(ALL_IPS)
port_strategy = st.sampled_from(PORTS)


@st.composite
def frame_spec(draw):
    """One synthesized frame: (bytes, descriptive tag)."""
    src = draw(ip_strategy)
    dst = draw(ip_strategy)
    sport = draw(port_strategy)
    dport = draw(port_strategy)
    kind = draw(st.sampled_from(["udp", "udp_stun", "tcp"]))
    if kind == "tcp":
        frame = build_tcp_frame(src, sport, dst, dport, seq=1, payload=b"x" * 20)
    elif kind == "udp_stun":
        frame = build_udp_frame(src, sport, dst, dport, STUN_PAYLOAD)
    else:
        frame = build_udp_frame(src, sport, dst, dport, b"\x05\x10" + bytes(40))
    if draw(st.booleans()):
        # One 802.1Q tag: the compiler's second parameterized block.
        tci = draw(st.integers(min_value=0, max_value=0xFFFF))
        frame = frame[:12] + b"\x81\x00" + tci.to_bytes(2, "big") + frame[12:]
    mangle = draw(st.sampled_from(["none", "none", "none", "truncate", "garbage"]))
    if mangle == "truncate":
        cut = draw(st.integers(min_value=0, max_value=len(frame) - 1))
        frame = frame[:cut]
    elif mangle == "garbage":
        frame = bytes(draw(st.binary(min_size=0, max_size=40)))
    return frame


@st.composite
def rules_config(draw):
    sniff_all = draw(st.booleans())
    seed_endpoints = draw(
        st.lists(
            st.tuples(st.sampled_from(PEER_IPS + CAMPUS_IPS), port_strategy),
            max_size=3,
        )
    )
    return sniff_all, seed_endpoints


def _seed(prefilter, endpoints):
    from repro.dataplane.compiler import _ipv4_str_to_u32

    for ip, port in endpoints:
        prefilter.note_endpoint(_ipv4_str_to_u32(ip), port)


def _single_frame_batch(frame):
    builder = FrameBatchBuilder()
    builder.append(frame, 1.0)
    return builder.build()


class TestPrefilterEquivalence:
    @given(rules_config(), st.lists(frame_spec(), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_cbpf_and_raw_match_columnar_decision(self, config, frames):
        """cBPF ≡ RawFrameFilter ≡ BatchPrefilter, frame by frame.

        Two independent prefilters start in identical state; the columnar
        one decides via decode+apply, the raw one via `match`, and a cBPF
        program recompiled from the pre-frame state decides in the
        "kernel".  All three verdicts must agree for every frame, and the
        two stateful tiers must learn identical endpoint sets.
        """
        sniff_all, seed_endpoints = config
        columnar = BatchPrefilter([ZOOM_NET], sniff_all_stun=sniff_all)
        shadow = BatchPrefilter([ZOOM_NET], sniff_all_stun=sniff_all)
        _seed(columnar, seed_endpoints)
        _seed(shadow, seed_endpoints)
        raw = RawFrameFilter(shadow)
        for frame in frames:
            program = compile_cbpf(CaptureRules.from_prefilter(columnar))
            kernel_pass = run_cbpf(program, frame) != 0
            batch = _single_frame_batch(frame)
            verdict = columnar.apply(batch, decode_columns(batch))
            columnar_pass = bool(verdict.survivors)
            raw_pass = raw.match(frame)
            assert raw_pass == columnar_pass, frame.hex()
            assert kernel_pass == columnar_pass, (frame.hex(), program.dump())
            assert shadow.endpoint_keys == columnar.endpoint_keys

    @given(rules_config(), st.lists(frame_spec(), min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_filter_batch_matches_columnar_survivors(self, config, frames):
        """Batch-level raw filtering keeps exactly the columnar survivors."""
        sniff_all, seed_endpoints = config
        columnar = BatchPrefilter([ZOOM_NET], sniff_all_stun=sniff_all)
        shadow = BatchPrefilter([ZOOM_NET], sniff_all_stun=sniff_all)
        _seed(columnar, seed_endpoints)
        _seed(shadow, seed_endpoints)
        builder = FrameBatchBuilder()
        for i, frame in enumerate(frames):
            builder.append(frame, float(i))
        batch = builder.build()
        verdict = columnar.apply(batch, decode_columns(batch))
        survivors, stats = RawFrameFilter(shadow).filter_batch(batch)
        expected = [
            (batch.caplens[i], batch.timestamps[i]) for i in verdict.survivors
        ]
        got = list(zip(survivors.caplens, survivors.timestamps))
        assert got == expected
        assert stats.passed == len(verdict.survivors)
        assert stats.dropped == verdict.dropped
        assert stats.dropped_bytes == verdict.dropped_bytes
        assert stats.parse_failures == verdict.parse_failures
        assert shadow.endpoint_keys == columnar.endpoint_keys


@st.composite
def campus_frame_spec(draw):
    """Well-formed frames only: the P4 model re-parses from bytes, and a
    frame truncated mid-header is a capture artifact the scalar parser
    and the wire-offset program legitimately read differently."""
    src = draw(ip_strategy)
    dst = draw(ip_strategy)
    sport = draw(port_strategy)
    dport = draw(port_strategy)
    kind = draw(st.sampled_from(["udp", "udp_stun", "tcp"]))
    if kind == "tcp":
        frame = build_tcp_frame(src, sport, dst, dport, seq=1, payload=b"x" * 20)
    elif kind == "udp_stun":
        frame = build_udp_frame(src, sport, dst, dport, STUN_PAYLOAD)
    else:
        frame = build_udp_frame(src, sport, dst, dport, b"\x05\x10" + bytes(40))
    if draw(st.booleans()):
        tci = draw(st.integers(min_value=0, max_value=0xFFFF))
        frame = frame[:12] + b"\x81\x00" + tci.to_bytes(2, "big") + frame[12:]
    return frame


class TestCampusModeEquivalence:
    @given(st.lists(campus_frame_spec(), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_cbpf_matches_p4_model_decision(self, frames):
        """Campus-mode cBPF ≡ the stateful P4 decision tree, per frame.

        The program is recompiled from a `from_model` snapshot before
        each frame (endpoints filtered through the live registers at the
        frame's timestamp), so register expiry and eviction are folded
        into the stateless program at the same instant the stateful
        lookup would consult them.
        """
        model = P4CaptureModel([ZOOM_NET], [CAMPUS_NET], stun_timeout=120.0)
        for i, frame in enumerate(frames):
            ts = float(i)  # monotonic: expiry decisions are well-ordered
            rules = CaptureRules.from_model(model, now=ts)
            program = compile_cbpf(rules)
            kernel_pass = run_cbpf(program, frame) != 0
            model_pass = model.process_one(CapturedPacket(ts, frame)) is not None
            assert kernel_pass == model_pass, (frame.hex(), program.dump())

    def test_from_model_drops_expired_endpoints(self):
        model = P4CaptureModel([ZOOM_NET], [CAMPUS_NET], stun_timeout=10.0)
        stun = build_udp_frame("10.8.1.20", 50001, "170.114.200.9", 3478, STUN_PAYLOAD)
        assert model.process_one(CapturedPacket(0.0, stun)) is not None
        assert CaptureRules.from_model(model, now=5.0).endpoints
        assert not CaptureRules.from_model(model, now=30.0).endpoints


class TestSaturation:
    def test_saturated_program_widens_conservatively(self):
        """Past the endpoint budget the kernel tier passes all readable
        UDP (never dropping a frame the userspace tiers would keep)."""
        endpoints = [(f"198.18.{i // 200}.{i % 200}", 50000 + i) for i in range(40)]
        rules = CaptureRules.from_networks([ZOOM_NET], endpoints=endpoints)
        program = compile_cbpf(rules, max_endpoints=10)
        assert program.meta["saturated"]
        assert program.meta["compiled_endpoints"] == 0
        # A UDP frame matching no rule still passes the saturated program…
        udp = build_udp_frame("4.4.4.4", 1234, "5.5.5.5", 5678, bytes(20))
        assert run_cbpf(program, udp) != 0
        # …but non-UDP background still drops.
        tcp = build_tcp_frame("4.4.4.4", 1234, "5.5.5.5", 5678, seq=1, payload=b"x")
        assert run_cbpf(program, tcp) == 0

    def test_unsaturated_program_is_exact(self):
        rules = CaptureRules.from_networks(
            [ZOOM_NET], endpoints=[("198.18.2.30", 50001)]
        )
        program = compile_cbpf(rules)
        assert not program.meta["saturated"]
        hit = build_udp_frame("198.18.2.30", 50001, "5.5.5.5", 5678, bytes(20))
        miss = build_udp_frame("198.18.2.30", 50002, "5.5.5.5", 5678, bytes(20))
        assert run_cbpf(program, hit) != 0
        assert run_cbpf(program, miss) == 0
