"""Tests for the Wireshark-plugin-equivalent dissector (Appendix C)."""

from repro.rtp.rtcp import RTCPSdes, RTCPSenderReport
from repro.rtp.rtp import RTPHeader
from repro.zoom.media_encap import MediaEncap
from repro.zoom.packets import build_media_payload, build_rtcp_payload
from repro.core.dissector import dissect, dissect_text
from repro.zoom.sfu_encap import Direction, SfuEncap


def _video_payload(*, sfu=True):
    media = MediaEncap(media_type=16, sequence=9, timestamp=90000, frame_sequence=4, packets_in_frame=3)
    rtp = RTPHeader(payload_type=98, sequence=500, timestamp=90000, ssrc=0x210,
                    marker=True, extension_profile=0xBEDE, extension_data=b"\x00" * 4)
    return build_media_payload(
        media=media, rtp=rtp,
        rtp_payload=b"\x7c\xc0" + b"\xaa" * 60,
        sfu=SfuEncap(sequence=12, direction=Direction.FROM_SFU) if sfu else None,
    )


def test_video_tree_structure():
    tree = dissect(_video_payload(), from_server=True)
    assert tree.find("zoom.sfu") is not None
    assert tree.find("zoom.media") is not None
    assert tree.find("rtp") is not None
    assert tree.find("zoom.payload") is not None


def test_field_values():
    tree = dissect(_video_payload(), from_server=True)
    assert tree.find("zoom.sfu.seq").value == 12
    assert tree.find("zoom.media.type").value == 16
    assert tree.find("zoom.media.pkts_in_frame").value == 3
    assert tree.find("rtp.seq").value == 500
    assert tree.find("rtp.ssrc").value == 0x210


def test_field_offsets_match_table1():
    tree = dissect(_video_payload(), from_server=True)
    assert tree.find("zoom.sfu.type").offset == 0
    assert tree.find("zoom.sfu.direction").offset == 7
    assert tree.find("zoom.media.type").offset == 8
    assert tree.find("zoom.media.seq").offset == 17       # 8 + 9
    assert tree.find("zoom.media.timestamp").offset == 19  # 8 + 11
    assert tree.find("zoom.media.frame_seq").offset == 29  # 8 + 21
    assert tree.find("rtp").offset == 32                   # Table 2


def test_h264_fu_header_for_video():
    tree = dissect(_video_payload(), from_server=True)
    fu = tree.find("h264.fu")
    assert fu is not None
    assert tree.find("h264.fu.start").value is True
    assert tree.find("h264.fu.end").value is True


def test_p2p_packet_has_no_sfu_node():
    tree = dissect(_video_payload(sfu=False), from_server=False)
    assert tree.find("zoom.sfu") is None
    assert tree.find("rtp").offset == 24


def test_rtcp_dissection():
    sr = RTCPSenderReport(ssrc=0x210, ntp_seconds=100, ntp_fraction=0,
                          rtp_timestamp=5, packet_count=6, octet_count=7)
    payload = build_rtcp_payload(
        media=MediaEncap(media_type=34), reports=[sr, RTCPSdes(ssrc=0x210)], sfu=SfuEncap()
    )
    tree = dissect(payload, from_server=True)
    assert tree.find("rtcp.sr") is not None
    sdes = tree.find("rtcp.sdes")
    assert sdes is not None and "empty" in sdes.display
    assert tree.find("rtcp.ssrc").value == 0x210


def test_text_rendering():
    text = dissect_text(_video_payload(), from_server=True)
    assert "Zoom SFU Encapsulation" in text
    assert "Zoom Media Encapsulation (VIDEO)" in text
    assert "Real-Time Transport Protocol" in text
    assert "encrypted media payload" in text
    assert "from SFU (0x04)" in text


def test_audio_payload_type_names():
    media = MediaEncap(media_type=15, sequence=1, timestamp=2)
    for payload_type, expected in ((112, "speaking"), (99, "silent"), (113, "unknown")):
        rtp = RTPHeader(payload_type=payload_type, sequence=1, timestamp=2, ssrc=0x20F)
        payload = build_media_payload(media=media, rtp=rtp, rtp_payload=b"a" * 40, sfu=SfuEncap())
        text = dissect_text(payload, from_server=True)
        assert expected in text


def test_screen_share_pt99_name():
    media = MediaEncap(media_type=13, sequence=1, timestamp=2, frame_sequence=1, packets_in_frame=1)
    rtp = RTPHeader(payload_type=99, sequence=1, timestamp=2, ssrc=0x20D)
    payload = build_media_payload(media=media, rtp=rtp, rtp_payload=b"\x7c\x00" + b"s" * 20, sfu=SfuEncap())
    assert "screen share" in dissect_text(payload, from_server=True)


def test_unknown_control_packet():
    from repro.zoom.packets import build_control_payload

    payload = build_control_payload(control_type=20, body=b"\x00" * 30, sfu=SfuEncap())
    tree = dissect(payload, from_server=True)
    assert "UNKNOWN/CONTROL" in tree.find("zoom.media.type").display


def test_render_indentation():
    text = dissect(_video_payload(), from_server=True).render()
    lines = text.splitlines()
    assert lines[0].startswith("zoom:")
    assert any(line.startswith("    zoom.sfu:") for line in lines)
    assert any(line.startswith("        zoom.sfu.type:") for line in lines)
