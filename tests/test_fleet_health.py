"""Tests for the fleet health layer (:mod:`repro.fleet.health`).

Scraping is exercised two ways: against a real store directory written by
:class:`MetricsStore` (the ``store`` surface), and through the injectable
``scrape`` callable (anomaly rules, rendering) so no sockets are needed.
"""

import pytest

from repro.core import FleetConfig, FleetNodeConfig, StoreConfig
from repro.fleet.health import (
    FLEET_COUNTER_SEEDS,
    FleetAnomaly,
    NodeHealth,
    fleet_status,
    parse_prometheus_text,
    render_fleet_status,
    scrape_node,
)
from repro.store import MetricsStore


class TestParsePrometheusText:
    def test_parses_samples_and_skips_comments(self):
        text = "\n".join(
            [
                "# HELP repro_capture_frames_total Frames seen",
                "# TYPE repro_capture_frames_total counter",
                "repro_capture_frames_total 1200",
                'repro_service_windows_total{site="a"} 42',
                "repro_window_start_seconds 1700.5",
            ]
        )
        samples = parse_prometheus_text(text)
        assert samples["repro_capture_frames_total"] == 1200.0
        assert samples['repro_service_windows_total{site="a"}'] == 42.0
        assert samples["repro_window_start_seconds"] == 1700.5

    def test_unparseable_lines_are_skipped_not_fatal(self):
        text = "garbage line without value\nrepro_ok 1\nrepro_bad not-a-float"
        assert parse_prometheus_text(text) == {"repro_ok": 1.0}

    def test_empty_page(self):
        assert parse_prometheus_text("") == {}


class TestScrapeStore:
    def test_reads_sealed_segments_from_manifest(self, tmp_path):
        store_dir = tmp_path / "node"
        store = MetricsStore(store_dir, StoreConfig(partition_seconds=50.0))
        for i in range(5):
            store.append(
                {"kind": "window", "start": i * 10.0, "end": (i + 1) * 10.0}
            )
        store.seal_all()
        store.close()

        node = FleetNodeConfig(name="n0", store_dir=str(store_dir))
        health = scrape_node(node)
        assert health.reachable is True
        assert health.source == "store"
        assert health.store_records == 5
        assert health.newest == 50.0
        # Store surfaces do not report capture/drop counters.
        assert health.frames is None
        assert health.drop_ratio is None

    def test_missing_manifest_is_unreachable_not_an_exception(self, tmp_path):
        node = FleetNodeConfig(name="gone", store_dir=str(tmp_path / "nope"))
        health = scrape_node(node)
        assert health.reachable is False
        assert health.error

    def test_corrupt_manifest_is_unreachable(self, tmp_path):
        store_dir = tmp_path / "bad"
        store_dir.mkdir()
        (store_dir / "manifest.json").write_text("{not json", encoding="utf-8")
        health = scrape_node(FleetNodeConfig(name="bad", store_dir=str(store_dir)))
        assert health.reachable is False


def _fleet(names, **overrides):
    nodes = tuple(
        FleetNodeConfig(name=name, store_dir=f"/unused/{name}") for name in names
    )
    return FleetConfig(nodes=nodes, **overrides)


def _healthy(name, *, newest=1000.0, frames=10_000, dropped=0):
    return NodeHealth(
        name=name,
        source="endpoint",
        reachable=True,
        frames=frames,
        dropped=dropped,
        newest=newest,
    )


def _injected(by_name):
    def scrape(node, *, timeout):
        return by_name[node.name]

    return scrape


class TestAnomalyRules:
    def test_all_healthy_no_anomalies(self):
        config = _fleet(["a", "b", "c"])
        status = fleet_status(
            config,
            scrape=_injected({n: _healthy(n) for n in ("a", "b", "c")}),
        )
        assert status.anomalies == []
        assert status.reachable == 3

    def test_unreachable_node_flagged(self):
        config = _fleet(["a", "b"])
        down = NodeHealth(
            name="b", source="endpoint", reachable=False, error="refused"
        )
        status = fleet_status(
            config, scrape=_injected({"a": _healthy("a"), "b": down})
        )
        assert FleetAnomaly("node-unreachable", "b", "refused") in status.anomalies
        assert status.reachable == 1

    def test_stale_node_graded_against_fleet_newest(self):
        config = _fleet(["a", "b"], stale_after=120.0)
        status = fleet_status(
            config,
            scrape=_injected(
                {"a": _healthy("a", newest=5000.0), "b": _healthy("b", newest=4000.0)}
            ),
        )
        rules = [(a.rule, a.node) for a in status.anomalies]
        assert rules == [("node-stale", "b")]
        assert "1000s" in status.anomalies[0].detail

    def test_lag_within_threshold_is_fine(self):
        config = _fleet(["a", "b"], stale_after=120.0)
        status = fleet_status(
            config,
            scrape=_injected(
                {"a": _healthy("a", newest=5000.0), "b": _healthy("b", newest=4900.0)}
            ),
        )
        assert status.anomalies == []

    def test_drop_outlier_needs_median_multiple_and_floor(self):
        config = _fleet(["a", "b", "c"], drop_outlier_ratio=3.0)
        status = fleet_status(
            config,
            scrape=_injected(
                {
                    "a": _healthy("a", dropped=10),  # 0.1%
                    "b": _healthy("b", dropped=20),  # 0.2% (median)
                    "c": _healthy("c", dropped=800),  # 8% — outlier
                }
            ),
        )
        rules = [(a.rule, a.node) for a in status.anomalies]
        assert rules == [("drop-rate-outlier", "c")]

    def test_tiny_absolute_drops_never_flag(self):
        # 3x the median but under the 1% floor: not actionable.
        config = _fleet(["a", "b"], drop_outlier_ratio=3.0)
        status = fleet_status(
            config,
            scrape=_injected(
                {
                    "a": _healthy("a", dropped=1),  # 0.01%
                    "b": _healthy("b", dropped=50),  # 0.5%
                }
            ),
        )
        assert status.anomalies == []

    def test_single_node_fleet_has_no_outlier_rule(self):
        config = _fleet(["a"])
        status = fleet_status(
            config, scrape=_injected({"a": _healthy("a", dropped=9000)})
        )
        assert status.anomalies == []


class TestRender:
    def test_table_and_anomaly_lines(self):
        config = _fleet(["a", "b"], stale_after=60.0)
        down = NodeHealth(
            name="b", source="store", reachable=False, error="no manifest"
        )
        status = fleet_status(
            config, scrape=_injected({"a": _healthy("a"), "b": down})
        )
        text = render_fleet_status(status)
        assert "node" in text and "qoe" in text  # header row
        assert "yes" in text and "NO" in text
        assert "nodes: 1/2 reachable, 1 anomalies" in text
        assert "[node-unreachable] b: no manifest" in text

    def test_qoe_mix_renders_in_severity_order(self):
        node = _healthy("a")
        node.qoe_states = {"impaired": 1, "good": 3}
        assert node.qoe_mix() == "good:3 impaired:1"
        assert NodeHealth(name="x", source="store", reachable=True).qoe_mix() == "-"


class TestCounterSeeds:
    def test_seed_names_are_the_fleet_counters(self):
        assert FLEET_COUNTER_SEEDS == (
            "fleet.store_queries",
            "fleet.store_query_records",
            "fleet.store_query_errors",
        )

    def test_seeds_register_with_telemetry(self):
        from repro.telemetry.registry import Telemetry

        telemetry = Telemetry()
        for name in FLEET_COUNTER_SEEDS:
            telemetry.count(name, 0)
        for name in FLEET_COUNTER_SEEDS:
            assert telemetry.counters.get(name, None) == 0


class TestDropRatio:
    def test_ratio_and_none_propagation(self):
        node = _healthy("a", frames=200, dropped=50)
        assert node.drop_ratio == pytest.approx(0.25)
        assert NodeHealth(name="x", source="store", reachable=True).drop_ratio is None

    def test_zero_frames_does_not_divide_by_zero(self):
        node = _healthy("a", frames=0, dropped=5)
        assert node.drop_ratio == 5.0
