"""Tests for Ethernet II framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ethernet import EtherType, EthernetHeader, mac_from_str, mac_to_str

MAC_A = bytes.fromhex("02aabbccddee")
MAC_B = bytes.fromhex("021122334455")


def test_serialize_untagged_layout():
    header = EthernetHeader(dst=MAC_A, src=MAC_B, ethertype=EtherType.IPV4)
    wire = header.serialize()
    assert len(wire) == 14
    assert wire[0:6] == MAC_A
    assert wire[6:12] == MAC_B
    assert wire[12:14] == b"\x08\x00"


def test_parse_untagged_roundtrip():
    header = EthernetHeader(dst=MAC_A, src=MAC_B, ethertype=EtherType.IPV6)
    parsed, offset = EthernetHeader.parse(header.serialize() + b"payload")
    assert parsed == header
    assert offset == 14


def test_vlan_tag_roundtrip():
    header = EthernetHeader(dst=MAC_A, src=MAC_B, ethertype=EtherType.IPV4, vlan=42, vlan_pcp=5)
    wire = header.serialize()
    assert len(wire) == 18
    assert wire[12:14] == b"\x81\x00"
    parsed, offset = EthernetHeader.parse(wire)
    assert parsed == header
    assert offset == 18


def test_header_len_property():
    assert EthernetHeader(dst=MAC_A, src=MAC_B).header_len == 14
    assert EthernetHeader(dst=MAC_A, src=MAC_B, vlan=1).header_len == 18


def test_too_short_frame_rejected():
    with pytest.raises(ValueError):
        EthernetHeader.parse(b"\x00" * 13)


def test_truncated_vlan_rejected():
    frame = MAC_A + MAC_B + b"\x81\x00\x00"
    with pytest.raises(ValueError):
        EthernetHeader.parse(frame)


def test_bad_mac_length_rejected():
    with pytest.raises(ValueError):
        EthernetHeader(dst=b"\x00" * 5, src=MAC_B)


def test_vlan_range_validation():
    with pytest.raises(ValueError):
        EthernetHeader(dst=MAC_A, src=MAC_B, vlan=4096)
    with pytest.raises(ValueError):
        EthernetHeader(dst=MAC_A, src=MAC_B, vlan=1, vlan_pcp=8)


def test_mac_string_conversion_roundtrip():
    assert mac_from_str(mac_to_str(MAC_A)) == MAC_A
    assert mac_to_str(MAC_A) == "02:aa:bb:cc:dd:ee"


def test_mac_to_str_rejects_wrong_length():
    with pytest.raises(ValueError):
        mac_to_str(b"\x00" * 5)


def test_mac_from_str_rejects_garbage():
    with pytest.raises(ValueError):
        mac_from_str("not-a-mac")


@given(
    dst=st.binary(min_size=6, max_size=6),
    src=st.binary(min_size=6, max_size=6),
    ethertype=st.integers(min_value=0x0600, max_value=0xFFFF).filter(lambda v: v != 0x8100),
    vlan=st.one_of(st.none(), st.integers(min_value=0, max_value=4095)),
    pcp=st.integers(min_value=0, max_value=7),
)
def test_roundtrip_property(dst, src, ethertype, vlan, pcp):
    # PCP only exists on the wire when a VLAN tag is present.
    header = EthernetHeader(
        dst=dst, src=src, ethertype=ethertype, vlan=vlan,
        vlan_pcp=pcp if vlan is not None else 0,
    )
    parsed, offset = EthernetHeader.parse(header.serialize())
    assert parsed == header
    assert offset == header.header_len
