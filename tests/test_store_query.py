"""Query-engine tests: planning, filters, re-aggregation, flat output."""

import pytest

from repro.core import StoreConfig
from repro.store import MetricsStore, StoreQuery, flatten_records, reaggregate_windows


def _window(index: int, *, media=("video",)) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": 100,
        "bytes_total": 10_000,
        "zoom_packets": 90,
        "meetings_formed": 0,
        "meetings_active": 1,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": name,
                "packets": 45,
                "bytes": 4_500,
                "bitrate_bps": 3600.0,
                "streams": 1,
                "streams_opened": 0,
                "p2p_packets": 0,
                "mean_fps": 24.0,
                "mean_jitter_ms": 2.0,
                "lost": 1,
                "duplicates": 0,
            }
            for name in media
        ],
    }


def _stream(start: float, *, media: str = "video") -> dict:
    return {
        "kind": "stream",
        "start": start,
        "end": start + 30.0,
        "ssrc": 0x1234,
        "media": media,
        "packets": 500,
        "bytes": 50_000,
    }


def _meeting(meeting_id: int, start: float, end: float) -> dict:
    return {
        "kind": "meeting",
        "start": start,
        "end": end,
        "meeting_id": meeting_id,
        "streams": 4,
        "participants": 3,
    }


@pytest.fixture()
def populated(tmp_path):
    """Partitions 0/2/5 populated; one meeting confined to partition 0."""
    store = MetricsStore(
        tmp_path, StoreConfig(partition_seconds=100.0, seal_records=16)
    )
    for i in range(8):  # partition 0: 0..80 s
        store.append(_window(i))
    store.append(_meeting(7, 0.0, 60.0))
    store.append(_stream(5.0))
    store.append(_stream(15.0, media="audio"))
    for i in range(20, 28):  # partition 2: 200..280 s
        store.append(_window(i, media=("audio",)))
    for i in range(50, 58):  # partition 5: 500..580 s
        store.append(_window(i))
    store.close()
    return store


class TestPlanning:
    def test_time_range_skips_non_overlapping_segments(self, populated):
        result = populated.query(StoreQuery(start=200.0, end=290.0))
        assert [r["window"] for r in result.records] == list(range(20, 28))
        assert result.segments_skipped >= 2  # partitions 0 and 5 pruned
        assert result.segments_scanned >= 1

    def test_index_and_full_scan_agree(self, populated):
        query = StoreQuery(start=500.0, kinds=("window",))
        indexed = populated.query(query)
        scanned = populated.query(
            StoreQuery(start=500.0, kinds=("window",), use_index=False)
        )
        assert indexed.records == scanned.records
        assert scanned.segments_skipped == 0
        assert scanned.records_examined > indexed.records_examined

    def test_kind_pruning(self, populated):
        result = populated.query(StoreQuery(kinds=("meeting",)))
        assert [r["meeting_id"] for r in result.records] == [7]

    def test_media_pruning_skips_segments_without_that_media(self, populated):
        result = populated.query(StoreQuery(media="screen"))
        assert result.records == []
        assert result.segments_scanned == 0  # every footer excludes "screen"


class TestFilters:
    def test_media_filter_thins_window_entries(self, populated):
        result = populated.query(StoreQuery(media="audio"))
        assert [r["window"] for r in result.records] == list(range(20, 28))
        for record in result.records:
            assert [entry["media"] for entry in record["media"]] == ["audio"]

    def test_media_filter_on_streams(self, populated):
        result = populated.query(StoreQuery(kinds=("stream",), media="audio"))
        assert len(result.records) == 1
        assert result.records[0]["start"] == 15.0

    def test_meeting_query_selects_overlapping_windows(self, populated):
        result = populated.query(StoreQuery(meeting_id=7))
        # Meeting 7 spans 0..60 s: windows 0..5 overlap; window 6 starts
        # exactly at the span's (half-open) end and is excluded.
        indices = [r["window"] for r in result.records]
        assert indices == list(range(6))

    def test_unknown_meeting_matches_nothing(self, populated):
        result = populated.query(StoreQuery(meeting_id=999))
        assert result.records == []

    def test_metric_projection_keeps_identity(self, populated):
        result = populated.query(
            StoreQuery(start=0.0, end=10.0, metrics=("packets_total",))
        )
        assert result.records
        for record in result.records:
            assert set(record) == {
                "kind",
                "window",
                "start",
                "end",
                "packets_total",
            }


class TestReaggregation:
    def test_counts_sum_and_census_maxes(self):
        windows = [_window(i) for i in range(6)]
        windows[3]["meetings_active"] = 4
        merged = reaggregate_windows(windows, 30.0)
        assert len(merged) == 2
        assert [m["packets_total"] for m in merged] == [300, 300]
        assert merged[1]["meetings_active"] == 4
        assert all(m["windows_merged"] == 3 for m in merged)

    def test_media_entries_merge_with_weighted_means(self):
        windows = [_window(0), _window(1)]
        windows[0]["media"][0]["mean_fps"] = 30.0
        windows[0]["media"][0]["packets"] = 300
        windows[1]["media"][0]["mean_fps"] = 10.0
        windows[1]["media"][0]["packets"] = 100
        merged = reaggregate_windows(windows, 20.0)
        (entry,) = merged[0]["media"]
        assert entry["packets"] == 400
        assert entry["mean_fps"] == 25.0  # (30*300 + 10*100) / 400

    def test_none_quality_values_stay_none(self):
        windows = [_window(0)]
        windows[0]["media"][0]["mean_fps"] = None
        merged = reaggregate_windows(windows, 10.0)
        assert merged[0]["media"][0]["mean_fps"] is None

    def test_query_level_reaggregation(self, populated):
        fine = populated.query(StoreQuery(start=0.0, end=80.0))
        coarse = populated.query(
            StoreQuery(start=0.0, end=80.0, reaggregate_seconds=40.0)
        )
        assert sum(w["packets_total"] for w in coarse.records) == sum(
            w["packets_total"] for w in fine.records
        )
        assert len(coarse.records) < len(fine.records)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            StoreQuery(reaggregate_seconds=0.0)


class TestFlattening:
    def test_windows_flatten_one_row_per_media_entry(self):
        columns, rows = flatten_records(
            [_window(0, media=("video", "audio")), _window(1)]
        )
        assert columns[0] == "window"
        assert len(rows) == 3
        assert [row["media"] for row in rows] == ["video", "audio", "video"]

    def test_mixed_kinds_get_kind_column(self):
        columns, rows = flatten_records([_window(0), _meeting(7, 0.0, 60.0)])
        assert columns[0] == "kind"
        assert {row["kind"] for row in rows} == {"window", "meeting"}

    def test_single_kind_omits_kind_column(self):
        columns, rows = flatten_records([_meeting(7, 0.0, 60.0)])
        assert "kind" not in columns
        assert all("kind" not in row for row in rows)
