"""Property-based tests on grouping and frame-assembly invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meetings import MeetingGrouper
from repro.core.metrics.frames import FrameAssembler
from repro.core.streams import RTPPacketRecord, StreamTable

SFU = "170.114.1.1"


def _record(src_ip, src_port, *, ssrc, rtp_ts, t, seq=0, n=0, payload_type=98):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=(src_ip, src_port, SFU, 8801, 17),
        ssrc=ssrc,
        payload_type=payload_type,
        sequence=seq & 0xFFFF,
        rtp_timestamp=rtp_ts & 0xFFFFFFFF,
        marker=False,
        media_type=16,
        payload_len=500,
        udp_payload_len=550,
        packets_in_frame=n,
        to_server=True,
    )


stream_spec = st.tuples(
    st.integers(min_value=2, max_value=9),     # client last octet
    st.integers(min_value=50_000, max_value=50_020),  # port
    st.integers(min_value=1, max_value=6),     # ssrc low part
    st.integers(min_value=0, max_value=1 << 31),  # rtp ts base
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),  # start time
)


class TestGroupingInvariants:
    @given(st.lists(stream_spec, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_every_stream_lands_in_exactly_one_meeting(self, specs):
        table = StreamTable()
        grouper = MeetingGrouper()
        keys = []
        for octet, port, ssrc, ts_base, start in sorted(specs, key=lambda s: s[-1]):
            record = _record(f"10.8.0.{octet}", port, ssrc=ssrc, rtp_ts=ts_base, t=start)
            if record.stream_key in {k for k in keys}:
                continue
            stream = table.observe(record)
            grouper.observe_new_stream(stream, table)
            keys.append(record.stream_key)
        meetings = grouper.meetings()
        # Partition property: every stream key in exactly one live meeting.
        seen: dict = {}
        for meeting in meetings:
            for key in meeting.stream_keys:
                assert key not in seen, "stream assigned to two meetings"
                seen[key] = meeting.meeting_id
        assert set(seen) == set(keys)
        # Unique ids never exceed streams; meetings never exceed unique ids.
        assert grouper.unique_stream_count() <= len(keys)
        assert len(meetings) <= grouper.unique_stream_count()

    @given(st.lists(stream_spec, min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_merges_never_lose_streams(self, specs):
        table = StreamTable()
        grouper = MeetingGrouper()
        total = 0
        seen_keys = set()
        for octet, port, ssrc, ts_base, start in sorted(specs, key=lambda s: s[-1]):
            record = _record(f"10.8.0.{octet}", port, ssrc=ssrc, rtp_ts=ts_base, t=start)
            if record.stream_key in seen_keys:
                continue
            seen_keys.add(record.stream_key)
            stream = table.observe(record)
            grouper.observe_new_stream(stream, table)
            total += 1
        assert sum(len(m.stream_keys) for m in grouper.meetings()) == total


class TestAssemblerInvariants:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_order_completes_frame(self, count, seq_base, rng):
        """A frame completes exactly when its N distinct packets arrived,
        regardless of order or duplication."""
        assembler = FrameAssembler()
        packets = [
            _record("10.8.0.2", 50_000, ssrc=1, rtp_ts=777, t=1.0 + i * 0.001,
                    seq=seq_base + i, n=count)
            for i in range(count)
        ]
        # Duplicate a random subset and shuffle.
        duplicated = packets + [packets[rng.randrange(count)] for _ in range(3)]
        rng.shuffle(duplicated)
        completions = [assembler.observe(p) for p in duplicated]
        frames = [f for f in completions if f is not None]
        assert len(frames) == 1
        assert frames[0].expected_packets == count
        assert frames[0].payload_bytes == 500 * count

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_completed_never_exceeds_distinct_frames(self, frame_choices):
        assembler = FrameAssembler()
        seq = 0
        for i, choice in enumerate(frame_choices):
            assembler.observe(
                _record("10.8.0.2", 50_000, ssrc=1, rtp_ts=1000 + choice,
                        t=1.0 + i * 0.001, seq=seq, n=3)
            )
            seq += 1
        assert assembler.completed_count <= len(set(frame_choices))
