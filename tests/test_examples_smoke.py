"""Smoke tests: the quickest examples must run cleanly end to end.

The slower examples (campus study, validation, QoE dataset) are exercised
indirectly through the benchmark fixtures; these subprocess runs guard the
two fastest entry points a new user will try first.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 180.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.slow
def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "meetings found:      1" in result.stdout
    assert "Latency to SFU" in result.stdout


@pytest.mark.slow
def test_dissect_pcap_runs(tmp_path):
    result = _run("dissect_pcap.py")
    assert result.returncode == 0, result.stderr
    assert "Zoom" in result.stdout
    assert "Real-Time Transport Protocol" in result.stdout


def test_all_examples_compile():
    """Every example at least parses (cheap guard for the slow ones)."""
    import py_compile

    for script in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(script), doraise=True)
