"""Tests for the end-to-end analyzer pipeline."""

import pytest

from repro.core import ZoomAnalyzer
from repro.core.detector import ZoomClass
from repro.net.packet import CapturedPacket, build_udp_frame
from repro.zoom.constants import ZoomMediaType


class TestOnSfuMeeting:
    def test_every_capture_is_zoom(self, analyzed_sfu):
        assert analyzed_sfu.packets_total == analyzed_sfu.packets_zoom

    def test_stream_count_matches_truth(self, analyzed_sfu, sfu_meeting_result):
        """Unique stream ids must equal the number of emitted media streams
        (network copies collapse; nothing merges wrongly)."""
        truth = {t.ssrc for t in sfu_meeting_result.stream_truths}
        assert analyzed_sfu.grouper.unique_stream_count() == len(truth)

    def test_decoded_share_matches_paper_shape(self, analyzed_sfu):
        """~90% of media-class packets decode as media/RTCP (Table 2)."""
        rows = analyzed_sfu.encap_share_table()
        other = next((pct for value, pct, _bytes in rows if value == "other"), 0.0)
        assert 4.0 < other < 16.0
        decoded = sum(pct for value, pct, _ in rows if value != "other")
        assert decoded > 84.0

    def test_video_dominates_bytes(self, analyzed_sfu):
        rows = {value: (pct, byte_pct) for value, pct, byte_pct in analyzed_sfu.encap_share_table()}
        video_pct, video_bytes = rows[int(ZoomMediaType.VIDEO)]
        audio_pct, audio_bytes = rows[int(ZoomMediaType.AUDIO)]
        assert video_bytes > 50.0
        assert video_bytes > audio_bytes
        assert video_pct > audio_pct

    def test_payload_type_table_shape(self, analyzed_sfu):
        """Table 3 shape: video main (98) is the most common payload type;
        FEC (110) is a minority; audio splits between 112/99."""
        rows = {(mt, pt): pct for mt, pt, pct, _ in analyzed_sfu.payload_type_table()}
        assert rows[(16, 98)] == max(rows.values())
        assert rows.get((16, 110), 0) < rows[(16, 98)] / 3
        assert (15, 112) in rows

    def test_rtcp_sender_reports_no_receiver_reports(self, analyzed_sfu):
        assert analyzed_sfu.rtcp_sender_reports > 10
        assert analyzed_sfu.rtcp_receiver_reports == 0
        assert analyzed_sfu.rtcp_sdes_empty > 0

    def test_latency_samples_match_ground_truth(self, analyzed_sfu, sfu_meeting_result):
        """Method-1 RTT estimates track the emulator's true per-second
        latency within a couple of milliseconds (Figure 10b)."""
        qos = sfu_meeting_result.qos
        video_ssrc = 0x110  # bob's video (participant index 1)
        checked = 0
        for second in range(4, 11):  # clean period before congestion
            samples = [
                s for s in analyzed_sfu.rtp_latency.samples_for(video_ssrc)
                if second <= s.time < second + 1
            ]
            truth = qos.value_at(video_ssrc, "true_latency_ms", second + 1)
            if not samples or truth is None or truth != truth:
                continue
            estimate = 1000.0 * sum(s.rtt for s in samples) / len(samples)
            assert estimate == pytest.approx(truth, abs=3.0)
            checked += 1
        assert checked >= 4

    def test_latency_rises_during_congestion(self, analyzed_sfu):
        samples = analyzed_sfu.rtp_latency.samples_for(0x110)
        clean = [s.rtt for s in samples if 4 <= s.time < 10]
        congested = [s.rtt for s in samples if 13.5 <= s.time < 16]
        assert congested and clean
        assert sum(congested) / len(congested) > 1.3 * (sum(clean) / len(clean))

    def test_frame_rate_tracks_ground_truth(self, analyzed_sfu, sfu_meeting_result):
        """Method-1 frame rate matches the emulator's delivered-frames feed
        (Figure 10a)."""
        stream = next(
            s for s in analyzed_sfu.media_streams()
            if s.ssrc == 0x110 and s.to_server is False
        )
        metrics = analyzed_sfu.metrics_for(stream.key)
        qos = sfu_meeting_result.qos
        checked = 0
        for second in range(4, 10):
            window = [x for x in metrics.framerate_delivered.samples if second <= x.time < second + 1]
            truth = [
                s.delivered_frames for s in qos.for_stream(0x110)
                if abs(s.time - (second + 1)) < 0.01
            ]
            if not window or not truth:
                continue
            mean_fps = sum(x.fps for x in window) / len(window)
            assert mean_fps == pytest.approx(truth[0], abs=6.0)
            checked += 1
        assert checked >= 3

    def test_frame_rate_drops_during_congestion(self, analyzed_sfu):
        """Alice (SSRC 0x10, participant 0) has the congested uplink; her
        encoder adapts 28 → 14 fps, visible in the delivered frame rate."""
        stream = next(
            s for s in analyzed_sfu.media_streams()
            if s.ssrc == 0x10 and s.to_server is True
        )
        metrics = analyzed_sfu.metrics_for(stream.key)
        clean = [x.fps for x in metrics.framerate_delivered.samples if 6 <= x.time < 11]
        reduced = [x.fps for x in metrics.framerate_delivered.samples if 14.5 <= x.time < 17]
        assert clean and reduced
        assert sum(reduced) / len(reduced) < 0.75 * (sum(clean) / len(clean))

    def test_jitter_rises_during_congestion(self, analyzed_sfu):
        stream = next(
            s for s in analyzed_sfu.media_streams()
            if s.ssrc == 0x110 and s.to_server is False
        )
        metrics = analyzed_sfu.metrics_for(stream.key)
        clean = [s.jitter for s in metrics.jitter.samples if 5 <= s.time < 11]
        congested = [s.jitter for s in metrics.jitter.samples if 13.5 <= s.time < 16.5]
        assert congested and clean
        assert max(congested) > 2.0 * max(clean)

    def test_tcp_rtt_both_sides(self, analyzed_sfu):
        assert analyzed_sfu.tcp_rtt
        estimator = next(iter(analyzed_sfu.tcp_rtt.values()))
        assert estimator.server_samples and estimator.client_samples
        assert estimator.asymmetry() > 0  # latency dominated by external leg

    def test_bitrate_series_exist_for_video(self, analyzed_sfu):
        series = analyzed_sfu.bitrate.media_type_rate_series(int(ZoomMediaType.VIDEO))
        assert len(series) > 15
        assert max(rate for _t, rate in series) > 100_000  # >100 kbit/s


class TestOnP2PMeeting:
    def test_p2p_media_classified(self, analyzed_p2p):
        counters = analyzed_p2p.detector.counters.by_class
        assert counters.get(ZoomClass.P2P_MEDIA, 0) > 100
        assert counters.get(ZoomClass.SERVER_STUN, 0) >= 3

    def test_p2p_streams_present(self, analyzed_p2p):
        p2p_streams = [s for s in analyzed_p2p.media_streams() if s.is_p2p]
        assert p2p_streams
        assert {s.media_type for s in p2p_streams} >= {15, 16}

    def test_single_meeting_spans_transition(self, analyzed_p2p):
        assert len(analyzed_p2p.meetings) == 1


class TestRobustness:
    def test_non_zoom_traffic_ignored(self):
        analyzer = ZoomAnalyzer()
        packets = [
            CapturedPacket(1.0, build_udp_frame("10.8.1.1", 1000, "8.8.8.8", 53, b"dns")),
            CapturedPacket(1.1, build_udp_frame("10.8.1.1", 1001, "1.1.1.1", 443, b"quic")),
        ]
        result = analyzer.analyze(packets)
        assert result.packets_total == 2
        assert result.packets_zoom == 0
        assert len(result.streams) == 0

    def test_garbage_on_media_port_counted_undecoded(self):
        analyzer = ZoomAnalyzer()
        frame = build_udp_frame("10.8.1.1", 1000, "170.114.1.1", 8801, b"\xff" * 40)
        result = analyzer.analyze([CapturedPacket(1.0, frame)])
        assert result.packets_zoom == 1
        assert result.undecoded_packets == 1

    def test_truncated_frames_survive(self, sfu_meeting_result):
        analyzer = ZoomAnalyzer()
        for captured in sfu_meeting_result.captures[:200]:
            analyzer.feed(CapturedPacket(captured.timestamp, captured.data[:30]))
        assert analyzer.result.packets_total == 200

    def test_empty_capture(self):
        result = ZoomAnalyzer().analyze([])
        assert result.packets_total == 0
        assert result.meetings == []
        assert result.encap_share_table() == []
        assert result.payload_type_table() == []
