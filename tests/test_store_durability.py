"""Durability tests: torn-write recovery (property-based) and the
backfill round trip that pins store contents to the batch analyzer.

The crash-safety contract under test: *any* prefix truncation of an active
segment — the on-disk state a SIGKILL can leave at any byte boundary —
opens cleanly and loses at most the frame the truncation tore.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalyzerConfig, ServiceConfig, StoreConfig, ZoomAnalyzer
from repro.net.pcap import write_pcap
from repro.service.runner import ZoomMonitorService
from repro.store import MetricsStore, StoreQuery, backfill_jsonl
from repro.store.segment import SEGMENT_MAGIC, ActiveSegment, encode_frame


def _record(index: int) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * 10.0,
        "end": (index + 1) * 10.0,
        "packets_total": 100 + index,
        "media": [{"media": "video", "packets": 90, "bytes": 9000 + index}],
    }


class TestTornWriteRecovery:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), count=st.integers(min_value=1, max_value=8))
    def test_any_prefix_truncation_recovers_cleanly(self, data, count, tmp_path_factory):
        """Cut an active segment at an arbitrary byte and reopen: every
        frame wholly before the cut survives, everything after is exactly
        the torn tail — never a crash, never a corrupt record."""
        tmp_path = tmp_path_factory.mktemp("torn")
        path = tmp_path / "active-p0.seg"
        records = [_record(i) for i in range(count)]
        frame_ends = [len(SEGMENT_MAGIC)]
        payload = SEGMENT_MAGIC
        for record in records:
            payload += encode_frame(record)
            frame_ends.append(len(payload))
        cut = data.draw(st.integers(min_value=0, max_value=len(payload)))
        path.write_bytes(payload[:cut])

        recovered = ActiveSegment(path, 0)
        survivors = recovered.records_on_disk()
        intact = sum(1 for end in frame_ends[1:] if end <= cut)
        assert survivors == records[:intact]  # prefix, in order, undamaged
        assert recovered.meta.records == intact
        # A cut inside a frame (or inside the magic) reports truncation;
        # clean boundaries — including the empty file — do not.
        assert recovered.recovered_truncated == (cut not in (0, *frame_ends))
        # The file is valid again: appending resumes where recovery left off.
        recovered.append(_record(99))
        assert recovered.records_on_disk() == records[:intact] + [_record(99)]
        recovered.close()

    def test_reopened_store_counts_torn_frames(self, tmp_path):
        from repro.telemetry import Telemetry

        store = MetricsStore(
            tmp_path, StoreConfig(partition_seconds=1000.0, seal_records=100)
        )
        for i in range(3):
            store.append(_record(i))
        # SIGKILL mid-append: the last frame is half-written.
        active_path = tmp_path / "active-p0.seg"
        with open(active_path, "ab") as handle:
            handle.write(encode_frame(_record(3))[:9])
        telemetry = Telemetry()
        reopened = MetricsStore(tmp_path, telemetry=telemetry)
        assert telemetry.counter("store.torn_frames") == 1
        result = reopened.query(StoreQuery())
        assert [r["window"] for r in result.records] == [0, 1, 2]


def _rotated_dir(tmp_path, captures):
    directory = tmp_path / "caps"
    directory.mkdir()
    third = len(captures) // 3
    write_pcap(directory / "zoom-00.pcap", captures[:third])
    write_pcap(directory / "zoom-01.pcap", captures[third : 2 * third])
    write_pcap(directory / "zoom-02.pcap", captures[2 * third :])
    return directory


class TestBackfillRoundTrip:
    """PR 4 pinned JSONL-window sums to the batch analyzer; the store must
    preserve that equivalence through write → seal → backfill → query."""

    @pytest.fixture(scope="class")
    def campaign(self, sfu_meeting_result, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("store-e2e")
        captures = sfu_meeting_result.captures
        directory = _rotated_dir(tmp_path, captures)
        store_dir = tmp_path / "store"
        config = ServiceConfig(
            analyzer=AnalyzerConfig(
                rolling=True, rolling_idle_timeout=60.0, telemetry=True
            ),
            window_seconds=5.0,
            watermark_lateness=2.0,
            poll_interval=0.05,
            jsonl_path=str(tmp_path / "windows.jsonl"),
            store_dir=str(store_dir),
            store=StoreConfig(partition_seconds=10.0, seal_records=4),
        )
        service = ZoomMonitorService(directory, config)
        report = service.run(stop_after_polls=2)
        batch = ZoomAnalyzer(AnalyzerConfig(telemetry=True)).analyze(captures)
        return tmp_path, store_dir, report, batch

    def test_live_store_reproduces_batch_totals(self, campaign):
        _, store_dir, report, batch = campaign
        store = MetricsStore(store_dir)
        windows = store.query(StoreQuery()).records
        indices = [w["window"] for w in windows]
        assert len(indices) == len(set(indices))  # no duplicates
        assert len(windows) == report.windows_emitted
        assert sum(w["packets_total"] for w in windows) == batch.packets_total
        opened = sum(m["streams_opened"] for w in windows for m in w["media"])
        assert opened == len(batch.media_streams())

    def test_live_store_holds_streams_and_meetings(self, campaign):
        _, store_dir, report, batch = campaign
        store = MetricsStore(store_dir)
        streams = store.query(StoreQuery(kinds=("stream",))).records
        assert len(streams) == len(batch.media_streams())
        assert sum(s["packets"] for s in streams) == sum(
            s.packets for s in batch.media_streams()
        )
        meetings = store.query(StoreQuery(kinds=("meeting",))).records
        assert len(meetings) == len(batch.meetings)

    def test_store_windows_match_jsonl_log_exactly(self, campaign):
        """The store's window records are the JSONL lines plus the
        envelope — byte-interchangeable history."""
        tmp_path, store_dir, _, _ = campaign
        jsonl = [
            json.loads(line)
            for line in (tmp_path / "windows.jsonl").read_text().splitlines()
        ]
        stored = MetricsStore(store_dir).query(StoreQuery()).records
        stripped = [{k: v for k, v in r.items() if k != "kind"} for r in stored]
        assert stripped == sorted(jsonl, key=lambda w: w["start"])

    def test_backfilled_store_reproduces_batch_totals(self, campaign):
        tmp_path, _, _, batch = campaign
        fresh = tmp_path / "backfilled"
        with MetricsStore(
            fresh, StoreConfig(partition_seconds=10.0, seal_records=4)
        ) as store:
            backfill_report = backfill_jsonl(
                store, [tmp_path / "windows.jsonl"]
            )
        assert backfill_report.skipped_lines == 0
        windows = MetricsStore(fresh).query(StoreQuery()).records
        assert len(windows) == backfill_report.windows
        assert sum(w["packets_total"] for w in windows) == batch.packets_total
        opened = sum(m["streams_opened"] for w in windows for m in w["media"])
        assert opened == len(batch.media_streams())

    def test_indexed_query_skips_segments_on_backfilled_store(self, campaign):
        tmp_path, store_dir, _, _ = campaign
        store = MetricsStore(store_dir)
        full = store.query(StoreQuery())
        starts = sorted(float(w["start"]) for w in full.records)
        narrow = store.query(
            StoreQuery(start=starts[0], end=starts[0] + 5.0)
        )
        assert narrow.segments_skipped > 0
        assert narrow.records
