"""Tests for full-frame decoding and frame builders."""

import pytest

from repro.net.ethernet import EtherType, EthernetHeader
from repro.net.packet import build_tcp_frame, build_udp_frame, parse_frame
from repro.net.tcp import TCPFlags


def test_udp_frame_roundtrip():
    frame = build_udp_frame("10.8.1.2", 50000, "170.114.10.5", 8801, b"payload!")
    parsed = parse_frame(frame, 3.5)
    assert parsed.timestamp == 3.5
    assert parsed.is_udp and not parsed.is_tcp
    assert parsed.src_ip == "10.8.1.2"
    assert parsed.dst_ip == "170.114.10.5"
    assert parsed.src_port == 50000
    assert parsed.dst_port == 8801
    assert parsed.payload == b"payload!"


def test_udp_five_tuple():
    frame = build_udp_frame("10.8.1.2", 50000, "170.114.10.5", 8801, b"x")
    parsed = parse_frame(frame)
    assert parsed.five_tuple == ("10.8.1.2", 50000, "170.114.10.5", 8801, 17)
    assert parsed.protocol == 17


def test_tcp_frame_roundtrip():
    frame = build_tcp_frame(
        "10.8.1.2", 40000, "170.114.10.5", 443,
        seq=100, ack=200, flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"tls bytes",
    )
    parsed = parse_frame(frame)
    assert parsed.is_tcp
    assert parsed.tcp.seq == 100
    assert parsed.tcp.ack == 200
    assert parsed.payload == b"tls bytes"
    assert parsed.protocol == 6


def test_empty_payload_udp():
    frame = build_udp_frame("1.2.3.4", 1, "5.6.7.8", 2, b"")
    parsed = parse_frame(frame)
    assert parsed.payload == b""
    assert parsed.udp.payload_length == 0


def test_ethernet_padding_ignored():
    """Short frames padded to 60 bytes must not leak padding into payload."""
    frame = build_udp_frame("1.2.3.4", 1, "5.6.7.8", 2, b"ab")
    padded = frame + b"\x00" * (60 - len(frame))
    parsed = parse_frame(padded)
    assert parsed.payload == b"ab"


def test_non_ip_frame_degrades_gracefully():
    ether = EthernetHeader(
        dst=b"\x02" * 6, src=b"\x04" * 6, ethertype=EtherType.ARP
    )
    frame = ether.serialize() + b"arp-body"
    parsed = parse_frame(frame)
    assert parsed.ethernet is not None
    assert parsed.ipv4 is None and parsed.ipv6 is None
    assert parsed.payload == b"arp-body"
    assert parsed.five_tuple is None


def test_truncated_frame_degrades_gracefully():
    parsed = parse_frame(b"\x00" * 10)
    assert parsed.ethernet is None
    assert parsed.raw == b"\x00" * 10


def test_corrupt_ip_keeps_ethernet():
    frame = bytearray(build_udp_frame("1.2.3.4", 1, "5.6.7.8", 2, b"zz"))
    frame[14] = 0x75  # bad IP version
    parsed = parse_frame(bytes(frame))
    assert parsed.ethernet is not None
    assert parsed.ipv4 is None


def test_dscp_propagates():
    frame = build_udp_frame("1.2.3.4", 1, "5.6.7.8", 2, b"x", dscp=46)
    parsed = parse_frame(frame)
    assert parsed.ipv4.dscp == 46


@pytest.mark.parametrize("size", [0, 1, 100, 1400])
def test_various_payload_sizes(size):
    payload = bytes(size % 256 for _ in range(size))
    frame = build_udp_frame("10.0.0.1", 9, "10.0.0.2", 10, payload)
    assert parse_frame(frame).payload == payload


def test_tcp_checksum_is_computed():
    frame = build_tcp_frame("10.8.1.2", 40000, "170.114.10.5", 443, seq=1, payload=b"abc")
    parsed = parse_frame(frame)
    assert parsed.tcp.checksum != 0
