"""Tests for frame size, frame delay, bit rate, and time binning."""

import math

import pytest

from repro.core.metrics.binning import TimeBinner
from repro.core.metrics.bitrate import BitrateMeter
from repro.core.metrics.frame_delay import FrameDelayAnalyzer
from repro.core.metrics.frames import CompletedFrame
from repro.core.metrics.framesize import FrameSizeCollector
from repro.core.streams import RTPPacketRecord

FT = ("10.8.1.2", 50001, "170.114.10.5", 8801, 17)


def frame(ts, completed, *, first=None, size=1000, duplicates=0):
    return CompletedFrame(
        rtp_timestamp=ts,
        frame_sequence=0,
        expected_packets=2,
        first_time=first if first is not None else completed - 0.004,
        completed_time=completed,
        payload_bytes=size,
        duplicates=duplicates,
    )


def record(t, size, *, ssrc=0x110, media_type=16):
    return RTPPacketRecord(
        timestamp=t,
        five_tuple=FT,
        ssrc=ssrc,
        payload_type=98,
        sequence=0,
        rtp_timestamp=0,
        marker=False,
        media_type=media_type,
        payload_len=size,
        udp_payload_len=size + 44,
        to_server=True,
    )


class TestTimeBinner:
    def test_sums_per_bin(self):
        binner = TimeBinner(1.0)
        binner.add(0.2, 10)
        binner.add(0.9, 5)
        binner.add(2.1, 7)
        assert binner.sums() == [(0.0, 15.0), (1.0, 0.0), (2.0, 7.0)]

    def test_counts_and_means(self):
        binner = TimeBinner(1.0)
        binner.add(0.5, 10)
        binner.add(0.6, 20)
        assert binner.counts() == [(0.0, 2)]
        assert binner.means() == [(0.0, 15.0)]

    def test_gap_filling_optional(self):
        binner = TimeBinner(1.0)
        binner.add(0.0, 1)
        binner.add(3.0, 1)
        assert len(binner.sums(fill_gaps=True)) == 4
        assert len(binner.sums(fill_gaps=False)) == 2

    def test_rates(self):
        binner = TimeBinner(2.0)
        binner.add(1.0, 100)
        assert binner.rates() == [(0.0, 50.0)]

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            TimeBinner(0)

    def test_empty(self):
        binner = TimeBinner(1.0)
        assert binner.sums() == []
        assert binner.span is None


class TestFrameSize:
    def test_collects_sizes(self):
        collector = FrameSizeCollector()
        collector.observe(frame(0, 1.0, size=500))
        collector.observe(frame(1, 1.1, size=1500))
        assert collector.sizes() == [500, 1500]

    def test_keyframe_flagging(self):
        collector = FrameSizeCollector(keyframe_factor=2.0)
        for i in range(20):
            collector.observe(frame(i, 1.0 + i * 0.03, size=1000))
        sample = collector.observe(frame(99, 2.0, size=5000))
        assert sample.is_probable_keyframe

    def test_small_frames_not_keyframes(self):
        collector = FrameSizeCollector()
        for i in range(20):
            sample = collector.observe(frame(i, 1.0 + i * 0.03, size=1000))
        assert not sample.is_probable_keyframe

    def test_summary_stats(self):
        collector = FrameSizeCollector()
        for size in (100, 200, 300, 400, 10000):
            collector.observe(frame(size, 1.0, size=size))
        summary = collector.summary()
        assert summary["count"] == 5
        assert summary["max"] == 10000
        assert summary["median"] == 300

    def test_summary_empty(self):
        summary = FrameSizeCollector().summary()
        assert math.isnan(summary["mean"])


class TestFrameDelay:
    def test_delay_computed(self):
        analyzer = FrameDelayAnalyzer()
        sample = analyzer.observe(frame(0, 1.010, first=1.000))
        assert sample.delay == pytest.approx(0.010)

    def test_packetization_time_from_timestamps(self):
        analyzer = FrameDelayAnalyzer(90_000)
        analyzer.observe(frame(0, 1.0))
        sample = analyzer.observe(frame(3000, 1.033))
        assert sample.packetization_time == pytest.approx(1 / 30.0)

    def test_retransmission_suspected_on_high_delay(self):
        """delay > rtt_hint + ~RTO flags a retransmission (§5.5)."""
        analyzer = FrameDelayAnalyzer(rtt_hint=0.030)
        sample = analyzer.observe(frame(0, 1.150, first=1.0))
        assert sample.retransmission_suspected
        assert analyzer.suspected_retransmissions == 1

    def test_duplicates_also_flag(self):
        analyzer = FrameDelayAnalyzer()
        sample = analyzer.observe(frame(0, 1.002, first=1.0, duplicates=1))
        assert sample.retransmission_suspected

    def test_normal_delay_not_suspected(self):
        analyzer = FrameDelayAnalyzer(rtt_hint=0.030)
        sample = analyzer.observe(frame(0, 1.005, first=1.0))
        assert not sample.retransmission_suspected

    def test_buffer_debt_accumulates_to_stall(self):
        """Delivery consistently slower than playback drains the jitter
        buffer — the §5.5 stall indicator."""
        analyzer = FrameDelayAnalyzer(90_000)
        analyzer.observe(frame(0, 1.0))
        ts = 0
        t = 1.0
        for i in range(10):
            ts += 3000          # 33ms of media per frame...
            t += 0.033
            analyzer.observe(frame(ts, t + 0.060, first=t))  # ...60ms to deliver
        assert analyzer.stall_risk

    def test_healthy_stream_no_stall(self):
        analyzer = FrameDelayAnalyzer(90_000)
        ts, t = 0, 1.0
        for i in range(20):
            analyzer.observe(frame(ts, t, first=t - 0.004))
            ts += 3000
            t += 0.033
        assert not analyzer.stall_risk


class TestBitrateMeter:
    def test_flow_rate_series(self):
        meter = BitrateMeter()
        meter.observe_flow_bytes(FT, 0.5, 1000)
        meter.observe_flow_bytes(FT, 0.7, 1000)
        meter.observe_flow_bytes(FT, 1.5, 500)
        series = meter.flow_rate_series(FT)
        assert series[0] == (0.0, 16000.0)  # 2000 B/s = 16 kbit/s
        assert series[1] == (1.0, 4000.0)

    def test_media_vs_flow_rate_differs(self):
        """The §5.1 point: media rate counts only RTP payload bytes."""
        meter = BitrateMeter()
        rec = record(0.5, 1000)
        meter.observe_flow_bytes(FT, 0.5, rec.udp_payload_len)
        meter.observe_media(rec)
        flow = meter.flow_rate_series(FT)[0][1]
        media = meter.stream_rate_series(FT, 0x110)[0][1]
        assert media < flow

    def test_media_type_aggregation(self):
        meter = BitrateMeter()
        meter.observe_media(record(0.5, 1000, ssrc=1, media_type=16))
        meter.observe_media(record(0.6, 2000, ssrc=2, media_type=16))
        meter.observe_media(record(0.7, 100, ssrc=3, media_type=15))
        video = meter.media_type_rate_series(16)
        audio = meter.media_type_rate_series(15)
        assert video[0][1] == 8.0 * 3000
        assert audio[0][1] == 8.0 * 100

    def test_missing_series_empty(self):
        meter = BitrateMeter()
        assert meter.flow_rate_series(FT) == []
        assert meter.stream_rate_series(FT, 1) == []
        assert meter.media_type_rate_series(16) == []
        assert meter.stream_rate_values(FT, 1) == []

    def test_stream_rate_values_for_cdf(self):
        meter = BitrateMeter()
        meter.observe_media(record(0.5, 1000))
        meter.observe_media(record(1.5, 3000))
        values = sorted(meter.stream_rate_values(FT, 0x110))
        assert values == [8000.0, 24000.0]
