"""MetricsStore tests: sealing policy, manifest recovery, maintenance."""

import json

import pytest

from repro.core import StoreConfig
from repro.store import MetricsStore
from repro.store.store import MANIFEST_NAME
from repro.telemetry import Telemetry


def _window(index: int, *, width: float = 10.0) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * width,
        "end": (index + 1) * width,
        "packets_total": 10 + index,
        "media": [{"media": "video", "packets": 9, "bytes": 900}],
    }


def _config(**overrides) -> StoreConfig:
    defaults = dict(partition_seconds=100.0, seal_records=4)
    defaults.update(overrides)
    return StoreConfig(**defaults)


class TestAppendAndSeal:
    def test_seals_at_record_threshold(self, tmp_path):
        store = MetricsStore(tmp_path, _config())
        for i in range(4):
            store.append(_window(i))
        assert len(store.segments()) == 1
        assert store.segments()[0].records == 4
        assert store.active_partitions() == []

    def test_seals_at_byte_threshold(self, tmp_path):
        store = MetricsStore(tmp_path, _config(seal_records=10_000, seal_bytes=200))
        store.append(_window(0))
        store.append(_window(1))
        assert len(store.segments()) >= 1

    def test_stale_partitions_sealed_eagerly(self, tmp_path):
        """Once capture time moves two partitions on, the old partition's
        active file seals without waiting for thresholds."""
        store = MetricsStore(tmp_path, _config(seal_records=10_000))
        store.append(_window(0))  # partition 0
        store.append(_window(25))  # partition 2 → partition 0 must seal
        sealed_partitions = {info.partition for info in store.segments()}
        assert 0 in sealed_partitions
        assert store.active_partitions() == [2]

    def test_close_seals_everything_and_refuses_appends(self, tmp_path):
        store = MetricsStore(tmp_path, _config())
        store.append(_window(0))
        store.close()
        assert store.active_partitions() == []
        assert store.record_count() == 1
        with pytest.raises(ValueError, match="closed"):
            store.append(_window(1))

    def test_counts_through_telemetry(self, tmp_path):
        telemetry = Telemetry()
        store = MetricsStore(tmp_path, _config(), telemetry=telemetry)
        for i in range(4):
            store.append(_window(i))
        assert telemetry.counter("store.appended") == 4
        assert telemetry.counter("store.appended.window") == 4
        assert telemetry.counter("store.segments_sealed") == 1
        assert telemetry.counter("store.records_sealed") == 4


class TestReopen:
    def test_reopen_sees_sealed_and_active(self, tmp_path):
        store = MetricsStore(tmp_path, _config())
        for i in range(6):  # 4 sealed + 2 active
            store.append(_window(i))
        del store  # no close: simulate an abrupt exit after the seal
        reopened = MetricsStore(tmp_path, _config())
        assert reopened.record_count() == 6
        assert len(reopened.segments()) == 1
        assert reopened.active_partitions() == [0]

    def test_manifest_rebuilt_from_orphan_footers(self, tmp_path):
        telemetry = Telemetry()
        store = MetricsStore(tmp_path, _config())
        for i in range(8):
            store.append(_window(i))
        store.close()
        (tmp_path / MANIFEST_NAME).unlink()  # lose the manifest entirely
        reopened = MetricsStore(tmp_path, _config(), telemetry=telemetry)
        assert reopened.record_count() == 8
        assert telemetry.counter("store.manifest_orphans") == len(
            reopened.segments()
        )
        assert (tmp_path / MANIFEST_NAME).exists()  # rewritten on open

    def test_manifest_entry_with_missing_file_dropped(self, tmp_path):
        telemetry = Telemetry()
        store = MetricsStore(tmp_path, _config())
        for i in range(4):
            store.append(_window(i))
        store.close()
        info = store.segments()[0]
        (tmp_path / info.name).unlink()
        reopened = MetricsStore(tmp_path, _config(), telemetry=telemetry)
        assert reopened.segments() == []
        assert telemetry.counter("store.manifest_dropped") == 1

    def test_on_disk_partition_width_wins(self, tmp_path):
        store = MetricsStore(tmp_path, _config(partition_seconds=50.0))
        store.append(_window(0))
        store.close()
        reopened = MetricsStore(tmp_path, _config(partition_seconds=9999.0))
        assert reopened.config.partition_seconds == 50.0

    def test_unknown_manifest_version_rejected(self, tmp_path):
        MetricsStore(tmp_path, _config()).close()
        manifest = tmp_path / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported store version"):
            MetricsStore(tmp_path, _config())

    def test_sequence_numbers_never_reused(self, tmp_path):
        store = MetricsStore(tmp_path, _config())
        for i in range(8):  # two sealed segments in partition 0
            store.append(_window(i))
        names = {info.name for info in store.segments()}
        reopened = MetricsStore(tmp_path, _config())
        reopened.append(_window(8))
        reopened.close()
        new_names = {info.name for info in reopened.segments()} - names
        assert len(new_names) == 1  # a fresh name, not an overwrite


class TestMaintenance:
    def test_compaction_merges_small_segments(self, tmp_path):
        config = _config(
            seal_records=2, compact_min_segments=3, compact_small_bytes=1 << 20
        )
        store = MetricsStore(tmp_path, config)
        for i in range(8):  # 4 small sealed segments in partition 0
            store.append(_window(i))
        assert len(store.segments()) == 4
        compactions, merged = store.compact()
        assert (compactions, merged) == (1, 4)
        assert len(store.segments()) == 1
        merged_info = store.segments()[0]
        assert merged_info.records == 8
        # Record order inside the merged segment is original append order.
        records = store.iter_segment_records(merged_info)
        assert [r["window"] for r in records] == list(range(8))

    def test_compaction_survives_reopen(self, tmp_path):
        config = _config(
            seal_records=2, compact_min_segments=2, compact_small_bytes=1 << 20
        )
        store = MetricsStore(tmp_path, config)
        for i in range(4):
            store.append(_window(i))
        store.compact()
        reopened = MetricsStore(tmp_path, config)
        assert reopened.record_count() == 4
        assert len(reopened.segments()) == 1

    def test_retention_by_age(self, tmp_path):
        config = _config(seal_records=4, retention_max_age=150.0)
        store = MetricsStore(tmp_path, config)
        for i in range(4):  # partition 0: windows 0..40s
            store.append(_window(i))
        for i in range(30, 34):  # partition 3: windows 300..340s
            store.append(_window(i))
        removed, reclaimed = store.enforce_retention()
        assert removed == 1 and reclaimed > 0
        remaining = {info.partition for info in store.segments()}
        assert remaining == {3}

    def test_retention_by_total_bytes(self, tmp_path):
        config = _config(seal_records=2)
        store = MetricsStore(tmp_path, config)
        for i in range(8):
            store.append(_window(i))
        keep = store.segments()[-1].bytes
        store.config = store.config.replace(retention_max_bytes=keep)
        removed, _ = store.enforce_retention()
        assert removed == 3
        assert store.total_bytes() <= keep

    def test_maintain_if_due_runs_on_cadence(self, tmp_path):
        config = _config(seal_records=1, maintenance_interval=3)
        store = MetricsStore(tmp_path, config)
        store.append(_window(0))
        assert store.maintain_if_due() is None  # 1 seal < interval
        store.append(_window(1))
        store.append(_window(2))
        report = store.maintain_if_due()
        assert report is not None
        assert store.maintain_if_due() is None  # counter reset
