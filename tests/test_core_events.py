"""The event bus, sink registry, and staged-analyzer event emission."""

from __future__ import annotations

import pytest

from repro.core import ZoomAnalyzer
from repro.core.events import (
    AnalysisSink,
    EventBus,
    FlowBytesObserved,
    MeetingFormed,
    RTCPObserved,
    StreamEvicted,
    StreamOpened,
    StreamUpdated,
)


class _CountingSink(AnalysisSink):
    """Counts every event class it sees."""

    def __init__(self) -> None:
        self.opened = []
        self.updated = 0
        self.evicted = []
        self.meetings = []
        self.rtcp = 0
        self.flow_bytes = 0

    def on_stream_opened(self, event: StreamOpened) -> None:
        self.opened.append(event.stream.key)

    def on_stream_updated(self, event: StreamUpdated) -> None:
        self.updated += 1

    def on_stream_evicted(self, event: StreamEvicted) -> None:
        self.evicted.append(event)

    def on_meeting_formed(self, event: MeetingFormed) -> None:
        self.meetings.append(event.meeting.meeting_id)

    def on_rtcp(self, event: RTCPObserved) -> None:
        self.rtcp += 1

    def on_flow_bytes(self, event: FlowBytesObserved) -> None:
        self.flow_bytes += event.payload_len


class TestEventBus:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(MeetingFormed, seen.append)
        event = MeetingFormed(timestamp=1.0, meeting=None)
        bus.emit(event)
        assert seen == [event]

    def test_emit_dispatches_by_exact_type(self):
        bus = EventBus()
        opened, updated = [], []
        bus.subscribe(StreamOpened, opened.append)
        bus.subscribe(StreamUpdated, updated.append)
        bus.emit(StreamOpened(timestamp=0.0, stream=None, record=None))
        assert len(opened) == 1 and not updated

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(RTCPObserved, seen.append)
        bus.unsubscribe(RTCPObserved, seen.append)
        bus.emit(RTCPObserved(timestamp=0.0, report=object()))
        assert not seen
        assert not bus.has_subscribers(RTCPObserved)

    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(RTCPObserved, lambda e: order.append("a"))
        bus.subscribe(RTCPObserved, lambda e: order.append("b"))
        bus.emit(RTCPObserved(timestamp=0.0, report=object()))
        assert order == ["a", "b"]


class TestAnalysisSink:
    def test_subscriptions_cover_only_overridden_hooks(self):
        class Partial(AnalysisSink):
            def on_stream_evicted(self, event):
                pass

        types = {event_type for event_type, _ in Partial().subscriptions()}
        assert types == {StreamEvicted}

    def test_base_sink_subscribes_to_nothing(self):
        assert list(AnalysisSink().subscriptions()) == []

    def test_register_unregister(self):
        bus = EventBus()
        sink = _CountingSink()
        bus.register(sink)
        assert bus.has_subscribers(StreamOpened)
        bus.unregister(sink)
        assert not bus.has_subscribers(StreamOpened)


class TestAnalyzerEvents:
    @pytest.fixture(scope="class")
    def run(self, sfu_meeting_result):
        analyzer = ZoomAnalyzer()
        sink = _CountingSink()
        analyzer.bus.register(sink)
        result = analyzer.analyze(sfu_meeting_result.captures)
        return analyzer, sink, result

    def test_stream_opened_once_per_stream(self, run):
        _, sink, result = run
        assert sorted(sink.opened) == sorted(s.key for s in result.streams)

    def test_opened_plus_updated_covers_every_record(self, run):
        _, sink, result = run
        total_records = sum(s.packets for s in result.streams)
        assert len(sink.opened) + sink.updated == total_records

    def test_meeting_formed_for_every_final_meeting(self, run):
        _, sink, result = run
        # formation fires per opened meeting; later §4.3.2 step-3 merges may
        # collapse several into one, so formed ⊇ final and never duplicates
        final = {m.meeting_id for m in result.grouper.meetings()}
        assert final <= set(sink.meetings)
        assert len(sink.meetings) == len(set(sink.meetings))

    def test_rtcp_events_match_counters(self, run):
        _, sink, result = run
        assert sink.rtcp == (
            result.rtcp_sender_reports
            + result.rtcp_sdes_empty
            + result.rtcp_receiver_reports
        )
        assert sink.rtcp > 0

    def test_flow_bytes_observed(self, run):
        _, sink, _ = run
        assert sink.flow_bytes > 0


class TestEvictStream:
    def test_evict_removes_and_publishes(self, sfu_meeting_result):
        analyzer = ZoomAnalyzer()
        sink = _CountingSink()
        analyzer.bus.register(sink)
        result = analyzer.analyze(sfu_meeting_result.captures)
        victim = result.streams.streams()[0]
        evicted = analyzer.evict_stream(victim.key, reason="test")
        assert evicted is victim
        assert result.streams.get(victim.key) is None
        assert victim.key not in result.stream_metrics
        assert len(sink.evicted) == 1
        event = sink.evicted[0]
        assert event.stream is victim
        assert event.metrics is not None
        assert event.reason == "test"
        assert event.timestamp == victim.last_time

    def test_evict_unknown_key_returns_none(self):
        analyzer = ZoomAnalyzer()
        key = (("1.2.3.4", 1, "5.6.7.8", 2, 17), 99)
        assert analyzer.evict_stream(key) is None

    def test_evicted_stream_can_reopen(self, sfu_meeting_result):
        analyzer = ZoomAnalyzer()
        sink = _CountingSink()
        analyzer.bus.register(sink)
        result = analyzer.analyze(sfu_meeting_result.captures)
        count = len(result.streams)
        victim = max(result.streams.streams(), key=lambda s: s.packets)
        analyzer.evict_stream(victim.key)
        assert len(result.streams) == count - 1
        # replaying the capture reopens the stream under the same key
        analyzer.analyze(sfu_meeting_result.captures)
        assert result.streams.get(victim.key) is not None
        assert victim.key in [e.stream.key for e in sink.evicted]
