"""Protocol plugin registry: config, precedence, conflicts, RTP plugin.

The registry's claim dispatch must be deterministic — two plugins whose
detection rules overlap resolve by ``(priority, name)``, never by
registration order — and overlaps must surface as a ``protocols.conflicts``
counter rather than silently disappearing into precedence.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import (
    KNOWN_PROTOCOLS,
    AnalyzerConfig,
    ProtocolConfig,
)
from repro.core.detector import StunTracker, ZoomClass
from repro.core.events import EventBus
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.core.stages.base import PacketContext
from repro.core.stages.classify import ClassifyStage
from repro.net.packet import build_udp_frame, parse_frame
from repro.protocols import (
    PLUGIN_FACTORIES,
    ProtocolPlugin,
    RtpClass,
    RtpPlugin,
    ZoomPlugin,
    build_registry,
    protocol_counter_seeds,
)
from repro.rtp.rtcp import RTCPSenderReport
from repro.rtp.rtp import RTPHeader
from repro.rtp.stun import StunMessage
from repro.telemetry.registry import Telemetry
from repro.zoom.constants import ZoomMediaType


def _udp(src, sport, dst, dport, payload, ts=0.0):
    return parse_frame(build_udp_frame(src, sport, dst, dport, payload), ts)


class _DummyClass:
    """Minimal ProtocolClass implementation for synthetic plugins."""

    def __init__(self, value: str, *, claimed: bool = True, is_media: bool = True):
        self.value = value
        self._claimed = claimed
        self._is_media = is_media

    @property
    def claimed(self) -> bool:
        return self._claimed

    @property
    def is_media(self) -> bool:
        return self._is_media


class _DummyPlugin(ProtocolPlugin):
    """Claims every UDP packet to a fixed destination port."""

    def __init__(self, name: str, priority: int, match_port: int):
        self.name = name
        self.priority = priority
        self.media_class = _DummyClass(f"{name}_media")
        self.classes = (self.media_class,)
        self._port = match_port
        self.claimed_count = 0

    def classify(self, parsed):
        if parsed.is_udp and parsed.dst_port == self._port:
            return self.media_class
        return None

    def would_claim(self, parsed):
        return bool(parsed.is_udp and parsed.dst_port == self._port)

    def on_claimed(self, ctx, result):
        self.claimed_count += 1
        ctx.five_tuple = ctx.parsed.five_tuple
        return False  # no demux stage in these unit tests


def _stage(plugins):
    result = AnalysisResult(telemetry=Telemetry(enabled=True))
    return ClassifyStage(result, EventBus(), plugins), result


def _classify_one(stage, parsed):
    ctx = PacketContext(parsed=parsed)
    advanced = stage.process(ctx)
    return ctx, advanced


class TestProtocolConfig:
    def test_default_is_zoom_only(self):
        assert ProtocolConfig().protocols == ("zoom",)
        assert AnalyzerConfig().protocols.protocols == ("zoom",)

    def test_duplicates_dedupe_first_occurrence_wins(self):
        config = ProtocolConfig(protocols=("rtp", "zoom", "rtp", "zoom"))
        assert config.protocols == ("rtp", "zoom")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ProtocolConfig(protocols=("zoom", "sip"))

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            ProtocolConfig(protocols=())

    def test_factories_cover_every_known_protocol(self):
        assert set(PLUGIN_FACTORIES) == set(KNOWN_PROTOCOLS)


class TestBuildRegistry:
    def test_default_registry_is_single_zoom_plugin(self):
        plugins = build_registry(AnalyzerConfig())
        assert len(plugins) == 1
        assert isinstance(plugins[0], ZoomPlugin)

    def test_registry_order_is_priority_not_config_order(self):
        config = AnalyzerConfig(
            protocols=ProtocolConfig(protocols=("rtp", "zoom"))
        )
        plugins = build_registry(config)
        assert [plugin.name for plugin in plugins] == ["zoom", "rtp"]
        assert plugins[0].priority < plugins[1].priority

    def test_analyzer_back_compat_wraps_detector_in_zoom_plugin(self):
        analyzer = ZoomAnalyzer(AnalyzerConfig())
        assert [plugin.name for plugin in analyzer.plugins] == ["zoom"]
        assert analyzer.plugins[0].detector is analyzer.result.detector

    def test_counter_seeds_present_before_first_packet(self):
        analyzer = ZoomAnalyzer(
            AnalyzerConfig(
                telemetry=True,
                protocols=ProtocolConfig(protocols=("zoom", "rtp")),
            )
        )
        counters = analyzer.result.telemetry_snapshot().counters
        for name in protocol_counter_seeds(["zoom", "rtp"]):
            assert counters[name] == 0

    def test_counter_seed_names(self):
        seeds = protocol_counter_seeds(["zoom", "rtp"])
        assert "protocols.conflicts" in seeds
        assert "protocols.claimed.zoom" in seeds
        assert "protocols.claimed.rtp" in seeds
        assert "protocols.media.rtp" in seeds


class TestPrecedence:
    def test_lower_priority_value_wins(self):
        alpha = _DummyPlugin("alpha", 1, 7000)
        beta = _DummyPlugin("beta", 5, 7000)
        stage, result = _stage([beta, alpha])  # registration order reversed
        ctx, _ = _classify_one(
            stage, _udp("10.0.0.1", 1111, "10.0.0.2", 7000, b"x" * 20)
        )
        assert ctx.protocol == "alpha"
        assert alpha.claimed_count == 1 and beta.claimed_count == 0
        counters = result.telemetry_snapshot().counters
        assert counters["protocols.claimed.alpha"] == 1
        assert counters["protocols.conflicts"] == 1  # beta would also claim
        assert result.packets_zoom == 1

    def test_priority_tie_breaks_by_name(self):
        first = _DummyPlugin("aardvark", 5, 7000)
        second = _DummyPlugin("zebra", 5, 7000)
        stage, result = _stage([second, first])
        ctx, _ = _classify_one(
            stage, _udp("10.0.0.1", 1111, "10.0.0.2", 7000, b"x" * 20)
        )
        assert ctx.protocol == "aardvark"

    def test_no_conflict_counted_when_other_plugin_abstains(self):
        alpha = _DummyPlugin("alpha", 1, 7000)
        beta = _DummyPlugin("beta", 5, 8000)
        stage, result = _stage([alpha, beta])
        _classify_one(stage, _udp("10.0.0.1", 1111, "10.0.0.2", 7000, b"x" * 20))
        counters = result.telemetry_snapshot().counters
        assert counters["protocols.claimed.alpha"] == 1
        assert counters.get("protocols.conflicts", 0) == 0

    def test_all_abstain_falls_back_to_not_zoom(self):
        alpha = _DummyPlugin("alpha", 1, 7000)
        stage, result = _stage([alpha])
        ctx, advanced = _classify_one(
            stage, _udp("10.0.0.1", 1111, "10.0.0.2", 9999, b"x" * 20)
        )
        assert advanced is False
        assert ctx.klass is ZoomClass.NOT_ZOOM
        assert ctx.plugin is None
        counters = result.telemetry_snapshot().counters
        assert counters["classify.class.not_zoom"] == 1
        assert result.packets_zoom == 0

    @given(
        order=st.permutations(
            [("alpha", 3), ("beta", 1), ("gamma", 1), ("delta", 4)]
        )
    )
    def test_claimant_independent_of_registration_order(self, order):
        plugins = [_DummyPlugin(name, prio, 7000) for name, prio in order]
        stage, result = _stage(plugins)
        ctx, _ = _classify_one(
            stage, _udp("10.0.0.1", 1111, "10.0.0.2", 7000, b"x" * 20)
        )
        # All four match; min (priority, name) is always ("beta", 1).
        assert ctx.protocol == "beta"
        counters = result.telemetry_snapshot().counters
        assert counters["protocols.claimed.beta"] == 1
        # Everything sorted after the claimant also matches -> 3 conflicts.
        assert counters["protocols.conflicts"] == 3

    @given(claiming=st.integers(min_value=1, max_value=5))
    def test_conflict_count_matches_overlap_size(self, claiming):
        plugins = [
            _DummyPlugin(f"p{index}", index, 7000) for index in range(claiming)
        ]
        stage, result = _stage(plugins)
        _classify_one(stage, _udp("10.0.0.1", 1111, "10.0.0.2", 7000, b"x" * 20))
        counters = result.telemetry_snapshot().counters
        assert counters.get("protocols.conflicts", 0) == claiming - 1


class TestStunPeek:
    def test_peek_matches_lookup_without_refreshing(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn("10.0.0.1", 5000, 0.0)
        assert tracker.peek("10.0.0.1", 5000, 9.0) is True
        # peek at 9.0 must NOT have refreshed the binding: at 10.5 the
        # original learn (t=0) has expired.
        assert tracker.peek("10.0.0.1", 5000, 10.5) is False

    def test_lookup_refresh_extends_where_peek_does_not(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn("10.0.0.1", 5000, 0.0)
        assert tracker.lookup("10.0.0.1", 5000, 9.0, refresh=True) is True
        assert tracker.peek("10.0.0.1", 5000, 15.0) is True  # refreshed at 9

    def test_peek_expired_does_not_delete_binding(self):
        tracker = StunTracker(timeout=10.0)
        tracker.learn("10.0.0.1", 5000, 0.0)
        assert tracker.peek("10.0.0.1", 5000, 20.0) is False
        assert len(tracker) == 1  # expiry stays lazy; purge() reaps


class TestRtpPlugin:
    CALLER = ("10.8.1.1", 50000)
    CALLEE = ("198.18.9.9", 60000)

    def _plugin_with_flow(self):
        plugin = RtpPlugin()
        stun = StunMessage.binding_request(b"abcdefghijkl").serialize()
        parsed = _udp(*self.CALLER, *self.CALLEE, stun)
        assert plugin.classify(parsed) is RtpClass.RTP_STUN
        return plugin

    def _dissect(self, plugin, parsed, klass):
        result = AnalysisResult(telemetry=Telemetry(enabled=True))
        ctx = PacketContext(parsed=parsed, klass=klass, plugin=plugin)
        assert plugin.on_claimed(ctx, result) is True
        advanced = plugin.dissect(ctx, result, EventBus(), result.telemetry)
        return ctx, result, advanced

    def test_media_unclaimed_without_prior_stun(self):
        plugin = RtpPlugin()
        rtp = RTPHeader(
            payload_type=96, sequence=1, timestamp=1000, ssrc=7
        ).serialize() + b"p" * 20
        assert plugin.classify(_udp(*self.CALLER, *self.CALLEE, rtp)) is None

    def test_video_marker_synthesizes_one_packet_frame(self):
        plugin = self._plugin_with_flow()
        rtp = RTPHeader(
            payload_type=96, sequence=5, timestamp=9000, ssrc=7, marker=True
        ).serialize() + b"p" * 20
        parsed = _udp(*self.CALLER, *self.CALLEE, rtp, ts=1.0)
        klass = plugin.classify(parsed)
        assert klass is RtpClass.RTP_MEDIA
        ctx, result, advanced = self._dissect(plugin, parsed, klass)
        assert advanced is True
        record = ctx.record
        assert record is not None
        assert record.protocol == "rtp"
        assert record.media_type == int(ZoomMediaType.VIDEO)
        assert record.packets_in_frame == 1  # marker closes the frame
        assert record.frame_sequence == 5
        assert record.is_p2p is True

    def test_non_marker_video_does_not_close_a_frame(self):
        plugin = self._plugin_with_flow()
        rtp = RTPHeader(
            payload_type=96, sequence=6, timestamp=9000, ssrc=7, marker=False
        ).serialize() + b"p" * 20
        parsed = _udp(*self.CALLER, *self.CALLEE, rtp, ts=1.0)
        ctx, _, _ = self._dissect(plugin, parsed, plugin.classify(parsed))
        assert ctx.record.packets_in_frame == 0

    def test_audio_payload_type_maps_to_audio_media(self):
        plugin = self._plugin_with_flow()
        rtp = RTPHeader(
            payload_type=111, sequence=2, timestamp=480, ssrc=9
        ).serialize() + b"a" * 40
        parsed = _udp(*self.CALLER, *self.CALLEE, rtp, ts=0.5)
        ctx, _, _ = self._dissect(plugin, parsed, plugin.classify(parsed))
        assert ctx.record.media_type == int(ZoomMediaType.AUDIO)
        assert ctx.record.packets_in_frame == 0  # audio has no frames

    def test_rtcp_sender_report_observed_not_recorded(self):
        plugin = self._plugin_with_flow()
        report = RTCPSenderReport(
            ssrc=7,
            ntp_seconds=1,
            ntp_fraction=2,
            rtp_timestamp=3,
            packet_count=4,
            octet_count=5,
        ).serialize()
        parsed = _udp(*self.CALLER, *self.CALLEE, report, ts=2.0)
        klass = plugin.classify(parsed)
        assert klass is RtpClass.RTP_MEDIA  # RFC 5761: muxed on the flow
        result = AnalysisResult(telemetry=Telemetry(enabled=True))
        ctx = PacketContext(parsed=parsed, klass=klass, plugin=plugin)
        assert plugin.on_claimed(ctx, result) is True
        advanced = plugin.dissect(ctx, result, EventBus(), result.telemetry)
        assert advanced is False  # RTCP ends at the observers
        assert ctx.record is None
        assert result.rtcp_sender_reports == 1

    def test_would_claim_does_not_refresh_binding(self):
        plugin = RtpPlugin(stun_timeout=10.0)
        stun = StunMessage.binding_request(b"abcdefghijkl").serialize()
        plugin.classify(_udp(*self.CALLER, *self.CALLEE, stun, ts=0.0))
        rtp = RTPHeader(
            payload_type=96, sequence=1, timestamp=0, ssrc=7
        ).serialize() + b"p" * 20
        assert plugin.would_claim(_udp(*self.CALLER, *self.CALLEE, rtp, ts=9.0))
        # The probe at t=9 must not have refreshed: the flow is gone at 11.
        assert plugin.classify(_udp(*self.CALLER, *self.CALLEE, rtp, ts=11.0)) is None


class TestZoomRtpConflict:
    def test_zoom_claim_over_rtp_counts_conflict(self):
        """A STUN-learned P2P flow both plugins can claim resolves to Zoom
        (priority 0 < 10) and ticks ``protocols.conflicts``."""
        config = AnalyzerConfig(
            telemetry=True,
            protocols=ProtocolConfig(protocols=("zoom", "rtp")),
        )
        analyzer = ZoomAnalyzer(config)
        stage = ClassifyStage(analyzer.result, analyzer.bus, analyzer.plugins)
        # STUN to a Zoom zone controller: the Zoom detector learns the
        # client endpoint; the generic plugin's sniff-all tracker learns
        # both ends of the exchange.
        stun = StunMessage.binding_request(b"abcdefghijkl").serialize()
        _classify_one(
            stage, _udp("10.8.1.1", 50000, "170.114.200.9", 3478, stun)
        )
        # Plain RTP on the learned endpoint: claimable by both plugins.
        rtp = RTPHeader(
            payload_type=96, sequence=1, timestamp=0, ssrc=7
        ).serialize() + b"p" * 20
        ctx, _ = _classify_one(
            stage, _udp("10.8.1.1", 50000, "198.18.9.9", 60000, rtp, ts=0.5)
        )
        assert ctx.protocol == "zoom"
        counters = analyzer.result.telemetry_snapshot().counters
        assert counters["protocols.conflicts"] >= 1
