"""Tests for UDP and TCP header handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, pseudo_header_v4
from repro.net.ip import ip_from_str
from repro.net.tcp import TCPFlags, TCPHeader, TCPOption
from repro.net.udp import UDPHeader

SRC = ip_from_str("10.8.0.1")
DST = ip_from_str("170.114.0.1")


class TestUDP:
    def test_roundtrip(self):
        header = UDPHeader(50000, 8801, 108, checksum=0xBEEF)
        parsed, offset = UDPHeader.parse(header.serialize())
        assert parsed == header
        assert offset == 8

    def test_payload_length(self):
        assert UDPHeader(1, 2, 108).payload_length == 100

    def test_checksum_verifies_with_pseudo_header(self):
        payload = b"hello zoom"
        header = UDPHeader(1234, 8801, 8 + len(payload))
        wire = header.serialize_with_checksum(payload, SRC, DST)
        pseudo = pseudo_header_v4(SRC, DST, 17, header.length)
        assert internet_checksum(pseudo + wire + payload) == 0

    def test_zero_checksum_becomes_ffff(self):
        # Find nothing special — just assert the rule is applied on the path
        # where the computed checksum would be zero is hard to construct;
        # instead verify the serialized checksum is never zero.
        for port in range(50):
            header = UDPHeader(port, 8801, 9)
            wire = header.serialize_with_checksum(b"A", SRC, DST)
            assert wire[6:8] != b"\x00\x00"

    def test_parse_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            UDPHeader.parse(b"\x00" * 7)

    def test_parse_rejects_length_below_header(self):
        bad = UDPHeader(1, 2, 8).serialize()[:4] + (4).to_bytes(2, "big") + b"\x00\x00"
        with pytest.raises(ValueError):
            UDPHeader.parse(bad)

    def test_port_validation(self):
        with pytest.raises(ValueError):
            UDPHeader(70000, 1, 8)

    @given(
        src=st.integers(min_value=0, max_value=0xFFFF),
        dst=st.integers(min_value=0, max_value=0xFFFF),
        length=st.integers(min_value=8, max_value=0xFFFF),
    )
    def test_roundtrip_property(self, src, dst, length):
        header = UDPHeader(src, dst, length)
        parsed, _offset = UDPHeader.parse(header.serialize())
        assert parsed == header


class TestTCP:
    def test_roundtrip_no_options(self):
        header = TCPHeader(443, 51000, seq=123456, ack=654321, flags=TCPFlags.ACK | TCPFlags.PSH)
        parsed, offset = TCPHeader.parse(header.serialize())
        assert parsed == header
        assert offset == 20

    def test_roundtrip_with_options(self):
        options = (
            TCPOption(TCPOption.MSS, (1460).to_bytes(2, "big")),
            TCPOption(TCPOption.WINDOW_SCALE, b"\x07"),
        )
        header = TCPHeader(1, 2, seq=9, options=options)
        parsed, offset = TCPHeader.parse(header.serialize())
        assert parsed.options == options
        assert offset == header.header_len
        assert offset % 4 == 0

    def test_nop_padding_dropped_on_parse(self):
        header = TCPHeader(1, 2, seq=0, options=(TCPOption(TCPOption.WINDOW_SCALE, b"\x02"),))
        wire = header.serialize()
        parsed, _ = TCPHeader.parse(wire)
        assert parsed.options == header.options  # padding NOPs not reported

    def test_flags_preserved(self):
        header = TCPHeader(1, 2, seq=0, flags=TCPFlags.SYN | TCPFlags.ECE)
        parsed, _ = TCPHeader.parse(header.serialize())
        assert parsed.flags & TCPFlags.SYN
        assert parsed.flags & TCPFlags.ECE
        assert not parsed.flags & TCPFlags.ACK

    def test_parse_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            TCPHeader.parse(b"\x00" * 19)

    def test_parse_rejects_bad_data_offset(self):
        wire = bytearray(TCPHeader(1, 2, seq=0).serialize())
        wire[12] = 0x30  # data offset 3 words < 5
        with pytest.raises(ValueError):
            TCPHeader.parse(bytes(wire))

    def test_parse_rejects_truncated_option(self):
        wire = bytearray(TCPHeader(1, 2, seq=0).serialize())
        wire[12] = 0x60  # claim 24-byte header
        wire.extend(b"\x02\x08\x00\x00")  # MSS option claiming length 8
        with pytest.raises(ValueError):
            TCPHeader.parse(bytes(wire))

    def test_seq_validation(self):
        with pytest.raises(ValueError):
            TCPHeader(1, 2, seq=1 << 32)

    @given(
        seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
        ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
        flags=st.integers(min_value=0, max_value=0xFF),
        window=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_roundtrip_property(self, seq, ack, flags, window):
        header = TCPHeader(1024, 443, seq=seq, ack=ack, flags=flags, window=window)
        parsed, _offset = TCPHeader.parse(header.serialize())
        assert (parsed.seq, parsed.ack, int(parsed.flags), parsed.window) == (
            seq,
            ack,
            flags,
            window,
        )
