"""Property-based agreement between the sharding pre-parse and the full decoder.

:func:`repro.core.sharded.flow_shard_info` reads raw header bytes once per
packet to pick a shard before any full decode happens.  Its contract is that
it agrees with :func:`repro.net.packet.parse_frame` on what matters for
flow-affine sharding:

* both directions of a flow hash to the same shard, for any shard count;
* a frame is hashable exactly when the full decoder finds an IP + TCP/UDP
  flow key in it;
* it never misses a packet the full STUN parser would accept on the Zoom
  STUN port (a miss would silently break cross-shard P2P detection).

Frames are generated across IPv4/IPv6, with and without an 802.1Q VLAN tag,
TCP and UDP, random and genuine-STUN payloads.
"""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharded import flow_shard_info
from repro.net.checksum import internet_checksum
from repro.net.packet import parse_frame
from repro.rtp.stun import STUN_PORT, is_stun

STUN_MAGIC = b"\x21\x12\xa4\x42"


def _stun_payload(txid: bytes, body_len: int) -> bytes:
    """A well-formed STUN binding request with a zeroed attribute body."""
    return struct.pack("!HH", 0x0001, body_len) + STUN_MAGIC + txid + b"\x00" * body_len


def _build_frame(
    v6: bool,
    vlan: int | None,
    proto: int,
    src: bytes,
    sport: int,
    dst: bytes,
    dport: int,
    payload: bytes,
) -> bytes:
    if proto == 17:
        l4 = struct.pack("!HHHH", sport, dport, 8 + len(payload), 0) + payload
    else:
        l4 = (
            struct.pack("!HHIIBBHHH", sport, dport, 0, 0, 5 << 4, 0x10, 65535, 0, 0)
            + payload
        )
    if v6:
        ip = struct.pack("!IHBB", 6 << 28, len(l4), proto, 64) + src + dst
        ethertype = 0x86DD
    else:
        head = struct.pack("!BBHHHBBH", 0x45, 0, 20 + len(l4), 0, 0, 64, proto, 0)
        checksum = internet_checksum(head + src + dst)
        head = head[:10] + checksum.to_bytes(2, "big")
        ip = head + src + dst
        ethertype = 0x0800
    ether = b"\x02" * 6 + b"\x04" * 6
    if vlan is not None:
        ether += struct.pack("!HHH", 0x8100, vlan, ethertype)
    else:
        ether += struct.pack("!H", ethertype)
    return ether + ip + l4


ports = st.one_of(st.integers(min_value=1, max_value=65535), st.just(STUN_PORT))
payloads = st.one_of(
    st.binary(min_size=0, max_size=48),
    st.builds(
        _stun_payload,
        st.binary(min_size=12, max_size=12),
        st.integers(min_value=0, max_value=16),
    ),
)


@st.composite
def flow_frames(draw) -> tuple[bytes, bytes]:
    """One generated flow as (forward frame, reverse frame)."""
    v6 = draw(st.booleans())
    addr_len = 16 if v6 else 4
    vlan = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFF)))
    proto = draw(st.sampled_from([6, 17]))
    src = draw(st.binary(min_size=addr_len, max_size=addr_len))
    dst = draw(st.binary(min_size=addr_len, max_size=addr_len))
    sport = draw(ports)
    dport = draw(ports)
    payload = draw(payloads)
    forward = _build_frame(v6, vlan, proto, src, sport, dst, dport, payload)
    reverse = _build_frame(v6, vlan, proto, dst, dport, src, sport, payload)
    return forward, reverse


class TestFlowShardInfoProperties:
    @given(flow_frames())
    @settings(max_examples=200, deadline=None)
    def test_both_directions_land_on_the_same_shard(self, pair):
        forward, reverse = pair
        info_f = flow_shard_info(forward)
        info_r = flow_shard_info(reverse)
        assert info_f is not None and info_r is not None
        assert info_f[0] == info_r[0]
        assert info_f[1] == info_r[1]
        for shards in (2, 3, 4, 8, 16):
            assert info_f[0] % shards == info_r[0] % shards

    @given(flow_frames())
    @settings(max_examples=200, deadline=None)
    def test_hashable_agrees_with_full_decode(self, pair):
        forward, _ = pair
        parsed = parse_frame(forward)
        has_flow_key = (parsed.ipv4 is not None or parsed.ipv6 is not None) and (
            parsed.udp is not None or parsed.tcp is not None
        )
        assert has_flow_key, "generated frames must fully decode"
        assert flow_shard_info(forward) is not None

    @given(flow_frames(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncation_never_moves_a_flow(self, pair, data):
        """Cutting a frame short may make it unhashable, but must never
        silently hash it onto a different shard than the full frame."""
        forward, _ = pair
        full = flow_shard_info(forward)
        assert full is not None
        cut = data.draw(st.integers(min_value=0, max_value=len(forward)))
        info = flow_shard_info(forward[:cut])
        if info is not None:
            assert info[0] == full[0]

    @given(flow_frames())
    @settings(max_examples=300, deadline=None)
    def test_stun_flag_agrees_with_full_parser(self, pair):
        forward, _ = pair
        info = flow_shard_info(forward)
        assert info is not None
        parsed = parse_frame(forward)
        genuine = (
            parsed.udp is not None
            and STUN_PORT in (parsed.udp.src_port, parsed.udp.dst_port)
            and is_stun(parsed.payload)
        )
        if genuine:
            assert info[1], "fast path must never miss a genuine STUN packet"
        if info[1]:
            # The fast check is deliberately more permissive than the full
            # parser (magic cookie at the right offset on the STUN port);
            # verify everything it claims about the frame actually holds.
            assert parsed.udp is not None
            assert STUN_PORT in (parsed.udp.src_port, parsed.udp.dst_port)
            assert parsed.payload[4:8] == STUN_MAGIC
