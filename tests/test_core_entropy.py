"""Tests for entropy-based header analysis (§4.2.1)."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.entropy import (
    FieldClass,
    analyze_flow,
    classify,
    classify_field,
    extract_values,
    fields_of_class,
    find_rtp_signature,
    sequence_stats,
)


def _payloads_counter(n=200, width=2, offset=4, step=1):
    """Payloads with a counter field at a known position, random elsewhere."""
    rng = random.Random(0)
    out = []
    for i in range(n):
        prefix = rng.randbytes(offset)
        counter = ((i * step) % (1 << (8 * width))).to_bytes(width, "big")
        out.append(prefix + counter + rng.randbytes(8))
    return out


class TestExtract:
    def test_basic_extraction(self):
        payloads = [b"\x00\x01\x02\x03", b"\x10\x11\x12\x13"]
        assert extract_values(payloads, 1, 2) == [0x0102, 0x1112]

    def test_short_payloads_skipped(self):
        payloads = [b"\x00\x01", b"\x00\x01\x02\x03"]
        assert extract_values(payloads, 2, 2) == [0x0203]


class TestClassify:
    def test_constant(self):
        report = classify_field([b"\x07" + bytes(3)] * 50, 0, 1)
        assert report.field_class is FieldClass.CONSTANT

    def test_identifier_few_values(self):
        rng = random.Random(1)
        payloads = [bytes([rng.choice([13, 15, 16])]) + rng.randbytes(4) for _ in range(300)]
        report = classify_field(payloads, 0, 1)
        assert report.field_class is FieldClass.IDENTIFIER

    def test_counter_sequential(self):
        report = classify_field(_payloads_counter(), 4, 2)
        assert report.field_class is FieldClass.COUNTER

    def test_counter_with_wraparound(self):
        payloads = [((0xFFF0 + i) % 0x10000).to_bytes(2, "big") for i in range(64)]
        report = classify_field(payloads, 0, 2)
        assert report.field_class is FieldClass.COUNTER

    def test_random_bytes(self):
        rng = random.Random(2)
        payloads = [rng.randbytes(8) for _ in range(400)]
        report = classify_field(payloads, 2, 4)
        assert report.field_class is FieldClass.RANDOM

    def test_empty(self):
        assert classify(sequence_stats([], 1)) is FieldClass.MIXED


class TestAnalyzeFlow:
    def test_sweep_covers_widths_and_offsets(self):
        payloads = _payloads_counter(50)
        reports = analyze_flow(payloads, widths=(1, 2), max_offset=8)
        keys = {(r.offset, r.width) for r in reports}
        assert (0, 1) in keys and (6, 2) in keys

    def test_fields_of_class_filter(self):
        reports = analyze_flow(_payloads_counter(), widths=(2,), max_offset=8)
        counters = fields_of_class(reports, FieldClass.COUNTER)
        assert any(r.offset == 4 for r in counters)


class TestRtpSignature:
    def test_finds_rtp_structure(self):
        """seq(2B counter) at o+2, ts(4B counter) at o+4, ssrc(4B id) at
        o+8 — built synthetically at offset 3."""
        rng = random.Random(3)
        payloads = []
        for i in range(400):
            buffer = bytearray(rng.randbytes(20))
            buffer[3] = 0x80  # version bits
            buffer[5:7] = (1000 + i).to_bytes(2, "big")
            buffer[7:11] = (90_000 + 3000 * i).to_bytes(4, "big")
            buffer[11:15] = (0x110).to_bytes(4, "big")
            payloads.append(bytes(buffer))
        reports = analyze_flow(payloads, widths=(1, 2, 4), max_offset=20)
        assert 3 in find_rtp_signature(reports)

    def test_no_signature_in_random_data(self):
        rng = random.Random(4)
        payloads = [rng.randbytes(24) for _ in range(400)]
        reports = analyze_flow(payloads, widths=(1, 2, 4), max_offset=20)
        assert find_rtp_signature(reports) == []


class TestOnZoomTraffic:
    @staticmethod
    def _one_video_flow(result):
        """Payloads of a single video UDP flow, as the paper analyzes them
        (the multi-line overlap effect appears when flows are mixed)."""
        from collections import Counter

        from repro.net.packet import parse_frame
        from repro.zoom.packets import parse_zoom_payload

        by_flow = {}
        for captured in result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            if not packet.is_udp or packet.dst_port != 8801:
                continue
            zoom = parse_zoom_payload(packet.payload, from_server=True)
            if zoom.is_media and zoom.media.media_type == 16:
                by_flow.setdefault(packet.five_tuple, []).append(packet.payload)
        biggest = max(by_flow.values(), key=len)
        return biggest

    def test_video_flow_fields(self, sfu_meeting_result):
        """On a real (emulated) Zoom video flow: type byte is an identifier,
        Zoom media sequence is a counter, deep payload is random."""
        payloads = self._one_video_flow(sfu_meeting_result)
        assert len(payloads) > 300
        # Byte 8: the media-encapsulation type byte (constant 16 here).
        assert classify_field(payloads, 8, 1).field_class in (
            FieldClass.CONSTANT,
            FieldClass.IDENTIFIER,
        )
        # Bytes 17-18: the Zoom media sequence number.
        assert classify_field(payloads, 17, 2).field_class is FieldClass.COUNTER
        # Bytes 19-22: the Zoom media timestamp.
        assert classify_field(payloads, 19, 4).field_class is FieldClass.COUNTER
        # RTP sequence at 34-35 (RTP header at offset 32).
        assert classify_field(payloads, 34, 2).field_class is FieldClass.COUNTER
        # SSRC at 40-43.
        assert classify_field(payloads, 40, 4).field_class in (
            FieldClass.CONSTANT,
            FieldClass.IDENTIFIER,
        )
        # Encrypted payload well past the headers.
        assert classify_field(payloads, 60, 4).field_class is FieldClass.RANDOM

    def test_rtp_signature_on_video_flow(self, sfu_meeting_result):
        payloads = self._one_video_flow(sfu_meeting_result)
        reports = analyze_flow(payloads, widths=(1, 2, 4), max_offset=48)
        assert 32 in find_rtp_signature(reports)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_stats_invariants(values):
    stats = sequence_stats(values, 1)
    assert stats.samples == len(values)
    assert 1 <= stats.distinct <= len(values)
    assert 0.0 <= stats.entropy <= 1.0 + 1e-9
    assert 0.0 <= stats.increment_fraction <= 1.0
    assert 0.0 < stats.top_share <= 1.0
