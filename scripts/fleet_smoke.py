#!/usr/bin/env python
"""CI smoke test for fleet federation.

Exercises the fleet the way a multi-campus deployment actually degrades:

1. ``fleet simulate`` builds a three-node fleet of store directories plus
   a ``fleet.json`` manifest; ``fleet status`` must see 3/3 nodes and
   ``fleet query`` must return every node's windows (window counts are
   additive across vantage points),
2. three live ``analyze-live --store --listen`` daemons serve their
   stores over HTTP; a manifest of endpoint nodes federates them, then
   one daemon is **SIGKILL**ed mid-run — ``fleet query`` must return
   *partial results with the dead node flagged* (not an error), and
   ``fleet status`` must fire the node-unreachable anomaly.

Run from the repository root::

    PYTHONPATH=src python scripts/fleet_smoke.py

Exits non-zero on the first failed check; CI wraps it in a job timeout.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FleetConfig, FleetNodeConfig  # noqa: E402
from repro.fleet import save_fleet_manifest  # noqa: E402
from repro.net.pcap import write_pcap  # noqa: E402
from repro.simulation import (  # noqa: E402
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)

WINDOW = 5.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=180,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def store_query(endpoint: str, payload: dict, timeout: float = 5.0) -> dict:
    request = urllib.request.Request(
        endpoint + "/store/query",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def simulated_fleet_phase(tmp: Path) -> None:
    root = tmp / "fleet"
    simulated = cli(
        "fleet", "simulate", str(root), "--nodes", "3", "--peak", "4",
        "--seed", "7",
    )
    check(simulated.returncode == 0, "fleet simulate built 3 node stores")
    manifest = root / "fleet.json"
    check(manifest.is_file(), "fleet manifest written")

    status = cli("fleet", "status", str(root))
    check(
        status.returncode == 0 and "3/3 reachable" in status.stdout,
        "fleet status sees 3/3 simulated nodes",
    )

    federated = cli(
        "fleet", "query", str(root), "--kind", "window", "--format", "json"
    )
    fleet_windows = [
        json.loads(line) for line in federated.stdout.splitlines()
    ]
    per_node = 0
    for node_dir in sorted(root.glob("node-*")):
        single = cli("query", str(node_dir), "--format", "json")
        per_node += len(single.stdout.splitlines())
    check(
        federated.returncode == 0
        and per_node > 0
        and len(fleet_windows) == per_node,
        f"fleet query returns every node's windows ({per_node} total)",
    )
    starts = [w["start"] for w in fleet_windows]
    check(starts == sorted(starts), "federated windows arrive time-ordered")


def node_trace(tmp: Path, index: int) -> Path:
    directory = tmp / f"caps-{index}"
    directory.mkdir()
    config = MeetingConfig(
        meeting_id=f"fleet-smoke-{index}",
        participants=(
            ParticipantConfig(name=f"alice{index}", on_campus=True),
            ParticipantConfig(
                name=f"bob{index}", on_campus=True, join_time=1.0
            ),
        ),
        duration=20.0,
        allow_p2p=False,
        seed=100 + index,
    )
    captures = list(MeetingSimulator(config).run().captures)
    write_pcap(directory / "zoom.pcap", captures)
    return directory


def live_fleet_phase(tmp: Path) -> None:
    daemons: list[subprocess.Popen] = []
    try:
        nodes = []
        for index in range(3):
            directory = node_trace(tmp, index)
            port = free_port()
            store_dir = tmp / f"live-store-{index}"
            daemons.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.cli", "analyze-live",
                        str(directory),
                        "--window", str(WINDOW), "--lateness", "1",
                        "--poll-interval", "0.2",
                        "--store", str(store_dir),
                        "--listen", f"127.0.0.1:{port}",
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
            nodes.append(
                FleetNodeConfig(
                    name=f"live-{index}",
                    endpoint=f"http://127.0.0.1:{port}",
                )
            )
        manifest = tmp / "live-fleet.json"
        save_fleet_manifest(
            FleetConfig(nodes=tuple(nodes), query_timeout=5.0), manifest
        )

        # Wait for every daemon's store endpoint to serve its windows.
        deadline = time.monotonic() + 60.0
        per_node: dict[str, int] = {}
        while time.monotonic() < deadline and len(per_node) < 3:
            for node, daemon in zip(nodes, daemons):
                if node.name in per_node:
                    continue
                if daemon.poll() is not None:
                    _, err = daemon.communicate()
                    fail(f"daemon {node.name} exited early: {err[-400:]}")
                try:
                    answer = store_query(node.endpoint, {"kinds": ["window"]})
                except OSError:
                    continue
                if answer["records"]:
                    per_node[node.name] = len(answer["records"])
            time.sleep(0.2)
        check(
            len(per_node) == 3,
            "all 3 live daemons answer /store/query with windows",
        )

        status = cli("fleet", "status", str(manifest))
        check(
            status.returncode == 0 and "3/3 reachable" in status.stdout,
            "fleet status scrapes all 3 live endpoints",
        )

        # Kill one node mid-run: the fleet must keep answering.
        daemons[2].send_signal(signal.SIGKILL)
        daemons[2].communicate(timeout=30)
        check(
            daemons[2].returncode == -signal.SIGKILL,
            "node live-2 killed mid-run",
        )

        partial = cli(
            "fleet", "query", str(manifest), "--kind", "window",
            "--format", "json",
        )
        records = [json.loads(line) for line in partial.stdout.splitlines()]
        check(
            partial.returncode == 0,
            "fleet query with a dead node still exits 0 (partial results)",
        )
        check(
            len(records) >= per_node["live-0"] + per_node["live-1"],
            f"partial results carry the surviving nodes' windows "
            f"({len(records)} records)",
        )
        check(
            "2/3 nodes" in partial.stderr,
            "summary reports 2/3 nodes answered",
        )
        check(
            "warning: node live-2 missing" in partial.stderr,
            "dead node flagged by name in the partial-result warning",
        )

        status = cli("fleet", "status", str(manifest))
        check(
            status.returncode == 1
            and "node-unreachable" in status.stdout
            and "live-2" in status.stdout,
            "fleet status exits 1 and fires node-unreachable for live-2",
        )
    finally:
        for daemon in daemons:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGTERM)
        for daemon in daemons:
            if daemon.poll() is None:
                try:
                    daemon.communicate(timeout=30)
                except subprocess.TimeoutExpired:
                    daemon.kill()
                    daemon.communicate()


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        simulated_fleet_phase(Path(tmp))
        live_fleet_phase(Path(tmp))
    print("fleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
