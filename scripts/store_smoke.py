#!/usr/bin/env python
"""CI smoke test for the persistent metrics store.

Exercises the ISSUE's acceptance path end to end, the way a measurement
campaign actually fails:

1. run ``analyze-live --store`` over a capture directory and **SIGKILL**
   the daemon mid-run — no drain, no manifest courtesy write,
2. reopen the store: it must open cleanly, the sealed windows must come
   back exactly once each, and recovery may discard at most the torn tail
   frame of each active segment,
3. run a clean campaign over the same capture, then check the queried
   window totals against the batch analyzer and walk the operator CLI:
   ``query`` (table + JSON), ``compact``, and ``backfill`` from the JSONL
   log into a fresh store.

Run from the repository root::

    PYTHONPATH=src python scripts/store_smoke.py

Exits non-zero on the first failed check; CI wraps it in a job timeout.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AnalyzerConfig, ZoomAnalyzer  # noqa: E402
from repro.net.pcap import write_pcap  # noqa: E402
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig  # noqa: E402
from repro.store import MetricsStore, StoreQuery  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402

WINDOW = 5.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def daemon_command(directory: Path, store: Path, jsonl: Path | None, *extra: str) -> list[str]:
    command = [
        sys.executable, "-m", "repro.cli", "analyze-live", str(directory),
        "--window", str(WINDOW), "--lateness", "1",
        "--poll-interval", "0.2",
        "--store", str(store),
    ]
    if jsonl is not None:
        command += ["--jsonl-out", str(jsonl)]
    return command + list(extra)


def cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def main() -> int:
    config = MeetingConfig(
        meeting_id="store-smoke",
        participants=(
            ParticipantConfig(name="alice", on_campus=True),
            ParticipantConfig(name="bob", on_campus=True, join_time=1.0),
        ),
        duration=20.0,
        allow_p2p=False,
        seed=7,
    )
    captures = list(MeetingSimulator(config).run().captures)
    print(f"simulated {len(captures)} packets")

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "caps"
        directory.mkdir()
        third = len(captures) // 3
        write_pcap(directory / "zoom-00.pcap", captures[:third])
        write_pcap(directory / "zoom-01.pcap", captures[third : 2 * third])
        write_pcap(directory / "zoom-02.pcap", captures[2 * third :])

        # ---- phase 1: SIGKILL mid-run --------------------------------
        killed_store = Path(tmp) / "killed-store"
        daemon = subprocess.Popen(
            daemon_command(directory, killed_store, None),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if any(killed_store.glob("*.seg*")):
                    break  # the store has started writing
                if daemon.poll() is not None:
                    fail("daemon exited before writing to the store")
                time.sleep(0.1)
            else:
                fail("store never received a segment file")
            time.sleep(1.0)  # let a few windows land
            daemon.send_signal(signal.SIGKILL)
            daemon.communicate(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
        check(daemon.returncode == -signal.SIGKILL, "daemon died by SIGKILL")

        telemetry = Telemetry()
        survivor = MetricsStore(killed_store, telemetry=telemetry)
        result = survivor.query(StoreQuery())
        indices = [w["window"] for w in result.records]
        check(
            len(indices) == len(set(indices)),
            f"reopened store holds {len(indices)} windows, no duplicates",
        )
        torn = telemetry.counter("store.torn_frames")
        actives = len(survivor.active_partitions())
        check(
            torn <= max(actives, 1),
            f"at most one torn frame per active segment ({torn} torn)",
        )
        survivor.close()

        # ---- phase 2: clean campaign + operator CLI ------------------
        store_dir = Path(tmp) / "store"
        jsonl_path = Path(tmp) / "windows.jsonl"
        clean = subprocess.run(
            daemon_command(directory, store_dir, jsonl_path, "--max-polls", "2"),
            capture_output=True,
            text=True,
            timeout=120,
        )
        check(clean.returncode == 0, "clean campaign exited 0")

        batch = ZoomAnalyzer(AnalyzerConfig()).analyze(captures)
        windows = MetricsStore(store_dir).query(StoreQuery()).records
        total = sum(w["packets_total"] for w in windows)
        check(
            total == batch.packets_total,
            f"queried window totals match the batch analyzer ({total})",
        )

        shown = cli("query", str(store_dir), "--format", "table")
        check(
            shown.returncode == 0 and "packets_total" in shown.stdout,
            "repro query renders the window table",
        )
        as_json = cli("query", str(store_dir), "--kind", "stream", "--format", "json")
        streams = [json.loads(line) for line in as_json.stdout.splitlines()]
        check(
            as_json.returncode == 0
            and len(streams) == len(batch.media_streams()),
            f"repro query returns all {len(streams)} stream records",
        )
        compacted = cli("compact", str(store_dir))
        check(
            compacted.returncode == 0 and "compacted" in compacted.stdout,
            "repro compact runs maintenance",
        )

        backfill_dir = Path(tmp) / "backfilled"
        refilled = cli("backfill", str(backfill_dir), str(jsonl_path))
        check(refilled.returncode == 0, "repro backfill ingests the JSONL log")
        refill_windows = MetricsStore(backfill_dir).query(StoreQuery()).records
        check(
            sum(w["packets_total"] for w in refill_windows) == batch.packets_total,
            "backfilled store reproduces the batch totals",
        )
    print("store smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
