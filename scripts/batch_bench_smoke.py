#!/usr/bin/env python
"""CI smoke benchmark for the batch decode fast path and multicore sharding.

Guards the performance *ordering*, not absolute numbers (shared runners are
too noisy for those):

1. a border-style trace (mostly provably non-Zoom background) must analyze
   strictly faster through ``read_batches``/``feed_batch`` than through the
   scalar ``feed`` loop — if the batch path ever regresses below scalar,
   the fast path has stopped being one;
2. both paths must produce bit-identical analysis (packet totals, Zoom
   share, semantic telemetry counters);
3. when the runner has at least 2 usable cores, the process-backend
   :class:`ShardedAnalyzer` (which ships ``FrameBatch`` buffers across the
   pool) must complete and merge to the same totals — the speedup itself is
   only asserted when cores >= shards.

Run from the repository root::

    PYTHONPATH=src python scripts/batch_bench_smoke.py

Exits non-zero on the first failed check.
"""

from __future__ import annotations

import io
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AnalyzerConfig, ShardedAnalyzer, ZoomAnalyzer  # noqa: E402
from repro.net.packet import CapturedPacket, build_udp_frame  # noqa: E402
from repro.net.pcap import PcapReader, PcapWriter  # noqa: E402
from repro.telemetry.registry import shard_invariant_counters  # noqa: E402

FRAMES = 60_000
CORES = min(
    os.cpu_count() or 1,
    len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else 1 << 30,
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def border_pcap() -> bytes:
    rng = random.Random(11)
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    zoom = build_udp_frame(
        "10.8.0.5", 20000, "170.114.1.1", 8801, b"\x05\x10" + bytes(700)
    )
    t = 0.0
    for i in range(FRAMES):
        t += 0.0001
        if i % 20 == 0:
            writer.write(CapturedPacket(t, zoom))
        else:
            src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            dst = f"93.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            writer.write(
                CapturedPacket(
                    t,
                    build_udp_frame(
                        src, rng.randrange(1024, 65000), dst, 443, bytes(400)
                    ),
                )
            )
    return buffer.getvalue()


def timed(fn, rounds: int = 2):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def main() -> None:
    data = border_pcap()

    def scalar_pass():
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        for packet in PcapReader(io.BytesIO(data)):
            analyzer.feed(packet)
        return analyzer.result

    def batch_pass():
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        for batch in PcapReader(io.BytesIO(data)).read_batches():
            analyzer.feed_batch(batch)
        return analyzer.result

    scalar_result, scalar_time = timed(scalar_pass)
    batch_result, batch_time = timed(batch_pass)
    speedup = scalar_time / batch_time
    print(
        f"scalar: {FRAMES / scalar_time:,.0f} pps; "
        f"batch: {FRAMES / batch_time:,.0f} pps ({speedup:.2f}x)"
    )

    if batch_result.packets_total != scalar_result.packets_total:
        fail("batch path packet totals diverge from scalar")
    if batch_result.packets_zoom != scalar_result.packets_zoom:
        fail("batch path Zoom classification diverges from scalar")
    scalar_counters = shard_invariant_counters(scalar_result.telemetry_snapshot())
    batch_counters = shard_invariant_counters(batch_result.telemetry_snapshot())
    if batch_counters != scalar_counters:
        fail("batch path semantic telemetry diverges from scalar")
    if batch_result.telemetry_snapshot().counter("prefilter.dropped") == 0:
        fail("prefilter dropped nothing on a 95%-background trace")
    if speedup <= 1.0:
        fail(
            f"batch decode is SLOWER than scalar ({speedup:.2f}x) — "
            "the fast path has regressed"
        )

    shards = 2
    backend = "process" if CORES >= 2 else "serial"
    captures = [
        CapturedPacket(p.timestamp, p.data) for p in PcapReader(io.BytesIO(data))
    ]
    sharded, sharded_time = timed(
        lambda: ShardedAnalyzer(
            AnalyzerConfig(shards=shards, shard_backend=backend, telemetry=True)
        ).analyze(captures),
        rounds=1,
    )
    print(
        f"sharded ({shards} shards, {backend}, {CORES} cores): "
        f"{FRAMES / sharded_time:,.0f} pps"
    )
    if sharded.packets_total != scalar_result.packets_total:
        fail("sharded merge packet totals diverge from scalar")
    if sharded.packets_zoom != scalar_result.packets_zoom:
        fail("sharded merge Zoom classification diverges from scalar")
    if CORES >= shards and backend == "process":
        if sharded_time >= scalar_time:
            fail(
                f"process-backend sharding ({sharded_time:.2f}s) not faster "
                f"than the single pass ({scalar_time:.2f}s) with "
                f"{CORES} cores available"
            )
        print(f"sharded speedup: {scalar_time / sharded_time:.2f}x over scalar")
    else:
        print("sharded speedup check skipped: fewer cores than shards")

    print("OK: batch decode faster than scalar, results bit-identical")


if __name__ == "__main__":
    main()
