#!/usr/bin/env python
"""CI smoke test for the live monitoring daemon.

Exercises the whole ``analyze-live`` stack the way an operator deployment
does, end to end:

1. simulate a meeting and feed its capture into a directory *while the
   daemon is running* (file rotation plus a growing in-progress file),
2. scrape ``/metrics`` and ``/healthz`` and check the window counters
   against what went in,
3. send SIGTERM and require a clean (exit 0) drain with every window
   emitted to the JSONL log exactly once.

Run from the repository root::

    PYTHONPATH=src python scripts/service_smoke.py

Exits non-zero on the first failed check; CI wraps it in a job timeout so a
hung daemon fails fast instead of eating the runner.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.net.pcap import write_pcap  # noqa: E402
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig  # noqa: E402

WINDOW = 5.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def scrape(url: str) -> str:
    return urllib.request.urlopen(url, timeout=5).read().decode()


def main() -> int:
    config = MeetingConfig(
        meeting_id="smoke",
        participants=(
            ParticipantConfig(name="alice", on_campus=True),
            ParticipantConfig(name="bob", on_campus=True, join_time=1.0),
        ),
        duration=20.0,
        allow_p2p=False,
        seed=7,
    )
    captures = list(MeetingSimulator(config).run().captures)
    print(f"simulated {len(captures)} packets")

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "caps"
        directory.mkdir()
        jsonl_path = Path(tmp) / "windows.jsonl"
        third = len(captures) // 3
        write_pcap(directory / "zoom-00.pcap", captures[:third])

        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "analyze-live", str(directory),
                "--window", str(WINDOW), "--lateness", "1",
                "--poll-interval", "0.2",
                "--listen", "127.0.0.1:0",
                "--jsonl-out", str(jsonl_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            url = None
            for _ in range(2):
                line = daemon.stdout.readline()
                print(f"daemon: {line.rstrip()}")
                if line.startswith("metrics: "):
                    url = line.split(" ", 1)[1].strip()
            check(url is not None, "daemon announced its metrics endpoint")
            base = url.rsplit("/", 1)[0]

            # Grow the capture directory under the running daemon: one
            # rotated file, then the rest.
            time.sleep(0.5)
            write_pcap(directory / "zoom-01.pcap", captures[third : 2 * third])
            time.sleep(0.5)
            write_pcap(directory / "zoom-02.pcap", captures[2 * third :])

            deadline = time.monotonic() + 60.0
            frames = 0
            while time.monotonic() < deadline:
                try:
                    metrics = scrape(url)
                except OSError:
                    time.sleep(0.2)
                    continue
                frames = next(
                    (
                        int(line.split()[-1])
                        for line in metrics.splitlines()
                        if line.startswith("repro_capture_frames_total ")
                    ),
                    0,
                )
                if frames >= len(captures):
                    break
                time.sleep(0.2)
            check(
                frames == len(captures),
                f"daemon ingested all packets ({frames}/{len(captures)})",
            )
            check(
                "repro_service_windows_total" in metrics
                and "repro_window_start_seconds" in metrics,
                "window counters exposed on /metrics",
            )
            check(scrape(f"{base}/healthz").strip() == "ok", "/healthz answers ok")

            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
        print(f"daemon stdout after shutdown:\n{stdout}", end="")
        if stderr:
            print(f"daemon stderr:\n{stderr}", end="", file=sys.stderr)
        check(daemon.returncode == 0, "SIGTERM produced a clean exit 0")

        windows = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
        check(bool(windows), "JSONL window log written")
        indices = [w["window"] for w in windows]
        check(len(indices) == len(set(indices)), "each window emitted exactly once")
        total = sum(w["packets_total"] for w in windows)
        check(
            total == len(captures),
            f"window packet totals cover the capture ({total}/{len(captures)})",
        )
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
