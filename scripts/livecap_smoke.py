#!/usr/bin/env python
"""CI smoke test for the live-interface dataplane path.

Three checks, in increasing order of privilege:

1. **clean replay** — a border trace replayed through the simulated
   packet socket with a comfortable ring must reach the analyzer with
   zero loss: every frame the cBPF filter passes is delivered, kernel
   drop accounting reads zero, and the analyzed totals match the batch
   analyzer run over the same file on disk;
2. **forced overload** — the same trace replayed with a refill chunk
   larger than the ring capacity must drop deterministically, and the
   accounting must reconcile exactly:
   ``delivered == tp_packets - tp_drops`` with ``tp_drops > 0``, and the
   source's ``kernel_drops`` must equal the socket's ``tp_drops``;
3. **real AF_PACKET loopback** — when the process has CAP_NET_RAW (CI
   containers usually run as root), attach a compiled cBPF program for
   127.0.0.0/8 to a real ``AF_PACKET`` socket on ``lo``, send traffic
   through a normal UDP socket, and require the filtered frames to come
   back.  Skipped with a notice when the capability is missing, so the
   suite stays runnable on developer laptops.

Run from the repository root::

    PYTHONPATH=src python scripts/livecap_smoke.py

Exits non-zero on the first failed check.
"""

from __future__ import annotations

import random
import socket
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dataplane import (  # noqa: E402
    AFPacketSocket,
    CaptureRules,
    DataplaneFilter,
    LiveInterfaceSource,
    SimulatedPacketSocket,
    compile_cbpf,
    run_cbpf,
)
from repro.net.batch import BatchPrefilter  # noqa: E402
from repro.net.packet import CapturedPacket, build_udp_frame  # noqa: E402
from repro.net.pcap import PcapWriter  # noqa: E402

FRAMES = 2_000
ZOOM_EVERY = 4  # every 4th frame is Zoom-bound -> 500 expected survivors
ZOOM_NET = "170.114.0.0/16"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def write_border_trace(path: Path) -> int:
    """Write a mixed trace; returns the number of Zoom frames."""
    rng = random.Random(23)
    zoom = 0
    t = 0.0
    with path.open("wb") as fh:
        writer = PcapWriter(fh)
        for i in range(FRAMES):
            t += 0.0005
            if i % ZOOM_EVERY == 0:
                frame = build_udp_frame(
                    "10.8.0.5", 20000 + (i % 50), "170.114.1.1", 8801,
                    b"\x05\x10" + bytes(200),
                )
                zoom += 1
            else:
                frame = build_udp_frame(
                    f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                    rng.randrange(1024, 65000),
                    f"93.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                    443,
                    bytes(120),
                )
            writer.write(CapturedPacket(t, frame))
    return zoom


def drain(source: LiveInterfaceSource) -> int:
    delivered = 0
    with source:
        for batch in source.frame_batches():
            delivered += len(batch)
    return delivered


def check_clean_replay(trace: Path, zoom_frames: int) -> None:
    sock = SimulatedPacketSocket.replay(trace, ring_capacity=4096, chunk=256)
    source = LiveInterfaceSource(
        sock, dataplane=DataplaneFilter(BatchPrefilter([ZOOM_NET]))
    )
    delivered = drain(source)
    tp_packets, tp_drops = sock.stats()
    if delivered != zoom_frames:
        fail(f"clean replay delivered {delivered} frames, expected {zoom_frames}")
    if tp_drops != 0:
        fail(f"clean replay reported {tp_drops} ring drops on an idle ring")
    if delivered != tp_packets - tp_drops:
        fail(
            f"clean replay does not reconcile: {delivered} delivered vs "
            f"{tp_packets} filtered - {tp_drops} dropped"
        )
    if source.kernel_drops != 0:
        fail(f"source accumulated {source.kernel_drops} kernel drops on a clean run")
    print(
        f"PASS clean replay: {delivered}/{FRAMES} frames passed the cBPF "
        f"filter and reached the analyzer, zero loss"
    )


def check_forced_overload(trace: Path) -> None:
    # Only filter-passers enter the ring: a chunk of 64 admits 16 Zoom
    # frames per refill (1 in 4), so a ring of 8 overflows on every one.
    sock = SimulatedPacketSocket.replay(trace, ring_capacity=8, chunk=64)
    source = LiveInterfaceSource(
        sock, dataplane=DataplaneFilter(BatchPrefilter([ZOOM_NET]))
    )
    delivered = drain(source)
    tp_packets, tp_drops = sock.stats()
    if tp_drops == 0:
        fail("forced overload produced no ring drops (16 passers/refill > ring=8)")
    if delivered != tp_packets - tp_drops:
        fail(
            f"overload does not reconcile: {delivered} delivered vs "
            f"{tp_packets} filtered - {tp_drops} dropped"
        )
    if source.kernel_drops != tp_drops:
        fail(
            f"drop accounting mismatch: source folded {source.kernel_drops}, "
            f"socket reports {tp_drops}"
        )
    print(
        f"PASS forced overload: {tp_drops} deterministic ring drops, "
        f"delivered {delivered} == {tp_packets} filtered - {tp_drops} dropped"
    )


def check_real_loopback() -> None:
    """Attach a real cBPF filter on lo and capture our own UDP traffic."""
    port = 53535
    program = compile_cbpf(
        CaptureRules.from_networks(["127.0.0.0/8"]), max_endpoints=8
    )
    try:
        cap = AFPacketSocket("lo")
    except PermissionError:
        print("SKIP real loopback: CAP_NET_RAW not available")
        return
    except OSError as exc:
        print(f"SKIP real loopback: AF_PACKET socket unavailable ({exc})")
        return
    try:
        cap.attach_filter(program)
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        payload = b"livecap-smoke-" + bytes(50)
        sent = 20
        for _ in range(sent):
            sender.sendto(payload, ("127.0.0.1", port))
        sender.close()
        # Loopback shows each datagram to AF_PACKET on both tx and rx, so
        # expect *at least* `sent` matching frames; other 127/8 chatter may
        # ride along, which is fine — the filter admitted it correctly.
        matched = 0
        deadline = time.monotonic() + 5.0
        while matched < sent and time.monotonic() < deadline:
            frames = cap.recv_batch(256)
            if not frames:
                time.sleep(0.05)
                continue
            for _ts, frame in frames:
                if run_cbpf(program, frame) == 0:
                    fail("kernel delivered a frame the reference interpreter drops")
                if payload in frame:
                    matched += 1
        if matched < sent:
            fail(f"loopback capture matched {matched}/{sent} sent datagrams")
        tp_packets, tp_drops = cap.stats()
        print(
            f"PASS real loopback: kernel cBPF delivered {matched} of our "
            f"datagrams (socket stats: {tp_packets} packets, {tp_drops} drops)"
        )
    finally:
        cap.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "border.pcap"
        zoom_frames = write_border_trace(trace)
        check_clean_replay(trace, zoom_frames)
        check_forced_overload(trace)
    check_real_loopback()
    print("livecap smoke: all checks passed")


if __name__ == "__main__":
    main()
