#!/usr/bin/env python3
"""The §4.2 reverse-engineering workflow, end to end.

Pretend we know *nothing* about Zoom's encapsulation.  Starting from raw UDP
payloads of a captured flow, this example:

1. runs the entropy sweep (Figure 3) and classifies every 1/2/4-byte field as
   constant / identifier / counter / random (Figure 4),
2. looks for the RTP header signature — a 2-byte counter followed by a 4-byte
   counter followed by a 4-byte identifier (Figure 5),
3. validates RTP offsets flow-wide, groups packets by offset, and finds the
   byte *before* the headers that discriminates the groups: Zoom's media-type
   field (§4.2.2, rediscovering Table 2's offsets),
4. hunts the remaining packets for the learned SSRCs to locate RTCP,
5. cross-checks everything against the known format with the dissector.

Run:  python examples/reverse_engineering.py
"""

from collections import defaultdict

from repro.analysis.tables import format_table
from repro.core.dissector import dissect_text
from repro.core.entropy import FieldClass, analyze_flow, find_rtp_signature
from repro.core.offset_finder import discover_offsets
from repro.net.packet import parse_frame
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.zoom.constants import ZoomMediaType


def collect_flows(captures) -> dict[tuple, list[bytes]]:
    flows: dict[tuple, list[bytes]] = defaultdict(list)
    for captured in captures:
        packet = parse_frame(captured.data, captured.timestamp)
        if packet.is_udp and 8801 in (packet.src_port, packet.dst_port):
            flows[packet.five_tuple].append(packet.payload)
    return flows


def main() -> None:
    config = MeetingConfig(
        meeting_id="re-demo",
        participants=(
            ParticipantConfig(
                name="a",
                media=(ZoomMediaType.AUDIO, ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE),
            ),
            ParticipantConfig(name="b", join_time=0.5),
        ),
        duration=25.0,
        allow_p2p=False,
        seed=17,
    )
    print("Capturing a controlled experiment (25 s, 2 parties) ...")
    captures = MeetingSimulator(config).run().captures
    flows = collect_flows(captures)
    # Pick the busiest single flow, exactly as one would eyeball in practice.
    flow_key, payloads = max(flows.items(), key=lambda kv: len(kv[1]))
    print(f"analyzing flow {flow_key[0]}:{flow_key[1]} -> {flow_key[2]}:{flow_key[3]} "
          f"({len(payloads)} packets)\n")

    # ---- Step 1+2: entropy sweep + classification --------------------------
    print("=== Step 1: entropy sweep over 1/2/4-byte fields (Figures 3-5) ===")
    reports = analyze_flow(payloads, widths=(1, 2, 4), max_offset=48)
    interesting = [
        r for r in reports
        if r.field_class in (FieldClass.IDENTIFIER, FieldClass.COUNTER, FieldClass.CONSTANT)
    ]
    rows = [
        (r.offset, r.width, r.field_class.value,
         r.stats.distinct, f"{r.stats.entropy:.2f}", f"{r.stats.increment_fraction:.2f}")
        for r in interesting[:18]
    ]
    print(format_table(
        ["offset", "width", "class", "distinct", "entropy", "inc-frac"], rows))
    print(f"... {len(interesting)} structured fields among {len(reports)} candidates\n")

    signature = find_rtp_signature(reports)
    print(f"RTP signature (seq+ts+ssrc pattern) at offsets: {signature}\n")

    # ---- Step 3: flow-wide offset validation + type-field discovery --------
    print("=== Step 2: offset groups and the type field (§4.2.2) ===")
    all_payloads = [p for flow_payloads in flows.values() for p in flow_payloads]
    discovery = discover_offsets(all_payloads)
    print("validated RTP offsets:",
          dict(sorted(discovery.rtp_offsets.items(), key=lambda kv: -kv[1])))
    print("type-field byte position(s):", discovery.type_field_positions)
    print("discovered type -> offset mapping (cf. Table 2):")
    for type_value, offset in sorted(discovery.offset_by_type_value.items()):
        name = {13: "screen share", 15: "audio", 16: "video"}.get(type_value, "?")
        print(f"  type {type_value:3d} ({name:12s}) -> RTP at offset {offset}")
    print("learned SSRCs:", sorted(f"{s:#x}" for s in discovery.ssrcs))

    # ---- Step 4: RTCP discovery --------------------------------------------
    print("\n=== Step 3: RTCP located by SSRC search in non-RTP packets ===")
    print("RTCP header offsets:", dict(discovery.rtcp_offsets))

    # ---- Step 5: sanity check against the full dissector -------------------
    print("\n=== Cross-check: dissecting one packet with the final format ===")
    for payload in payloads:
        if payload[8] == int(ZoomMediaType.VIDEO) and len(payload) > 200:
            print(dissect_text(payload, from_server=True))
            break


if __name__ == "__main__":
    main()
