#!/usr/bin/env python3
"""Generating a labeled QoE dataset from passive measurements (§8).

The paper's discussion proposes using its fine-grained metrics as *features*
for ML-based quality-of-experience inference, with the passive pipeline
"automatically generat[ing] large, feature-rich data sets from real-world
traffic".  This example builds exactly that dataset from an emulated campus
hour: one row per (stream, second) with every §5 metric as features, plus —
because the emulator knows the truth — a congestion label column that a
trained model would have to predict in the wild.

Run:  python examples/qoe_dataset.py [--out qoe_dataset.csv]
"""

import argparse
import csv
from pathlib import Path

from repro.analysis.export import FEATURE_COLUMNS, feature_rows
from repro.core import ZoomAnalyzer
from repro.core.metrics.stalls import detect_stalls
from repro.simulation.campus import CampusTraceConfig, generate_campus_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("qoe_dataset.csv"))
    parser.add_argument("--hours", type=int, default=2)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    print(f"Generating {args.hours} campus hour(s) of Zoom traffic ...")
    trace = generate_campus_trace(
        CampusTraceConfig(
            hours=args.hours,
            meetings_per_hour_peak=2.0,
            congestion_fraction=0.4,  # plenty of label-positive seconds
            seed=args.seed,
        )
    )
    analysis = ZoomAnalyzer().analyze(trace.result.captures)
    rows = feature_rows(analysis)
    print(f"  {len(rows)} feature rows from {len(analysis.streams)} streams")

    # Ground-truth labels from the emulator: seconds where the sending
    # participant's uplink had an active congestion episode.
    congested_seconds: set[tuple[int, int]] = set()
    for config in trace.meeting_configs:
        for participant_index, participant in enumerate(config.participants):
            for event in participant.congestion:
                for second in range(int(event.start), int(event.end) + 1):
                    for media in participant.media:
                        ssrc = (participant_index << 8) | int(media)
                        congested_seconds.add((ssrc, second))

    # Stall predictions add a second derived label column.
    stall_seconds: set[tuple[str, int]] = set()
    for stream in analysis.media_streams():
        metrics = analysis.metrics_for(stream.key)
        for event in detect_stalls(metrics.frame_delay.samples):
            stream_id = (
                f"{stream.five_tuple[0]}:{stream.five_tuple[1]}-"
                f"{stream.five_tuple[2]}:{stream.five_tuple[3]}-{stream.ssrc:#x}"
            )
            for second in range(int(event.start), int(event.start + event.duration) + 1):
                stall_seconds.add((stream_id, second))

    columns = list(FEATURE_COLUMNS) + ["label_congested", "label_stalled"]
    labeled_positive = 0
    with open(args.out, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            congested = int((row["ssrc"], row["second"]) in congested_seconds)
            stalled = int((row["stream_id"], row["second"]) in stall_seconds)
            labeled_positive += congested
            out_row = {}
            for key in FEATURE_COLUMNS:
                value = row[key]
                if isinstance(value, float) and value != value:  # NaN
                    value = ""
                out_row[key] = value
            out_row["label_congested"] = congested
            out_row["label_stalled"] = stalled
            writer.writerow(out_row)
    print(f"wrote {len(rows)} rows ({labeled_positive} congestion-positive) to {args.out}")
    print("feature columns:", ", ".join(FEATURE_COLUMNS))
    print("\nA QoE model would train on the features to predict the labels —")
    print("in production the labels would come from user ratings (§8).")


if __name__ == "__main__":
    main()
