#!/usr/bin/env python3
"""The §6.2 campus study at laptop scale: Figures 14-16 from synthetic data.

Generates a scaled-down campus trace (diurnal meeting pattern, mixed media,
P2P calls, congestion episodes), filters it through the P4 capture model,
runs the analyzer, and prints:

* the per-media-type bit-rate time series (Figure 14),
* CDF quantile tables for data rate / frame rate / frame size / jitter per
  media type (Figure 15a-d),
* the jitter↔bitrate and jitter↔frame-rate correlations (Figure 16).

Run:  python examples/campus_study.py [--hours N] [--peak M]
"""

import argparse
from collections import defaultdict

from repro.analysis.cdfs import cdf_of
from repro.analysis.correlation import pearson, spearman
from repro.analysis.tables import format_table
from repro.analysis.timeseries import ascii_plot, resample_sum
from repro.capture.p4_model import P4CaptureModel
from repro.core import ZoomAnalyzer
from repro.simulation.campus import CampusTraceConfig, generate_campus_trace
from repro.zoom.constants import ZoomMediaType

MEDIA_NAMES = {13: "screen share", 15: "audio", 16: "video"}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=6)
    parser.add_argument("--peak", type=float, default=2.0, help="meetings/hour at peak")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"Generating a {args.hours}-hour campus trace ...")
    trace = generate_campus_trace(
        CampusTraceConfig(
            hours=args.hours,
            meetings_per_hour_peak=args.peak,
            background_pps=0.05,
            seed=args.seed,
        )
    )
    print(
        f"  {len(trace.meeting_configs)} meetings, "
        f"{len(trace.result.captures)} Zoom packets, "
        f"{len(trace.background)} background packets"
    )

    print("Filtering through the P4 capture model (Figure 13) ...")
    model = P4CaptureModel(rate_bin_width=600.0)
    zoom_only = list(model.process(trace.all_packets()))
    counters = model.counters
    print(
        f"  processed {counters.processed}, passed {counters.passed} "
        f"(server {counters.zoom_ip_matched}, p2p {counters.p2p_matched}), "
        f"dropped {counters.dropped}"
    )

    print("Analyzing ...")
    result = ZoomAnalyzer().analyze(zoom_only)
    print(
        f"  {len(result.meetings)} meetings inferred "
        f"(ground truth: {len(trace.meeting_configs)}), "
        f"{len(result.streams)} network streams, "
        f"{result.grouper.unique_stream_count()} unique media streams\n"
    )

    # ---- Figure 14: data rate per media type over the day -----------------
    print("=== Figure 14: media bit rate over the day ===")
    for media_type in (16, 15, 13):
        series = result.bitrate.media_type_rate_series(media_type)
        if not series:
            continue
        rebinned = resample_sum(series, 900.0)
        rebinned = [(t, v / 900.0) for t, v in rebinned]  # mean bit/s per bin
        print(ascii_plot(rebinned, label=f"{MEDIA_NAMES[media_type]} bit/s ", height=8))
        print()

    # ---- Figure 15: per-metric CDFs by media type -------------------------
    print("=== Figure 15: metric distributions per media type (quantiles) ===")
    fractions = (0.10, 0.25, 0.50, 0.75, 0.90)
    header = ["metric / media", "p10", "p25", "p50", "p75", "p90", "n"]

    rate_rows = []
    fps_rows = []
    size_rows = []
    jitter_rows = []
    fps_by_type = defaultdict(list)
    size_by_type = defaultdict(list)
    jitter_by_type = defaultdict(list)
    rate_by_type = defaultdict(list)
    for stream in result.media_streams():
        metrics = result.metrics_for(stream.key)
        media_type = stream.media_type
        rate_by_type[media_type].extend(
            v / 1000.0 for v in result.bitrate.stream_rate_values(stream.five_tuple, stream.ssrc)
        )
        fps_by_type[media_type].extend(s.fps for s in metrics.framerate_delivered.samples)
        size_by_type[media_type].extend(metrics.framesize.sizes())
        if media_type == int(ZoomMediaType.VIDEO):
            jitter_by_type[media_type].extend(1000.0 * s.jitter for s in metrics.jitter.samples)

    for media_type in (15, 13, 16):
        if rate_by_type[media_type]:
            cdf = cdf_of(rate_by_type[media_type])
            rate_rows.append([f"rate kbit/s / {MEDIA_NAMES[media_type]}", *cdf.quantile_row(fractions), cdf.count])
    for media_type in (13, 16):
        if fps_by_type[media_type]:
            cdf = cdf_of(fps_by_type[media_type])
            fps_rows.append([f"frame rate fps / {MEDIA_NAMES[media_type]}", *cdf.quantile_row(fractions), cdf.count])
        if size_by_type[media_type]:
            cdf = cdf_of(size_by_type[media_type])
            size_rows.append([f"frame size B / {MEDIA_NAMES[media_type]}", *cdf.quantile_row(fractions), cdf.count])
    if jitter_by_type[16]:
        cdf = cdf_of(jitter_by_type[16])
        jitter_rows.append(["jitter ms / video", *cdf.quantile_row(fractions), cdf.count])

    for rows in (rate_rows, fps_rows, size_rows, jitter_rows):
        if rows:
            print(format_table(header, rows))
            print()

    # ---- Figure 16: (lack of) correlation ---------------------------------
    print("=== Figure 16: jitter vs bit rate / frame rate (video, 1 s bins) ===")
    jitter_values, rate_values, fps_values = [], [], []
    for stream in result.media_streams():
        if stream.media_type != int(ZoomMediaType.VIDEO):
            continue
        metrics = result.metrics_for(stream.key)
        per_second_jitter = defaultdict(list)
        for sample in metrics.jitter.samples:
            per_second_jitter[int(sample.time)].append(sample.jitter * 1000)
        per_second_fps = defaultdict(list)
        for sample in metrics.framerate_delivered.samples:
            per_second_fps[int(sample.time)].append(sample.fps)
        rates = dict(
            (int(t), v / 1000.0)
            for t, v in result.bitrate.stream_rate_series(stream.five_tuple, stream.ssrc)
        )
        for second, jitters in per_second_jitter.items():
            if second in per_second_fps and second in rates:
                jitter_values.append(sum(jitters) / len(jitters))
                fps_values.append(sum(per_second_fps[second]) / len(per_second_fps[second]))
                rate_values.append(rates[second])
    if jitter_values:
        print(f"samples: {len(jitter_values)}")
        print(f"pearson(jitter, bitrate)    = {pearson(jitter_values, rate_values):+.3f}")
        print(f"spearman(jitter, bitrate)   = {spearman(jitter_values, rate_values):+.3f}")
        print(f"pearson(jitter, frame rate) = {pearson(jitter_values, fps_values):+.3f}")
        print(f"spearman(jitter, frame rate)= {spearman(jitter_values, fps_values):+.3f}")
        print("(near zero = the paper's point: single metrics cannot judge quality)")


if __name__ == "__main__":
    main()
