#!/usr/bin/env python3
"""Quickstart: emulate a Zoom meeting, analyze it passively, print metrics.

This is the whole paper in ~60 lines: generate the traffic a campus border
monitor would capture during a three-party Zoom meeting, run the passive
analyzer over it, and report what an operator would learn — meetings,
streams, media mix, frame rates, latency — without any endpoint cooperation.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import format_table
from repro.core import ZoomAnalyzer
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)
from repro.zoom.constants import ZoomMediaType


def main() -> None:
    config = MeetingConfig(
        meeting_id="quickstart",
        participants=(
            ParticipantConfig(
                name="alice",
                on_campus=True,
                # Cross-traffic hits alice's uplink mid-call (cf. §5's
                # validation experiments).
                congestion=(CongestionEvent(start=12.0, end=17.0),),
            ),
            ParticipantConfig(name="bob", on_campus=True, join_time=1.0),
            ParticipantConfig(name="carol", on_campus=False, join_time=2.0),
        ),
        duration=30.0,
        allow_p2p=False,
        seed=7,
    )
    print("Simulating a 30 s three-party meeting ...")
    captures = MeetingSimulator(config).run().captures
    print(f"  monitor captured {len(captures)} packets\n")

    result = ZoomAnalyzer().analyze(captures)

    print("=== What passive analysis recovers ===")
    print(f"meetings found:      {len(result.meetings)}")
    meeting = result.meetings[0]
    print(f"participant estimate: {meeting.participant_estimate()}")
    print(f"unique media streams: {len(meeting.stream_uids)}")
    print(f"RTCP sender reports:  {result.rtcp_sender_reports} "
          f"(receiver reports: {result.rtcp_receiver_reports} — Zoom sends none)\n")

    print("--- Media mix (cf. Table 2) ---")
    rows = [
        (str(value), pct, byte_pct)
        for value, pct, byte_pct in result.encap_share_table()
    ]
    print(format_table(["encap type", "% pkts", "% bytes"], rows), "\n")

    print("--- Per-stream performance (video streams) ---")
    table_rows = []
    for stream in result.media_streams():
        if stream.media_type != int(ZoomMediaType.VIDEO) or stream.to_server is not True:
            continue
        metrics = result.metrics_for(stream.key)
        fps_samples = [s.fps for s in metrics.framerate_delivered.samples]
        mid = sum(fps_samples) / len(fps_samples) if fps_samples else 0.0
        table_rows.append(
            (
                f"{stream.ssrc:#06x}",
                metrics.assembler.completed_count,
                mid,
                metrics.framesize.summary()["median"],
                metrics.jitter.jitter * 1000.0,
                metrics.loss.report().duplicates,
            )
        )
    print(
        format_table(
            ["ssrc", "frames", "mean fps", "median size B", "jitter ms", "retransmits"],
            table_rows,
        ),
        "\n",
    )

    samples = result.rtp_latency.samples
    clean = [s.rtt for s in samples if s.time < 11]
    congested = [s.rtt for s in samples if 13 <= s.time <= 16]
    print("--- Latency to SFU (Method 1: RTP sequence matching, §5.3) ---")
    print(f"samples: {len(samples)}")
    if clean:
        print(f"before congestion: {1000 * sum(clean) / len(clean):6.1f} ms")
    if congested:
        print(f"during congestion: {1000 * sum(congested) / len(congested):6.1f} ms")

    for (client, server), estimator in result.tcp_rtt.items():
        asymmetry = estimator.asymmetry()
        if asymmetry is None:
            continue
        where = "outside" if asymmetry > 0 else "inside"
        print(
            f"TCP proxy {client} ↔ {server}: latency dominated {where} the campus "
            f"(asymmetry {1000 * asymmetry:+.1f} ms)"
        )
        break


if __name__ == "__main__":
    main()
