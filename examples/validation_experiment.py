#!/usr/bin/env python3
"""The §5 validation experiment: analyzer estimates vs SDK ground truth.

Reproduces the Figure 10 methodology: a two-person call with cross-traffic
injected twice, the per-second "Zoom SDK" QoS feed logged on the side, and
the passive analyzer's estimates compared against it second by second:

* Figure 10a — frame rate (Method 1) vs the SDK's delivered-frame count,
* Figure 10b — latency (Method 1, RTP sequence matching) vs the SDK's
  displayed latency, which only refreshes every 5 s,
* Figure 10c — RFC 3550 frame-level jitter vs Zoom's over-smoothed figure
  (they disagree — exactly the paper's observation).

Run:  python examples/validation_experiment.py
"""

from collections import defaultdict

from repro.analysis.tables import format_table
from repro.core import ZoomAnalyzer
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)


def main() -> None:
    duration = 60.0
    config = MeetingConfig(
        meeting_id="validation",
        participants=(
            ParticipantConfig(
                name="sender",
                on_campus=True,
                congestion=(
                    CongestionEvent(start=15.0, end=23.0),   # first bandwidth test
                    CongestionEvent(start=38.0, end=48.0),   # second bandwidth test
                ),
            ),
            ParticipantConfig(name="receiver", on_campus=True, join_time=0.5),
        ),
        duration=duration,
        allow_p2p=False,
        seed=23,
    )
    print(f"Running a {duration:.0f} s two-person validation call "
          "(cross-traffic at 15-23 s and 38-48 s) ...")
    result = MeetingSimulator(config).run()
    analysis = ZoomAnalyzer().analyze(result.captures)

    ssrc = 0x10  # sender's video stream
    qos = result.qos

    # Analyzer estimates, binned per second.
    ingress = next(
        s for s in analysis.media_streams() if s.ssrc == ssrc and s.to_server is False
    )
    metrics = analysis.metrics_for(ingress.key)
    fps_by_second = defaultdict(list)
    for sample in metrics.framerate_delivered.samples:
        fps_by_second[int(sample.time)].append(sample.fps)
    jitter_by_second = defaultdict(list)
    for sample in metrics.jitter.samples:
        jitter_by_second[int(sample.time)].append(sample.jitter * 1000)
    latency_by_second = defaultdict(list)
    for sample in analysis.rtp_latency.samples_for(ssrc):
        latency_by_second[int(sample.time)].append(sample.rtt * 1000)

    rows = []
    fps_errors = []
    latency_errors = []
    for second in range(2, int(duration)):
        truth = [s for s in qos.for_stream(ssrc) if abs(s.time - (second + 1)) < 0.01]
        if not truth or second not in fps_by_second:
            continue
        t = truth[0]
        est_fps = sum(fps_by_second[second]) / len(fps_by_second[second])
        est_latency = (
            sum(latency_by_second[second]) / len(latency_by_second[second])
            if second in latency_by_second
            else float("nan")
        )
        est_jitter = (
            sum(jitter_by_second[second]) / len(jitter_by_second[second])
            if second in jitter_by_second
            else float("nan")
        )
        congested = "*" if (15 <= second <= 23 or 38 <= second <= 48) else " "
        rows.append(
            (f"{second:3d}{congested}",
             est_fps, float(t.delivered_frames),
             est_latency, t.latency_ms,
             est_jitter, t.jitter_ms)
        )
        fps_errors.append(abs(est_fps - t.delivered_frames))
        if est_latency == est_latency and t.true_latency_ms == t.true_latency_ms:
            latency_errors.append(abs(est_latency - t.true_latency_ms))

    print(format_table(
        ["sec", "fps est", "fps SDK", "lat est ms", "lat SDK ms", "jit est ms", "jit SDK ms"],
        rows,
        float_format="{:7.1f}",
    ))
    print("\n(* = cross-traffic active; 'SDK' = the emulator's ground-truth feed,"
          "\n standing in for the Zoom SDK logger of §5)")

    print("\n=== Accuracy summary ===")
    print(f"frame rate:  mean |error| = {sum(fps_errors) / len(fps_errors):5.2f} fps "
          f"over {len(fps_errors)} seconds")
    print(f"latency:     mean |error| = {sum(latency_errors) / len(latency_errors):5.2f} ms "
          f"vs dense ground truth ({len(latency_errors)} seconds)")
    print("jitter:      estimates track network events; the SDK figure is "
          "over-smoothed and stays <2 ms — the Figure 10c disagreement is expected")


if __name__ == "__main__":
    main()
