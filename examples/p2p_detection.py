#!/usr/bin/env python3
"""Deterministic P2P detection via STUN tracking (§4.1, Figure 2).

Two-party Zoom meetings switch to a direct peer-to-peer flow on ephemeral
ports at both ends — invisible to IP-list filtering.  The paper's insight:
each client first exchanges cleartext STUN binding messages with a Zoom zone
controller on UDP 3478 *from the port the P2P flow will use*.  This example
shows the whole chain: the meeting starting in SFU mode, the STUN exchange,
the switch, detection at both the analyzer and the P4 capture model, and the
revert when a third participant joins.

Run:  python examples/p2p_detection.py
"""

from repro.capture.p4_model import P4CaptureModel
from repro.core.detector import ZoomClass, ZoomTrafficDetector
from repro.net.packet import parse_frame
from repro.rtp.stun import StunMessage, is_stun
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


def main() -> None:
    config = MeetingConfig(
        meeting_id="p2p-demo",
        participants=(
            ParticipantConfig(name="on-campus", on_campus=True),
            ParticipantConfig(name="off-campus", on_campus=False, join_time=0.5),
            # A third participant joins late and forces the revert to SFU.
            ParticipantConfig(name="latecomer", on_campus=True, join_time=18.0),
        ),
        duration=26.0,
        allow_p2p=True,
        p2p_switch_delay=6.0,
        seed=11,
    )
    simulator = MeetingSimulator(config)
    result = simulator.run()

    print("=== Ground truth ===")
    for flow in result.p2p_flows:
        print(
            f"P2P flow {flow.client_ip}:{flow.client_port} <-> "
            f"{flow.peer_ip}:{flow.peer_port} established at t={flow.established_at:.1f}s"
        )
    print(f"final mode: {simulator.mode} (P2P banned after third join: {simulator.p2p_banned})\n")

    print("=== Timeline at the monitor ===")
    detector = ZoomTrafficDetector()
    timeline: list[tuple[float, str]] = []
    counts: dict[ZoomClass, int] = {}
    first_seen: dict[ZoomClass, float] = {}
    for captured in result.captures:
        packet = parse_frame(captured.data, captured.timestamp)
        klass = detector.classify(packet)
        counts[klass] = counts.get(klass, 0) + 1
        if klass not in first_seen:
            first_seen[klass] = captured.timestamp
            if packet.is_udp and is_stun(packet.payload):
                message = StunMessage.parse(packet.payload)
                kind = "request" if message.is_request else "response"
                timeline.append(
                    (captured.timestamp,
                     f"first STUN {kind}: {packet.src_ip}:{packet.src_port} -> "
                     f"{packet.dst_ip}:{packet.dst_port}")
                )
            else:
                timeline.append(
                    (captured.timestamp,
                     f"first {klass.value}: {packet.src_ip}:{packet.src_port} -> "
                     f"{packet.dst_ip}:{packet.dst_port}")
                )
    for when, event in sorted(timeline):
        print(f"  t={when:6.2f}s  {event}")

    print("\n=== Per-class packet counts (analyzer's detector) ===")
    for klass, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {klass.value:14s} {count}")

    print("\n=== The same trace through the P4 capture model (Figure 13) ===")
    model = P4CaptureModel()
    passed = sum(1 for _ in model.process(result.captures))
    print(f"  processed {model.counters.processed}, passed {passed}")
    print(f"  zoom-IP matched {model.counters.zoom_ip_matched}, "
          f"STUN learned {model.counters.stun_learned}, "
          f"P2P matched {model.counters.p2p_matched}")
    assert model.counters.p2p_matched == counts.get(ZoomClass.P2P_MEDIA, 0), (
        "data plane and analyzer must agree"
    )
    print("  (data-plane and software detectors agree)")


if __name__ == "__main__":
    main()
