#!/usr/bin/env python3
"""The Wireshark-plugin workflow (Appendix C): dissect Zoom packets in a pcap.

Without arguments, generates a small meeting, writes it to a temporary pcap,
reads it back, and dissects a sample of packets — demonstrating the on-disk
interchange format.  Point it at your own capture with::

    python examples/dissect_pcap.py path/to/trace.pcap [--limit N]

Server-based traffic is recognized by UDP port 8801 (like the plugin, which
"automatically treats all UDP traffic to port 8801 as Zoom"); other UDP flows
are attempted as P2P.
"""

import argparse
import tempfile
from pathlib import Path

from repro.core.dissector import dissect
from repro.net.packet import parse_frame
from repro.net.pcap import read_pcap, write_pcap
from repro.rtp.stun import is_stun
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.zoom.constants import SERVER_MEDIA_PORT


def generate_demo_pcap(path: Path) -> None:
    config = MeetingConfig(
        meeting_id="pcap-demo",
        participants=(
            ParticipantConfig(name="a", on_campus=True),
            ParticipantConfig(name="b", on_campus=False, join_time=0.5),
        ),
        duration=8.0,
        allow_p2p=True,
        p2p_switch_delay=3.0,
        seed=31,
    )
    captures = MeetingSimulator(config).run().captures
    count = write_pcap(path, captures)
    print(f"wrote {count} packets to {path}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pcap", nargs="?", help="pcap file to dissect")
    parser.add_argument("--limit", type=int, default=6, help="packets to print")
    args = parser.parse_args()

    if args.pcap:
        path = Path(args.pcap)
    else:
        path = Path(tempfile.mkdtemp()) / "zoom-demo.pcap"
        print("No pcap given — generating a demo meeting capture.")
        generate_demo_pcap(path)

    printed = 0
    kinds_seen = set()
    for captured in read_pcap(path):
        packet = parse_frame(captured.data, captured.timestamp)
        if not packet.is_udp or is_stun(packet.payload):
            continue
        from_server = SERVER_MEDIA_PORT in (packet.src_port, packet.dst_port)
        tree = dissect(packet.payload, from_server=from_server)
        # Show one of each packet kind rather than six identical video packets.
        kind = tree.display.split("]")[1].split()[0] if "]" in tree.display else "?"
        if kind in kinds_seen and len(kinds_seen) < 4:
            continue
        kinds_seen.add(kind)
        print(f"--- packet @ t={captured.timestamp:.4f}s "
              f"{packet.src_ip}:{packet.src_port} -> {packet.dst_ip}:{packet.dst_port} ---")
        print(tree.render())
        print()
        printed += 1
        if printed >= args.limit:
            break
    if printed == 0:
        print("no dissectable Zoom UDP packets found")


if __name__ == "__main__":
    main()
